(* The Plan_verify compatibility wrapper (now a registration shim over the
   planlint engine, see lib/lint/) + the enumeration invariant: every plan
   the MEMO retains (for random workloads and both optimizer
   configurations) is structurally well-formed and executable. *)

open Relalg
open Core

let setup ?(seed = 3) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n:100 ~key_domain:10 ()))
    [ "A"; "B"; "C" ];
  cat

let ab_cond =
  { Logical.left_table = "A"; left_column = "key"; right_table = "B"; right_column = "key" }

let score t = Expr.col ~relation:t "score"

let contains msg sub =
  let n = String.length sub and m = String.length msg in
  let rec at i = i + n <= m && (String.sub msg i n = sub || at (i + 1)) in
  at 0

(* The wrapper must reject the plan, and the diagnostic it relays must come
   from the expected lint rule. *)
let expect_rule rule cat plan =
  match Plan_verify.check cat plan with
  | Ok () -> Alcotest.failf "expected a %s failure" rule
  | Error msg ->
      if not (contains msg rule) then
        Alcotest.failf "expected a %s diagnostic, got: %s" rule msg

let test_detects_unknown_table () =
  let cat = setup () in
  expect_rule "PL01-schema" cat (Plan.Table_scan { table = "Nope" })

let test_detects_unknown_index () =
  let cat = setup () in
  expect_rule "PL01-schema" cat
    (Plan.Index_scan { table = "A"; index = "ghost"; key = score "A"; desc = true })

let test_detects_unbound_filter () =
  let cat = setup () in
  expect_rule "PL01-schema" cat
    (Plan.Filter
       { pred = Expr.(Cmp (Ge, col ~relation:"Z" "x", cfloat 0.0));
         input = Plan.Table_scan { table = "A" } })

let test_detects_unsorted_hrjn_input () =
  let cat = setup () in
  expect_rule "PL02-order" cat
    (Plan.Join
       {
         algo = Plan.Hrjn;
         cond = ab_cond;
         left = Plan.Table_scan { table = "A" };  (* not sorted! *)
         right =
           Plan.Sort
             { order = { Plan.expr = score "B"; direction = Interesting_orders.Desc };
               input = Plan.Table_scan { table = "B" } };
         left_score = Some (score "A");
         right_score = Some (score "B");
       })

let test_detects_missing_rank_scores () =
  let cat = setup () in
  let sorted t =
    Plan.Sort
      { order = { Plan.expr = score t; direction = Interesting_orders.Desc };
        input = Plan.Table_scan { table = t } }
  in
  expect_rule "PL02-order" cat
    (Plan.Join
       { algo = Plan.Hrjn; cond = ab_cond; left = sorted "A"; right = sorted "B";
         left_score = None; right_score = Some (score "B") })

let test_detects_unsorted_merge_inputs () =
  let cat = setup () in
  expect_rule "PL02-order" cat
    (Plan.Join
       { algo = Plan.Sort_merge; cond = ab_cond;
         left = Plan.Table_scan { table = "A" };
         right = Plan.Table_scan { table = "B" };
         left_score = None; right_score = None })

let test_accepts_valid_plan () =
  let cat = setup () in
  let q =
    Logical.make
      ~relations:
        [ Logical.base ~score:(score "A") "A"; Logical.base ~score:(score "B") "B" ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:5 ()
  in
  let planned = Optimizer.optimize cat q in
  match Plan_verify.check cat planned.Optimizer.plan with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid plan rejected: %s" msg

(* The shim raises a diagnostic-carrying Failure through check_exn. *)
let test_check_exn () =
  let cat = setup () in
  (match Plan_verify.check_exn cat (Plan.Table_scan { table = "A" }) with
  | () -> ()
  | exception Failure msg -> Alcotest.failf "valid plan raised: %s" msg);
  match Plan_verify.check_exn cat (Plan.Table_scan { table = "Nope" }) with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check bool)
        "carries the lint diagnostic" true
        (contains msg "PL01-schema")

let prop_all_memo_plans_wellformed =
  QCheck.Test.make
    ~name:"enumeration invariant: every retained plan is well-formed" ~count:15
    QCheck.(triple (int_range 0 999) (int_range 2 8) bool)
    (fun (seed, domain, rank_aware) ->
      let cat = Storage.Catalog.create () in
      List.iteri
        (fun i name ->
          ignore
            (Workload.Generator.load_scored_table cat
               (Rkutil.Prng.create (seed + i))
               ~name ~n:50 ~key_domain:domain ()))
        [ "A"; "B"; "C" ];
      let q =
        Logical.make
          ~relations:
            (List.map
               (fun t -> Logical.base ~score:(score t) t)
               [ "A"; "B"; "C" ])
          ~joins:
            [ Logical.equijoin ("A", "key") ("B", "key");
              Logical.equijoin ("B", "key") ("C", "key") ]
          ~k:5 ()
      in
      let env = Cost_model.default_env ~k_min:5 cat q in
      let config = { Enumerator.rank_aware; first_rows = rank_aware } in
      let result = Enumerator.run ~config env in
      List.for_all
        (fun key ->
          List.for_all
            (fun sp -> Plan_verify.check cat sp.Memo.plan = Ok ())
            (Memo.plans result.Enumerator.memo key))
        (Memo.entry_keys result.Enumerator.memo))

let suites =
  [
    ( "core.plan_verify",
      [
        Alcotest.test_case "unknown table" `Quick test_detects_unknown_table;
        Alcotest.test_case "unknown index" `Quick test_detects_unknown_index;
        Alcotest.test_case "unbound filter" `Quick test_detects_unbound_filter;
        Alcotest.test_case "unsorted hrjn input" `Quick test_detects_unsorted_hrjn_input;
        Alcotest.test_case "missing rank scores" `Quick test_detects_missing_rank_scores;
        Alcotest.test_case "unsorted merge inputs" `Quick test_detects_unsorted_merge_inputs;
        Alcotest.test_case "accepts optimizer plan" `Quick test_accepts_valid_plan;
        Alcotest.test_case "check_exn relays diagnostics" `Quick test_check_exn;
        QCheck_alcotest.to_alcotest prop_all_memo_plans_wellformed;
      ] );
  ]
