(* Rank-join operator tests: HRJN and NRJN against the join-then-sort
   oracle, ordering and early-out behaviour, and instrumentation. *)

open Relalg
open Exec

let key_idx = 1 (* (id, key, score) relations from Test_util *)

let score_idx = 2

let scored_stream rel =
  (* Sorted access over an in-memory relation: sort desc by score. *)
  let sorted = Relation.sort_by ~desc:true (Expr.col "score") rel in
  let entries =
    List.map
      (fun tu -> (tu, Value.to_float (Tuple.get tu score_idx)))
      (Relation.tuples sorted)
  in
  Operator.scored_of_list (Relation.schema rel) entries

let rank_input rel =
  {
    Rank_join.stream = scored_stream rel;
    key = (fun tu -> Tuple.get tu key_idx);
  }

let combine = ( +. )

let oracle_topk ra rb k =
  let joined =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra rb
  in
  let score =
    Expr.(col ~relation:"A" "score" + col ~relation:"B" "score")
  in
  Relation.top_k ~score ~k joined

let make_pair ?(na = 40) ?(nb = 40) ?(domain = 5) ?(seed = 7) () =
  let ra = Test_util.scored_relation "A" ~n:na ~domain ~seed in
  let rb = Test_util.scored_relation "B" ~n:nb ~domain ~seed:(seed + 1) in
  (ra, rb)

let hrjn_results ?polling ra rb k =
  let stream, stats =
    Rank_join.hrjn ?polling ~combine ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  (Operator.scored_take stream k, stats)

let nrjn_results ra rb k =
  let pred = Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") in
  let inner = Operator.of_list (Relation.schema rb) (Relation.tuples rb) in
  let inner_score tu = Value.to_float (Tuple.get tu score_idx) in
  let stream, stats =
    Rank_join.nrjn ~combine ~pred ~outer:(scored_stream ra) ~inner ~inner_score ()
  in
  (Operator.scored_take stream k, stats)

let test_hrjn_matches_oracle () =
  let ra, rb = make_pair () in
  List.iter
    (fun k ->
      let results, _ = hrjn_results ra rb k in
      let oracle = oracle_topk ra rb k in
      Test_util.check_score_multiset
        (Printf.sprintf "hrjn top-%d" k)
        (List.map snd oracle) (List.map snd results);
      Test_util.check_non_increasing "hrjn ordered" (List.map snd results))
    [ 1; 5; 20; 1000 ]

let test_nrjn_matches_oracle () =
  let ra, rb = make_pair () in
  List.iter
    (fun k ->
      let results, _ = nrjn_results ra rb k in
      let oracle = oracle_topk ra rb k in
      Test_util.check_score_multiset
        (Printf.sprintf "nrjn top-%d" k)
        (List.map snd oracle) (List.map snd results);
      Test_util.check_non_increasing "nrjn ordered" (List.map snd results))
    [ 1; 5; 20; 1000 ]

let test_hrjn_adaptive_polling () =
  let ra, rb = make_pair ~na:60 ~nb:20 () in
  let results, _ = hrjn_results ~polling:Rank_join.Adaptive ra rb 10 in
  let oracle = oracle_topk ra rb 10 in
  Test_util.check_score_multiset "adaptive top-10" (List.map snd oracle)
    (List.map snd results)

let test_hrjn_early_out () =
  (* With a selective enough join and small k, HRJN must not exhaust its
     inputs. *)
  let ra, rb = make_pair ~na:300 ~nb:300 ~domain:3 ~seed:17 () in
  let _, stats = hrjn_results ra rb 5 in
  Alcotest.(check bool) "left depth < n" true ((Exec_stats.left_depth stats) < 300);
  Alcotest.(check bool) "right depth < n" true ((Exec_stats.right_depth stats) < 300)

let test_hrjn_emits_all_results_when_k_large () =
  let ra, rb = make_pair ~na:25 ~nb:25 ~domain:4 () in
  let results, _ = hrjn_results ra rb max_int in
  let joined =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra rb
  in
  Alcotest.(check int) "full output" (Relation.cardinality joined)
    (List.length results)

let test_hrjn_empty_inputs () =
  let empty = Relation.create (Test_util.scored_schema "A") [] in
  let rb = Test_util.scored_relation "B" ~n:10 ~domain:3 in
  let results, _ = hrjn_results empty rb 5 in
  Alcotest.(check int) "no results" 0 (List.length results);
  let results, _ = hrjn_results rb empty 5 in
  Alcotest.(check int) "no results (empty right)" 0 (List.length results)

let test_nrjn_empty_inner () =
  let ra = Test_util.scored_relation "A" ~n:10 ~domain:3 in
  let empty = Relation.create (Test_util.scored_schema "B") [] in
  let results, _ = nrjn_results ra empty 5 in
  Alcotest.(check int) "no results" 0 (List.length results)

(* Exhaustion depth regression (Theorem 2 degenerate case): when one input
   is exhausted empty the join is provably empty, so the bound on the other
   input's depth is O(1) — the operator may poll it at most once before it
   learns the empty side is done. Pre-fix HRJN drained the live side fully
   (depth n) and NRJN scanned the empty inner once per outer tuple. *)
let test_hrjn_empty_input_depth () =
  let empty = Relation.create (Test_util.scored_schema "A") [] in
  let rb = Test_util.scored_relation "B" ~n:200 ~domain:4 ~seed:5 in
  let results, stats = hrjn_results empty rb 5 in
  Alcotest.(check int) "no results" 0 (List.length results);
  Alcotest.(check bool) "empty left: right depth O(1)" true
    (Exec_stats.right_depth stats <= 2);
  let empty_r = Relation.create (Test_util.scored_schema "B") [] in
  let ra = Test_util.scored_relation "A" ~n:200 ~domain:4 ~seed:5 in
  let results, stats = hrjn_results ra empty_r 5 in
  Alcotest.(check int) "no results (empty right)" 0 (List.length results);
  Alcotest.(check bool) "empty right: left depth O(1)" true
    (Exec_stats.left_depth stats <= 2)

let test_nrjn_empty_inner_depth () =
  let ra = Test_util.scored_relation "A" ~n:200 ~domain:4 ~seed:5 in
  let empty = Relation.create (Test_util.scored_schema "B") [] in
  let _, stats = nrjn_results ra empty 5 in
  Alcotest.(check bool) "empty inner: outer depth O(1)" true
    (Exec_stats.left_depth stats <= 1)

let test_hrjn_threshold_safety () =
  (* Every emitted score must be >= every score emitted later (already
     checked) AND no emitted-later join result can beat an earlier one even
     across restarts. Also: emitted results never exceed the total join. *)
  let ra, rb = make_pair ~na:50 ~nb:50 ~domain:2 ~seed:23 () in
  let stream, _ =
    Rank_join.hrjn ~combine ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  let all = Operator.scored_to_list stream in
  let oracle = oracle_topk ra rb max_int in
  Test_util.check_score_multiset "full drain equals oracle"
    (List.map snd oracle) (List.map snd all)

let test_hrjn_restart () =
  let ra, rb = make_pair () in
  let stream, stats =
    Rank_join.hrjn ~combine ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  let first = Operator.scored_take stream 5 in
  let second = Operator.scored_take stream 5 in
  Alcotest.(check bool) "same after restart" true
    (List.equal (fun (_, a) (_, b) -> Float.equal a b) first second);
  Alcotest.(check bool) "stats reset" true ((Exec_stats.emitted stats) <= 5)

let test_hrjn_depths_grow_with_k () =
  let ra, rb = make_pair ~na:200 ~nb:200 ~domain:8 ~seed:31 () in
  let _, s1 = hrjn_results ra rb 1 in
  let _, s2 = hrjn_results ra rb 50 in
  Alcotest.(check bool) "deeper for larger k" true
    ((Exec_stats.left_depth s2) >= (Exec_stats.left_depth s1)
    && (Exec_stats.right_depth s2) >= (Exec_stats.right_depth s1))

let test_hrjn_buffer_tracked () =
  let ra, rb = make_pair ~na:100 ~nb:100 ~domain:2 ~seed:41 () in
  let _, stats = hrjn_results ra rb 10 in
  Alcotest.(check bool) "buffer high-water > 0" true ((Exec_stats.buffer_max stats) > 0)

let test_nrjn_depth_instrumentation () =
  let ra, rb = make_pair ~na:50 ~nb:30 ~domain:3 () in
  let _, stats = nrjn_results ra rb 3 in
  Alcotest.(check bool) "outer depth <= 50" true ((Exec_stats.left_depth stats) <= 50);
  Alcotest.(check int) "inner fully scanned" 30 (Exec_stats.right_depth stats)

let test_weighted_combine () =
  let ra, rb = make_pair () in
  let wcombine a b = (0.3 *. a) +. (0.7 *. b) in
  let stream, _ =
    Rank_join.hrjn ~combine:wcombine ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  let results = Operator.scored_take stream 10 in
  let joined =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra rb
  in
  let score =
    Expr.weighted_sum
      [ (0.3, Expr.col ~relation:"A" "score"); (0.7, Expr.col ~relation:"B" "score") ]
  in
  let oracle = Relation.top_k ~score ~k:10 joined in
  Test_util.check_score_multiset "weighted top-10" (List.map snd oracle)
    (List.map snd results)

(* Resumption regressions (the cursor contract): a stream paused mid-way
   must continue exactly where it stopped, and a drained stream must stay
   exhausted — repeated s_next past exhaustion returns None without
   re-reading the (already exhausted) inputs. *)

let drain_via_next s =
  let rec go acc =
    match s.Operator.s_next () with
    | Some r -> go (r :: acc)
    | None -> List.rev acc
  in
  go []

let take_via_next s n =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match s.Operator.s_next () with
      | Some r -> go (r :: acc) (n - 1)
      | None -> List.rev acc
  in
  go [] n

let test_hrjn_resume_midway () =
  let ra, rb = make_pair ~na:30 ~nb:30 ~domain:3 ~seed:51 () in
  let full =
    let stream, _ =
      Rank_join.hrjn ~combine ~left:(rank_input ra) ~right:(rank_input rb) ()
    in
    Operator.scored_to_list stream
  in
  let stream, _ =
    Rank_join.hrjn ~combine ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  stream.Operator.s_open ();
  let first = take_via_next stream 5 in
  let rest = drain_via_next stream in
  stream.Operator.s_close ();
  Alcotest.(check bool) "paused + resumed = uninterrupted" true
    (List.equal (fun (_, a) (_, b) -> Float.equal a b) full (first @ rest))

let test_hrjn_exhausted_stays_exhausted () =
  let ra, rb = make_pair ~na:25 ~nb:25 ~domain:3 ~seed:53 () in
  let stream, stats =
    Rank_join.hrjn ~combine ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  stream.Operator.s_open ();
  let all = drain_via_next stream in
  Alcotest.(check int) "full join drained"
    (List.length (oracle_topk ra rb max_int))
    (List.length all);
  let dl = Exec_stats.left_depth stats in
  let dr = Exec_stats.right_depth stats in
  for _ = 1 to 5 do
    Alcotest.(check bool) "still exhausted" true
      (Option.is_none (stream.Operator.s_next ()))
  done;
  Alcotest.(check int) "left depth frozen past exhaustion" dl
    (Exec_stats.left_depth stats);
  Alcotest.(check int) "right depth frozen past exhaustion" dr
    (Exec_stats.right_depth stats);
  stream.Operator.s_close ()

let test_hrjn_exhausted_empty_side_stays_stopped () =
  let empty = Relation.create (Test_util.scored_schema "A") [] in
  let rb = Test_util.scored_relation "B" ~n:100 ~domain:4 ~seed:55 in
  let stream, stats =
    Rank_join.hrjn ~combine ~left:(rank_input empty) ~right:(rank_input rb) ()
  in
  stream.Operator.s_open ();
  Alcotest.(check bool) "empty join" true
    (Option.is_none (stream.Operator.s_next ()));
  for _ = 1 to 10 do
    ignore (stream.Operator.s_next ())
  done;
  Alcotest.(check bool) "live side not re-read past exhaustion" true
    (Exec_stats.right_depth stats <= 2);
  stream.Operator.s_close ()

let test_nrjn_resume_midway () =
  let ra, rb = make_pair ~na:30 ~nb:30 ~domain:3 ~seed:57 () in
  let mk () =
    let pred = Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") in
    let inner = Operator.of_list (Relation.schema rb) (Relation.tuples rb) in
    let inner_score tu = Value.to_float (Tuple.get tu score_idx) in
    Rank_join.nrjn ~combine ~pred ~outer:(scored_stream ra) ~inner ~inner_score
      ()
  in
  let full =
    let stream, _ = mk () in
    Operator.scored_to_list stream
  in
  let stream, _ = mk () in
  stream.Operator.s_open ();
  let first = take_via_next stream 5 in
  let rest = drain_via_next stream in
  stream.Operator.s_close ();
  Alcotest.(check bool) "paused + resumed = uninterrupted" true
    (List.equal (fun (_, a) (_, b) -> Float.equal a b) full (first @ rest))

let test_nrjn_exhausted_stays_exhausted () =
  let ra = Test_util.scored_relation "A" ~n:40 ~domain:3 ~seed:59 in
  let empty = Relation.create (Test_util.scored_schema "B") [] in
  let pred = Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") in
  let inner = Operator.of_list (Relation.schema empty) [] in
  let inner_score tu = Value.to_float (Tuple.get tu score_idx) in
  let stream, stats =
    Rank_join.nrjn ~combine ~pred ~outer:(scored_stream ra) ~inner ~inner_score
      ()
  in
  stream.Operator.s_open ();
  Alcotest.(check bool) "empty join" true
    (Option.is_none (stream.Operator.s_next ()));
  let d = Exec_stats.left_depth stats in
  for _ = 1 to 10 do
    Alcotest.(check bool) "still exhausted" true
      (Option.is_none (stream.Operator.s_next ()))
  done;
  Alcotest.(check int) "outer depth frozen past exhaustion" d
    (Exec_stats.left_depth stats);
  stream.Operator.s_close ()

let prop_hrjn_equals_oracle =
  QCheck.Test.make ~name:"hrjn: top-k = join-then-sort (random workloads)"
    ~count:60
    QCheck.(pair Test_util.small_rel_params (QCheck.int_range 1 25))
    (fun ((seed, n, domain), k) ->
      let ra = Test_util.scored_relation "A" ~n ~domain ~seed in
      let rb = Test_util.scored_relation "B" ~n ~domain ~seed:(seed + 100) in
      let results, _ = hrjn_results ra rb k in
      let oracle = oracle_topk ra rb k in
      let e = Test_util.score_multiset (List.map snd oracle) in
      let a = Test_util.score_multiset (List.map snd results) in
      List.length e = List.length a
      && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) e a)

let prop_nrjn_equals_oracle =
  QCheck.Test.make ~name:"nrjn: top-k = join-then-sort (random workloads)"
    ~count:40
    QCheck.(pair Test_util.small_rel_params (QCheck.int_range 1 25))
    (fun ((seed, n, domain), k) ->
      let ra = Test_util.scored_relation "A" ~n ~domain ~seed in
      let rb = Test_util.scored_relation "B" ~n ~domain ~seed:(seed + 200) in
      let results, _ = nrjn_results ra rb k in
      let oracle = oracle_topk ra rb k in
      let e = Test_util.score_multiset (List.map snd oracle) in
      let a = Test_util.score_multiset (List.map snd results) in
      List.length e = List.length a
      && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) e a)

let prop_hrjn_never_emits_below_later =
  QCheck.Test.make ~name:"hrjn: output is non-increasing" ~count:60
    Test_util.small_rel_params
    (fun (seed, n, domain) ->
      let ra = Test_util.scored_relation "A" ~n ~domain ~seed in
      let rb = Test_util.scored_relation "B" ~n ~domain ~seed:(seed + 300) in
      let stream, _ =
        Rank_join.hrjn ~combine ~left:(rank_input ra) ~right:(rank_input rb) ()
      in
      let scores = List.map snd (Operator.scored_to_list stream) in
      let rec ok = function
        | a :: (b :: _ as rest) -> a +. 1e-9 >= b && ok rest
        | _ -> true
      in
      ok scores)

let suites =
  [
    ( "exec.rank_join.hrjn",
      [
        Alcotest.test_case "matches oracle" `Quick test_hrjn_matches_oracle;
        Alcotest.test_case "adaptive polling" `Quick test_hrjn_adaptive_polling;
        Alcotest.test_case "early out" `Quick test_hrjn_early_out;
        Alcotest.test_case "full drain" `Quick test_hrjn_emits_all_results_when_k_large;
        Alcotest.test_case "empty inputs" `Quick test_hrjn_empty_inputs;
        Alcotest.test_case "empty input depth" `Quick test_hrjn_empty_input_depth;
        Alcotest.test_case "threshold safety" `Quick test_hrjn_threshold_safety;
        Alcotest.test_case "restart" `Quick test_hrjn_restart;
        Alcotest.test_case "depths grow with k" `Quick test_hrjn_depths_grow_with_k;
        Alcotest.test_case "buffer tracked" `Quick test_hrjn_buffer_tracked;
        Alcotest.test_case "weighted combine" `Quick test_weighted_combine;
        Alcotest.test_case "resume midway" `Quick test_hrjn_resume_midway;
        Alcotest.test_case "exhaustion is sticky" `Quick
          test_hrjn_exhausted_stays_exhausted;
        Alcotest.test_case "exhausted-empty side stays stopped" `Quick
          test_hrjn_exhausted_empty_side_stays_stopped;
        QCheck_alcotest.to_alcotest prop_hrjn_equals_oracle;
        QCheck_alcotest.to_alcotest prop_hrjn_never_emits_below_later;
      ] );
    ( "exec.rank_join.nrjn",
      [
        Alcotest.test_case "matches oracle" `Quick test_nrjn_matches_oracle;
        Alcotest.test_case "empty inner" `Quick test_nrjn_empty_inner;
        Alcotest.test_case "empty inner depth" `Quick test_nrjn_empty_inner_depth;
        Alcotest.test_case "depth instrumentation" `Quick test_nrjn_depth_instrumentation;
        Alcotest.test_case "resume midway" `Quick test_nrjn_resume_midway;
        Alcotest.test_case "exhaustion is sticky" `Quick
          test_nrjn_exhausted_stays_exhausted;
        QCheck_alcotest.to_alcotest prop_nrjn_equals_oracle;
      ] );
  ]
