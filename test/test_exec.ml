(* Tests for scans, filters, sort, and the traditional join operators. *)

open Relalg
open Exec

let setup_catalog ?(n = 60) ?(domain = 6) ?(seed = 3) () =
  let cat = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create seed in
  ignore
    (Workload.Generator.load_scored_table cat prng ~name:"A" ~n
       ~key_domain:domain ());
  ignore
    (Workload.Generator.load_scored_table cat
       (Rkutil.Prng.create (seed + 1))
       ~name:"B" ~n ~key_domain:domain ());
  cat

let relation_of_table cat name =
  let info = Storage.Catalog.table cat name in
  Relation.create info.Storage.Catalog.tb_schema
    (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)

let sort_budget cat = Sort.budget (Storage.Catalog.pool cat)

let test_heap_scan_roundtrip () =
  let cat = setup_catalog () in
  let info = Storage.Catalog.table cat "A" in
  let out = Operator.to_list (Scan.heap info) in
  Alcotest.(check int) "all tuples" 60 (List.length out)

let test_scan_restartable () =
  let cat = setup_catalog () in
  let info = Storage.Catalog.table cat "A" in
  let op = Scan.heap info in
  let a = Operator.to_list op in
  let b = Operator.to_list op in
  Alcotest.(check bool) "same output twice" true (List.equal Tuple.equal a b)

let test_index_scan_sorted () =
  let cat = setup_catalog () in
  let ix = Option.get (Storage.Catalog.find_index_on_expr cat ~table:"A"
      (Expr.col ~relation:"A" "score")) in
  let scored = Scan.index_desc_scored cat ix in
  let out = Operator.scored_to_list scored in
  Alcotest.(check int) "all tuples" 60 (List.length out);
  Test_util.check_non_increasing "index desc scores" (List.map snd out)

let test_filter () =
  let cat = setup_catalog () in
  let info = Storage.Catalog.table cat "A" in
  let pred = Expr.(Cmp (Ge, col ~relation:"A" "score", cfloat 0.5)) in
  let out = Operator.to_list (Basic_ops.filter pred (Scan.heap info)) in
  let schema = info.Storage.Catalog.tb_schema in
  let score_idx = Schema.index_of_exn schema ~relation:"A" "score" in
  List.iter
    (fun tu ->
      Alcotest.(check bool) "predicate holds" true
        (Value.to_float (Tuple.get tu score_idx) >= 0.5))
    out;
  let total = Relation.cardinality (relation_of_table cat "A") in
  let kept = List.length out in
  Alcotest.(check bool) "some filtered" true (kept < total)

let test_project () =
  let cat = setup_catalog () in
  let info = Storage.Catalog.table cat "A" in
  let out =
    Operator.to_list
      (Basic_ops.project [ (Some "A", "score") ] (Scan.heap info))
  in
  List.iter (fun tu -> Alcotest.(check int) "arity 1" 1 (Tuple.arity tu)) out

let test_project_exprs () =
  let cat = setup_catalog () in
  let info = Storage.Catalog.table cat "A" in
  let doubled =
    Basic_ops.project_exprs
      [
        ( Expr.(cfloat 2.0 * col ~relation:"A" "score"),
          Schema.column "double_score" Value.Tfloat );
      ]
      (Scan.heap info)
  in
  let out = Operator.to_list doubled in
  Alcotest.(check int) "count" 60 (List.length out);
  List.iter
    (fun tu ->
      let v = Value.to_float (Tuple.get tu 0) in
      Alcotest.(check bool) "in [0,2)" true (v >= 0.0 && v < 2.0))
    out

let test_limit () =
  let cat = setup_catalog () in
  let info = Storage.Catalog.table cat "A" in
  let out = Operator.to_list (Basic_ops.limit 7 (Scan.heap info)) in
  Alcotest.(check int) "limited" 7 (List.length out);
  (* Restart resets the limit. *)
  let op = Basic_ops.limit 7 (Scan.heap info) in
  ignore (Operator.to_list op);
  Alcotest.(check int) "after restart" 7 (List.length (Operator.to_list op))

let test_sort_in_memory () =
  let cat = setup_catalog () in
  let info = Storage.Catalog.table cat "A" in
  let sorted =
    Sort.by_expr (sort_budget cat) ~desc:true (Expr.col ~relation:"A" "score")
      (Scan.heap info)
  in
  let out = Operator.to_list sorted in
  let schema = info.Storage.Catalog.tb_schema in
  let score_idx = Schema.index_of_exn schema ~relation:"A" "score" in
  let scores = List.map (fun tu -> Value.to_float (Tuple.get tu score_idx)) out in
  Alcotest.(check int) "count preserved" 60 (List.length out);
  Test_util.check_non_increasing "sorted desc" scores

let test_sort_spills_and_charges_io () =
  let cat = setup_catalog ~n:500 () in
  let info = Storage.Catalog.table cat "A" in
  let io = Storage.Catalog.io cat in
  let tiny =
    Sort.budget ~memory_tuples:50 ~tuples_per_page:10 ~fan_in:3
      (Storage.Catalog.pool cat)
  in
  Storage.Io_stats.reset io;
  let sorted = Sort.by_expr tiny (Expr.col ~relation:"A" "score") (Scan.heap info) in
  let out = Operator.to_list sorted in
  Alcotest.(check int) "count preserved" 500 (List.length out);
  let snap = Storage.Io_stats.snapshot io in
  Alcotest.(check bool) "spill writes occurred" true (snap.Storage.Io_stats.page_writes > 0)

let prop_sort_is_permutation_and_ordered =
  QCheck.Test.make ~name:"sort: permutation and ordered (any memory budget)"
    ~count:60
    QCheck.(pair Test_util.small_rel_params (QCheck.int_range 2 40))
    (fun ((seed, n, domain), mem) ->
      let rel = Test_util.scored_relation "T" ~n ~domain ~seed in
      let io = Storage.Io_stats.create () in
      let pool = Storage.Buffer_pool.create ~frames:16 io in
      let b = Sort.budget ~memory_tuples:mem ~tuples_per_page:5 ~fan_in:3 pool in
      let op = Operator.of_list (Relation.schema rel) (Relation.tuples rel) in
      let sorted = Operator.to_list (Sort.by_expr b (Expr.col ~relation:"T" "score") op) in
      let score tu = Value.to_float (Tuple.get tu 2) in
      let ordered =
        let rec go = function
          | a :: (b :: _ as rest) -> score a <= score b && go rest
          | _ -> true
        in
        go sorted
      in
      let permutation =
        List.sort Tuple.compare sorted
        = List.sort Tuple.compare (Relation.tuples rel)
      in
      ordered && permutation)

(* All physical equi-join implementations must agree with the naive oracle. *)
let join_all_ways cat =
  let a = Storage.Catalog.table cat "A" in
  let b = Storage.Catalog.table cat "B" in
  let left_key = Expr.col ~relation:"A" "key" in
  let right_key = Expr.col ~relation:"B" "key" in
  let pred = Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") in
  let scan_a () = Scan.heap a and scan_b () = Scan.heap b in
  let ix_b_key =
    Option.get
      (Storage.Catalog.find_index_on_expr cat ~table:"B"
         (Expr.col ~relation:"B" "key"))
  in
  [
    ("nested_loops", Join.nested_loops ~block_size:7 ~pred (scan_a ()) (scan_b ()));
    ( "index_nl",
      Join.index_nested_loops ~left_key
        ~right_schema:b.Storage.Catalog.tb_schema
        ~lookup:(Scan.index_probe cat ix_b_key)
        (scan_a ()) );
    ("hash", Join.hash ~left_key ~right_key (scan_a ()) (scan_b ()));
    ( "sort_merge",
      Join.sort_merge ~left_key ~right_key (sort_budget cat) (scan_a ()) (scan_b ()) );
  ]

let test_joins_agree_with_oracle () =
  let cat = setup_catalog ~n:50 ~domain:5 () in
  let ra = relation_of_table cat "A" and rb = relation_of_table cat "B" in
  let oracle =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra rb
  in
  List.iter
    (fun (name, op) ->
      let got = Operator.to_list op in
      let got_rel = Relation.create (Schema.concat (Relation.schema ra) (Relation.schema rb)) got in
      Alcotest.(check bool) (name ^ " matches oracle") true
        (Relation.equal_bag oracle got_rel))
    (join_all_ways cat)

let prop_joins_agree =
  QCheck.Test.make ~name:"joins: all implementations = oracle" ~count:40
    Test_util.small_rel_params
    (fun (seed, n, domain) ->
      let ra = Test_util.scored_relation "A" ~n ~domain ~seed in
      let rb = Test_util.scored_relation "B" ~n:(max 1 (n / 2)) ~domain ~seed:(seed + 1) in
      let pred = Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") in
      let oracle = Relation.join ~on:pred ra rb in
      let io = Storage.Io_stats.create () in
      let pool = Storage.Buffer_pool.create io in
      let b = Sort.budget pool in
      let opa () = Operator.of_list (Relation.schema ra) (Relation.tuples ra) in
      let opb () = Operator.of_list (Relation.schema rb) (Relation.tuples rb) in
      let lk = Expr.col ~relation:"A" "key" and rk = Expr.col ~relation:"B" "key" in
      let impls =
        [
          Join.nested_loops ~block_size:3 ~pred (opa ()) (opb ());
          Join.hash ~left_key:lk ~right_key:rk (opa ()) (opb ());
          Join.sort_merge ~left_key:lk ~right_key:rk b (opa ()) (opb ());
        ]
      in
      let joined_schema = Schema.concat (Relation.schema ra) (Relation.schema rb) in
      List.for_all
        (fun op ->
          Relation.equal_bag oracle
            (Relation.create joined_schema (Operator.to_list op)))
        impls)

let test_join_with_residual () =
  let cat = setup_catalog ~n:40 ~domain:4 () in
  let a = Storage.Catalog.table cat "A" in
  let b = Storage.Catalog.table cat "B" in
  let residual =
    Expr.(Cmp (Gt, col ~relation:"A" "score", col ~relation:"B" "score"))
  in
  let joined =
    Join.hash ~residual
      ~left_key:(Expr.col ~relation:"A" "key")
      ~right_key:(Expr.col ~relation:"B" "key")
      (Scan.heap a) (Scan.heap b)
  in
  let schema = joined.Operator.schema in
  let ia = Schema.index_of_exn schema ~relation:"A" "score" in
  let ib = Schema.index_of_exn schema ~relation:"B" "score" in
  List.iter
    (fun tu ->
      Alcotest.(check bool) "residual holds" true
        (Value.to_float (Tuple.get tu ia) > Value.to_float (Tuple.get tu ib)))
    (Operator.to_list joined)

let test_top_n_matches_sort () =
  let cat = setup_catalog ~n:80 () in
  let info = Storage.Catalog.table cat "A" in
  let score = Expr.col ~relation:"A" "score" in
  let top = Operator.scored_to_list (Top_n.by_expr ~k:10 score (Scan.heap info)) in
  let rel = relation_of_table cat "A" in
  let oracle = Relation.top_k ~score ~k:10 rel in
  Test_util.check_score_multiset "top-n = sort top-k" (List.map snd oracle)
    (List.map snd top);
  Test_util.check_non_increasing "top-n ordered" (List.map snd top)

let nan_schema =
  Schema.of_columns
    [ Schema.column "id" Value.Tint; Schema.column "s" Value.Tfloat ]

let nan_row i f = Tuple.make [ Value.Int i; Value.Float f ]

(* A NaN score must be dropped on entry — in particular a NaN that arrives
   while the heap is filling would otherwise sit at the root and reject every
   later tuple (all comparisons against NaN are false). *)
let test_top_n_drops_nan () =
  let rows =
    [ nan_row 0 Float.nan; nan_row 1 5.0; nan_row 2 3.0; nan_row 3 Float.nan;
      nan_row 4 9.0; nan_row 5 1.0 ]
  in
  let out =
    Operator.scored_to_list
      (Top_n.by_expr ~k:3 (Expr.col "s") (Operator.of_list nan_schema rows))
  in
  Alcotest.(check (list (float 0.0)))
    "NaN never ranks" [ 9.0; 5.0; 3.0 ] (List.map snd out)

(* Score ties are broken on tuple contents, so the selected set and its
   emission order must be identical for any arrival order of the input. *)
let test_top_n_tie_determinism () =
  let rows =
    [ nan_row 1 5.0; nan_row 2 5.0; nan_row 3 5.0; nan_row 4 5.0; nan_row 5 2.0 ]
  in
  let run order =
    Operator.scored_to_list
      (Top_n.by_expr ~k:2 (Expr.col "s") (Operator.of_list nan_schema order))
  in
  let forward = run rows and backward = run (List.rev rows) in
  Alcotest.(check int) "k rows" 2 (List.length forward);
  Alcotest.(check bool) "order-independent" true
    (List.equal
       (fun (t1, s1) (t2, s2) -> Tuple.equal t1 t2 && Float.equal s1 s2)
       forward backward)

let test_top_n_reports_stats () =
  let cat = setup_catalog ~n:80 () in
  let info = Storage.Catalog.table cat "A" in
  let stats = Exec_stats.create 1 in
  let top =
    Top_n.by_expr ~stats ~k:10 (Expr.col ~relation:"A" "score")
      (Scan.heap info)
  in
  let out = Operator.scored_to_list top in
  Alcotest.(check int) "whole input consumed" 80 (Exec_stats.depth stats 0);
  Alcotest.(check int) "heap bounded by k" 10 (Exec_stats.buffer_max stats);
  Alcotest.(check int) "emitted = |output|" (List.length out)
    (Exec_stats.emitted stats)

let suites =
  [
    ( "exec.scan",
      [
        Alcotest.test_case "heap roundtrip" `Quick test_heap_scan_roundtrip;
        Alcotest.test_case "restartable" `Quick test_scan_restartable;
        Alcotest.test_case "index desc sorted" `Quick test_index_scan_sorted;
      ] );
    ( "exec.basic_ops",
      [
        Alcotest.test_case "filter" `Quick test_filter;
        Alcotest.test_case "project" `Quick test_project;
        Alcotest.test_case "project exprs" `Quick test_project_exprs;
        Alcotest.test_case "limit" `Quick test_limit;
      ] );
    ( "exec.sort",
      [
        Alcotest.test_case "in-memory" `Quick test_sort_in_memory;
        Alcotest.test_case "spills" `Quick test_sort_spills_and_charges_io;
        QCheck_alcotest.to_alcotest prop_sort_is_permutation_and_ordered;
      ] );
    ( "exec.join",
      [
        Alcotest.test_case "agree with oracle" `Quick test_joins_agree_with_oracle;
        Alcotest.test_case "residual predicate" `Quick test_join_with_residual;
        QCheck_alcotest.to_alcotest prop_joins_agree;
      ] );
    ( "exec.top_n",
      [
        Alcotest.test_case "matches sort" `Quick test_top_n_matches_sort;
        Alcotest.test_case "drops NaN scores" `Quick test_top_n_drops_nan;
        Alcotest.test_case "deterministic ties" `Quick test_top_n_tie_determinism;
        Alcotest.test_case "reports stats" `Quick test_top_n_reports_stats;
      ] );
  ]
