(* Sharded scatter/gather: partitioning laws, and coordinator answers
   that must be cell-identical to single-node execution over the same
   data (the mirror). *)

open Relalg
module P = Shard.Partition
module C = Shard.Coordinator

let setup_catalog ?(n = 150) ?(tables = [ "A"; "B" ]) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (i + 70))
           ~name ~n ~key_domain:12 ()))
    tables;
  cat

(* ------------------------------------------------------------------ *)
(* Partition unit tests                                                *)

let test_partition_split_exhaustive () =
  let cat = setup_catalog () in
  let part = P.derive ~n:4 cat in
  let shards = P.split part cat in
  Alcotest.(check int) "four shards" 4 (Array.length shards);
  List.iter
    (fun (info : Storage.Catalog.table_info) ->
      let table = info.Storage.Catalog.tb_name in
      let total =
        Array.fold_left
          (fun acc sh ->
            match Storage.Catalog.find_table sh table with
            | None -> Alcotest.failf "table %s missing from a shard" table
            | Some i ->
                acc
                + List.length (Storage.Heap_file.to_list i.Storage.Catalog.tb_heap))
          0 shards
      in
      Alcotest.(check int)
        (table ^ " rows conserved")
        (List.length (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap))
        total;
      (* Every row of shard s must assign to s: split and assign agree. *)
      Array.iteri
        (fun s sh ->
          match Storage.Catalog.find_table sh table with
          | None -> ()
          | Some i ->
              List.iter
                (fun tu ->
                  Alcotest.(check int) "assign agrees with split" s
                    (P.assign part ~table i.Storage.Catalog.tb_schema tu))
                (Storage.Heap_file.to_list i.Storage.Catalog.tb_heap))
        shards;
      (* Secondary indexes are replicated on every shard. *)
      Array.iter
        (fun sh ->
          Alcotest.(check int)
            (table ^ " indexes replicated")
            (List.length (Storage.Catalog.indexes_on cat table))
            (List.length (Storage.Catalog.indexes_on sh table)))
        shards)
    (Storage.Catalog.tables cat)

let test_partition_hash_stable () =
  (* The hash is a pure function of the persist encoding — the property
     that lets an external --shard-of process agree with the
     coordinator. *)
  List.iter
    (fun v ->
      Alcotest.(check int) "encode-hash"
        (Hashtbl.hash (Storage.Persist.value_encode v) land max_int)
        (P.hash_value v))
    [ Value.Int 42; Value.Float 0.75; Value.Str "x"; Value.Null ]

let test_partition_specs () =
  let cat = setup_catalog () in
  (match P.scheme_of (P.derive ~n:3 cat) "A" with
  | Some (P.Hash "key") -> ()
  | _ -> Alcotest.fail "default spec should hash on key");
  (match P.scheme_of (P.derive ~spec:"range:score" ~n:3 cat) "A" with
  | Some (P.Score_range { column = "score"; cuts }) ->
      Alcotest.(check int) "n-1 cuts" 2 (Array.length cuts);
      Alcotest.(check bool) "cuts ascending" true (cuts.(0) <= cuts.(1))
  | _ -> Alcotest.fail "range spec should range-partition score");
  (match P.scheme_of (P.derive ~spec:"hash:score" ~n:3 cat) "A" with
  | Some (P.Hash "score") -> ()
  | _ -> Alcotest.fail "hash:<col> spec")

let test_co_partitioned () =
  let cat = setup_catalog () in
  let part = P.derive ~n:3 cat in
  Alcotest.(check bool) "single table" true
    (P.co_partitioned part ~tables:[ "A" ] ~joins:[]);
  Alcotest.(check bool) "key = key join" true
    (P.co_partitioned part ~tables:[ "A"; "B" ]
       ~joins:[ ("A", "key", "B", "key") ]);
  Alcotest.(check bool) "join off the partition column" false
    (P.co_partitioned part ~tables:[ "A"; "B" ]
       ~joins:[ ("A", "id", "B", "id") ]);
  let range = P.derive ~spec:"range:score" ~n:3 cat in
  Alcotest.(check bool) "range tables never co-partition joins" false
    (P.co_partitioned range ~tables:[ "A"; "B" ]
       ~joins:[ ("A", "key", "B", "key") ])

(* ------------------------------------------------------------------ *)
(* Coordinator vs single-node equality                                 *)

let with_cluster ?spec ?(n = 3) ?tables f =
  let cat = setup_catalog ?tables () in
  let cl = Shard.Cluster.start ?spec ~n cat in
  Fun.protect
    ~finally:(fun () -> Shard.Cluster.stop cl)
    (fun () ->
      let coord = Shard.Cluster.coordinator cl in
      let ses = C.open_session coord in
      Fun.protect ~finally:(fun () -> C.close_session ses) (fun () -> f cl coord ses))

let check_value = Alcotest.testable Value.pp Value.equal

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_matches_single_node ?(expect_scatter = true) coord ses sql =
  let reply =
    match C.query ses sql with
    | Ok r -> r
    | Error e -> Alcotest.failf "coordinator: %s" (Server.Service.error_message e)
  in
  let reference =
    match Sqlfront.Sql.query (C.mirror coord) sql with
    | Ok a -> a
    | Error e -> Alcotest.failf "single-node: %s" e
  in
  Alcotest.(check bool)
    (Printf.sprintf "scattered? %s" sql)
    expect_scatter reply.C.scattered;
  Alcotest.(check (list string)) "columns" reference.Sqlfront.Sql.columns reply.C.columns;
  Alcotest.(check int)
    "row count"
    (List.length reference.Sqlfront.Sql.rows)
    (List.length reply.C.rows);
  List.iter2
    (fun want got ->
      Alcotest.(check (array check_value)) "row cells" want got)
    reference.Sqlfront.Sql.rows reply.C.rows;
  List.iter2
    (fun (want : float) got ->
      if Float.compare want got <> 0 then
        Alcotest.failf "score drift: %h vs %h" want got)
    reference.Sqlfront.Sql.scores reply.C.scores;
  reply

let test_topk_single_table () =
  with_cluster @@ fun _cl coord ses ->
  let r =
    check_matches_single_node coord ses
      "SELECT A.id, A.score FROM A ORDER BY A.score DESC LIMIT 7"
  in
  Alcotest.(check int) "per-shard depths reported" 3 (Array.length r.C.depths);
  Alcotest.(check bool) "depth bounded by k'" true
    (Array.for_all (fun d -> d <= 7) r.C.depths)

let test_topk_with_filter () =
  with_cluster @@ fun _cl coord ses ->
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id FROM A WHERE A.score >= 0.25 AND A.key <= 8 ORDER BY \
        A.score DESC LIMIT 6")

let test_topk_rank_column () =
  with_cluster @@ fun _cl coord ses ->
  ignore
    (check_matches_single_node coord ses
       "WITH ranked AS (SELECT A.id AS i, rank() OVER (ORDER BY A.score \
        DESC) AS r FROM A) SELECT i, r FROM ranked WHERE r <= 5")

let test_topk_co_partitioned_join () =
  with_cluster @@ fun _cl coord ses ->
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.4 * \
        A.score + 0.6 * B.score DESC LIMIT 5")

let test_join_not_co_partitioned_falls_back () =
  with_cluster @@ fun _cl coord ses ->
  (* Joined on id, partitioned on key: must fall back to the mirror and
     still answer correctly. *)
  ignore
    (check_matches_single_node ~expect_scatter:false coord ses
       "SELECT A.id, B.id FROM A, B WHERE A.id = B.id ORDER BY 0.5 * A.score \
        + 0.5 * B.score DESC LIMIT 4")

let test_window_sparse () =
  with_cluster @@ fun _cl coord ses ->
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id, rank() FROM A WHERE rank() BETWEEN 4 AND 11 ORDER BY \
        A.score DESC")

let test_window_dense () =
  with_cluster @@ fun _cl coord ses ->
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id, rank() FROM A WHERE dense_rank() BETWEEN 3 AND 8 ORDER \
        BY A.score DESC")

let test_window_residual_filter () =
  with_cluster @@ fun _cl coord ses ->
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id FROM A WHERE A.key >= 4 AND rank() BETWEEN 2 AND 9 ORDER \
        BY A.score DESC")

let test_range_partitioned_topk () =
  with_cluster ~spec:"range:score" @@ fun _cl coord ses ->
  let r =
    check_matches_single_node coord ses
      "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 8"
  in
  (* Under range partitioning on the score the top shard answers nearly
     alone — the merge should not have drained the cold shards. *)
  let sorted = Array.copy r.C.depths in
  Array.sort compare sorted;
  Alcotest.(check bool) "cold shard nearly idle" true (sorted.(0) <= 8)

let test_fetch_continuation_matches_one_shot () =
  with_cluster @@ fun _cl coord ses ->
  let sql =
    "WITH ranked AS (SELECT A.id AS i, rank() OVER (ORDER BY A.score DESC) \
     AS r FROM A) SELECT i, r FROM ranked WHERE r <= 9"
  in
  (match C.prepare ses ~name:"cur" sql with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "prepare: %s" (Server.Service.error_message e));
  let exec =
    match C.execute_prepared ses ~k:4 "cur" with
    | Ok r -> r
    | Error e -> Alcotest.failf "execute: %s" (Server.Service.error_message e)
  in
  Alcotest.(check bool) "execute scattered" true exec.C.scattered;
  let fetched =
    match C.fetch ses ~name:"cur" 5 with
    | Ok r -> r
    | Error e -> Alcotest.failf "fetch: %s" (Server.Service.error_message e)
  in
  let reference =
    match
      Sqlfront.Sql.query (C.mirror coord)
        "WITH ranked AS (SELECT A.id AS i, rank() OVER (ORDER BY A.score \
         DESC) AS r FROM A) SELECT i, r FROM ranked WHERE r <= 9"
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "reference: %s" e
  in
  let got = exec.C.rows @ fetched.C.rows in
  Alcotest.(check int) "4 + 5 rows" 9 (List.length got);
  List.iter2
    (fun want g -> Alcotest.(check (array check_value)) "continuation row" want g)
    reference.Sqlfront.Sql.rows got

let test_dml_routing_and_staleness () =
  with_cluster @@ fun _cl coord ses ->
  (match C.prepare ses ~name:"top" "SELECT A.id FROM A ORDER BY A.score DESC LIMIT ?" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "prepare: %s" (Server.Service.error_message e));
  (match C.execute_prepared ses ~k:3 "top" with
  | Ok r -> Alcotest.(check bool) "scattered" true r.C.scattered
  | Error e -> Alcotest.failf "execute: %s" (Server.Service.error_message e));
  (* A routed INSERT of an unbeatable row: applied to the mirror and to
     exactly the owning shard. *)
  (match C.query ses "INSERT INTO A VALUES (9001, 3, 99.5)" with
  | Ok r -> Alcotest.(check (option int)) "affected" (Some 1) r.C.affected
  | Error e -> Alcotest.failf "insert: %s" (Server.Service.error_message e));
  (* The gather cursor opened before the DML is now stale. *)
  (match C.fetch ses ~name:"top" 2 with
  | Error (Server.Service.Cursor_stale "top") -> ()
  | Ok _ -> Alcotest.fail "fetch after DML should be stale"
  | Error e -> Alcotest.failf "unexpected: %s" (Server.Service.error_message e));
  (* Scattered re-query sees the new row first — shards agree with the
     mirror. *)
  let r =
    check_matches_single_node coord ses
      "SELECT A.id, A.score FROM A ORDER BY A.score DESC LIMIT 3"
  in
  (match r.C.rows with
  | first :: _ -> Alcotest.(check check_value) "new row wins" (Value.Int 9001) first.(0)
  | [] -> Alcotest.fail "no rows");
  (* Broadcast DELETE keeps mirror and shards in lockstep too. *)
  (match C.query ses "DELETE FROM A WHERE A.id = 9001" with
  | Ok r -> Alcotest.(check (option int)) "deleted" (Some 1) r.C.affected
  | Error e -> Alcotest.failf "delete: %s" (Server.Service.error_message e));
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id, A.score FROM A ORDER BY A.score DESC LIMIT 3")

let test_shard_add_repartitions () =
  with_cluster ~n:2 @@ fun cl coord ses ->
  let epoch0 = C.part_epoch coord in
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 5");
  (match C.shard_add coord "" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "shard add: %s" msg);
  Alcotest.(check int) "three shards" 3 (Shard.Cluster.n_shards cl);
  Alcotest.(check bool) "epoch bumped" true (C.part_epoch coord > epoch0);
  Alcotest.(check int) "shard list" 3 (List.length (C.shard_list coord));
  let r =
    check_matches_single_node coord ses
      "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 5"
  in
  Alcotest.(check int) "depths resized" 3 (Array.length r.C.depths)

let test_explain_and_analyze () =
  with_cluster @@ fun _cl _coord ses ->
  let sql = "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 5" in
  (match C.explain ses sql with
  | Ok text ->
      let has s = contains ~needle:s text in
      Alcotest.(check bool) "GatherMerge node" true (has "GatherMerge");
      Alcotest.(check bool) "RemoteScan leaves" true (has "RemoteScan");
      Alcotest.(check bool) "k' bound" true (has "k'=5")
  | Error e -> Alcotest.failf "explain: %s" (Server.Service.error_message e));
  match C.analyze ses sql with
  | Ok text ->
      Alcotest.(check bool) "observed depths" true
        (contains ~needle:"observed_depth=" text)
  | Error e -> Alcotest.failf "analyze: %s" (Server.Service.error_message e)

let test_stats_aggregate () =
  with_cluster @@ fun _cl coord ses ->
  ignore
    (check_matches_single_node coord ses
       "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 3");
  let fields = C.stats coord in
  Alcotest.(check (option string)) "shards field" (Some "3")
    (List.assoc_opt "shards" fields);
  Alcotest.(check bool) "cluster counters summed" true
    (List.mem_assoc "cluster_queries" fields)

(* The wire front end end-to-end: coordinator replies carry depths and
   SHARD verbs are live. *)
let test_frontend_protocol () =
  let cat = setup_catalog () in
  let cl = Shard.Cluster.start ~n:3 cat in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rankopt-coord-%d.sock" (Unix.getpid ()))
  in
  let fr = Shard.Frontend.start cl (Server.Listener.Unix_socket path) in
  Fun.protect
    ~finally:(fun () ->
      Shard.Frontend.stop fr;
      Shard.Cluster.stop cl;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = Server.Client.connect (Server.Listener.Unix_socket path) in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let req line =
            match Server.Client.request c line with
            | Ok r -> r
            | Error e -> Alcotest.failf "transport: %s" e
          in
          let r =
            req "QUERY SELECT A.id FROM A ORDER BY A.score DESC LIMIT 4"
          in
          Alcotest.(check bool) "ok" true r.Server.Protocol.ok;
          Alcotest.(check (option string)) "scattered" (Some "1")
            (List.assoc_opt "scattered" r.Server.Protocol.fields);
          (match List.assoc_opt "depths" r.Server.Protocol.fields with
          | Some d ->
              Alcotest.(check int) "3 depth slots" 3
                (List.length (String.split_on_char ',' d))
          | None -> Alcotest.fail "no depths field");
          let sl = req "SHARD LIST" in
          Alcotest.(check int) "3 shard lines" 3
            (List.length sl.Server.Protocol.payload);
          let sa = req "SHARD ADD auto" in
          Alcotest.(check bool) "shard add ok" true sa.Server.Protocol.ok;
          let sl2 = req "SHARD LIST" in
          Alcotest.(check int) "4 shard lines" 4
            (List.length sl2.Server.Protocol.payload);
          let r2 =
            req "QUERY SELECT A.id FROM A ORDER BY A.score DESC LIMIT 4"
          in
          Alcotest.(check bool) "ok after reshard" true r2.Server.Protocol.ok))

let suites =
  [
    ( "shard partition",
      [
        Alcotest.test_case "split conserves and agrees with assign" `Quick
          test_partition_split_exhaustive;
        Alcotest.test_case "hash is encoding-stable" `Quick
          test_partition_hash_stable;
        Alcotest.test_case "derive specs" `Quick test_partition_specs;
        Alcotest.test_case "co-partitioning law" `Quick test_co_partitioned;
      ] );
    ( "shard coordinator",
      [
        Alcotest.test_case "top-k single table" `Quick test_topk_single_table;
        Alcotest.test_case "top-k with filters" `Quick test_topk_with_filter;
        Alcotest.test_case "top-k rank column" `Quick test_topk_rank_column;
        Alcotest.test_case "co-partitioned join scatters" `Quick
          test_topk_co_partitioned_join;
        Alcotest.test_case "non-co-partitioned join falls back" `Quick
          test_join_not_co_partitioned_falls_back;
        Alcotest.test_case "sparse rank window" `Quick test_window_sparse;
        Alcotest.test_case "dense rank window" `Quick test_window_dense;
        Alcotest.test_case "window residual filter" `Quick
          test_window_residual_filter;
        Alcotest.test_case "range partitioning stays exact" `Quick
          test_range_partitioned_topk;
        Alcotest.test_case "fetch continuation" `Quick
          test_fetch_continuation_matches_one_shot;
        Alcotest.test_case "DML routing and cursor staleness" `Quick
          test_dml_routing_and_staleness;
        Alcotest.test_case "SHARD ADD repartitions" `Quick
          test_shard_add_repartitions;
        Alcotest.test_case "explain and analyze" `Quick
          test_explain_and_analyze;
        Alcotest.test_case "stats aggregation" `Quick test_stats_aggregate;
        Alcotest.test_case "frontend protocol" `Quick test_frontend_protocol;
      ] );
  ]
