(* Any-k ranked-enumeration operator tests: full-stream order against the
   join-then-sort oracle, resumption past an initial prefix, exhaustion
   behaviour under repeated pulls, NaN pruning, and cooperative ticks. *)

open Relalg
open Exec

let key_of tu = Tuple.get tu 1
let score_of tu = Value.to_float (Tuple.get tu 2)

let input ?(weight = 1.0) rel =
  {
    Any_k.i_op = Operator.of_list (Relation.schema rel) (Relation.tuples rel);
    i_score = (fun tu -> weight *. score_of tu);
  }

let concat_schema rels =
  List.fold_left
    (fun acc r -> Schema.concat acc (Relation.schema r))
    (Relation.schema (List.hd rels))
    (List.tl rels)

(* Input 0 is the root; keys entry i-1 binds input i to its parent:
   the previous input for a path, input 0 for a star. *)
let mk_stream ?tick ?(weights = []) shape rels =
  let weight i =
    match List.nth_opt weights i with Some w -> w | None -> 1.0
  in
  let inputs = List.mapi (fun i r -> input ~weight:(weight i) r) rels in
  let keys =
    List.init
      (List.length rels - 1)
      (fun i ->
        let parent = match shape with `Path -> i | `Star -> 0 in
        (parent, key_of, key_of))
  in
  Any_k.enumerate ?tick ~schema:(concat_schema rels) ~inputs ~keys ()

let jeq a b = Expr.(col ~relation:a "key" = col ~relation:b "key")

let oracle_full ?(weights = []) shape rels =
  let weight i =
    match List.nth_opt weights i with Some w -> w | None -> 1.0
  in
  let names =
    List.map
      (fun r ->
        match (Schema.columns (Relation.schema r) : Schema.column list) with
        | { relation = Some n; _ } :: _ -> n
        | _ -> assert false)
      rels
  in
  let joined =
    match rels, names with
    | [ a; b ], [ na; nb ] -> Relation.join ~on:(jeq na nb) a b
    | [ a; b; c ], [ na; nb; nc ] ->
        let anchor = match shape with `Path -> nb | `Star -> na in
        Relation.join ~on:(jeq anchor nc) (Relation.join ~on:(jeq na nb) a b) c
    | _ -> assert false
  in
  let score =
    Expr.weighted_sum
      (List.mapi (fun i n -> (weight i, Expr.col ~relation:n "score")) names)
  in
  Relation.top_k ~score ~k:max_int joined

let drain_via_next s =
  let rec go acc =
    match s.Operator.s_next () with
    | Some r -> go (r :: acc)
    | None -> List.rev acc
  in
  go []

let take_via_next s n =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match s.Operator.s_next () with
      | Some r -> go (r :: acc) (n - 1)
      | None -> List.rev acc
  in
  go [] n

let check_against_oracle msg stream oracle =
  let got = Operator.scored_to_list stream in
  Test_util.check_score_multiset msg (List.map snd oracle) (List.map snd got);
  Test_util.check_non_increasing (msg ^ " ordered") (List.map snd got)

let test_path_two () =
  let a = Test_util.scored_relation "A" ~n:30 ~domain:4 ~seed:3 in
  let b = Test_util.scored_relation "B" ~n:25 ~domain:4 ~seed:4 in
  check_against_oracle "anyk path-2" (mk_stream `Path [ a; b ])
    (oracle_full `Path [ a; b ])

let test_path_three () =
  let a = Test_util.scored_relation "A" ~n:18 ~domain:3 ~seed:5 in
  let b = Test_util.scored_relation "B" ~n:16 ~domain:3 ~seed:6 in
  let c = Test_util.scored_relation "C" ~n:14 ~domain:3 ~seed:7 in
  check_against_oracle "anyk path-3" (mk_stream `Path [ a; b; c ])
    (oracle_full `Path [ a; b; c ])

let test_star_three () =
  let a = Test_util.scored_relation "A" ~n:18 ~domain:3 ~seed:8 in
  let b = Test_util.scored_relation "B" ~n:16 ~domain:3 ~seed:9 in
  let c = Test_util.scored_relation "C" ~n:14 ~domain:3 ~seed:10 in
  check_against_oracle "anyk star-3" (mk_stream `Star [ a; b; c ])
    (oracle_full `Star [ a; b; c ])

let test_weighted () =
  let a = Test_util.scored_relation "A" ~n:22 ~domain:4 ~seed:11 in
  let b = Test_util.scored_relation "B" ~n:22 ~domain:4 ~seed:12 in
  let weights = [ 0.25; 0.75 ] in
  check_against_oracle "anyk weighted"
    (mk_stream ~weights `Path [ a; b ])
    (oracle_full ~weights `Path [ a; b ])

(* The cursor contract: a stream paused after k answers resumes exactly
   where it stopped — the concatenation equals one uninterrupted drain. *)
let test_resumes_midway () =
  let a = Test_util.scored_relation "A" ~n:25 ~domain:3 ~seed:13 in
  let b = Test_util.scored_relation "B" ~n:25 ~domain:3 ~seed:14 in
  let full =
    let s = mk_stream `Path [ a; b ] in
    s.Operator.s_open ();
    let r = drain_via_next s in
    s.Operator.s_close ();
    r
  in
  let s = mk_stream `Path [ a; b ] in
  s.Operator.s_open ();
  let first = take_via_next s 7 in
  let rest = drain_via_next s in
  s.Operator.s_close ();
  Alcotest.(check bool) "resumed = uninterrupted" true
    (List.equal
       (fun (t1, s1) (t2, s2) -> Tuple.equal t1 t2 && Float.equal s1 s2)
       full (first @ rest))

let test_exhausted_stays_exhausted () =
  let a = Test_util.scored_relation "A" ~n:12 ~domain:2 ~seed:15 in
  let b = Test_util.scored_relation "B" ~n:12 ~domain:2 ~seed:16 in
  let s = mk_stream `Path [ a; b ] in
  s.Operator.s_open ();
  let all = drain_via_next s in
  Alcotest.(check int) "full join size"
    (List.length (oracle_full `Path [ a; b ]))
    (List.length all);
  for _ = 1 to 5 do
    Alcotest.(check bool) "still exhausted" true
      (Option.is_none (s.Operator.s_next ()))
  done;
  s.Operator.s_close ()

let test_nan_pruned () =
  let sch = Test_util.scored_schema "A" in
  let rows =
    [
      [| Value.Int 0; Value.Int 1; Value.Float 0.9 |];
      [| Value.Int 1; Value.Int 1; Value.Float Float.nan |];
      [| Value.Int 2; Value.Int 2; Value.Float 0.4 |];
    ]
  in
  let a = Relation.create sch rows in
  let b = Test_util.scored_relation "B" ~n:10 ~domain:2 ~seed:17 in
  let got = Operator.scored_to_list (mk_stream `Path [ a; b ]) in
  (* Only the two non-NaN A-rows can appear in answers, and no emitted
     total may be NaN. *)
  Alcotest.(check bool) "no NaN totals" true
    (List.for_all (fun (_, s) -> not (Float.is_nan s)) got);
  let clean = Relation.create sch (List.filteri (fun i _ -> i <> 1) rows) in
  Alcotest.(check int) "NaN row contributes nothing"
    (List.length (oracle_full `Path [ clean; b ]))
    (List.length got)

(* The build phase must call [tick] so a deadline can fire mid-build. *)
exception Interrupted_by_test

let test_tick_interrupts_build () =
  let a = Test_util.scored_relation "A" ~n:2000 ~domain:10 ~seed:18 in
  let b = Test_util.scored_relation "B" ~n:2000 ~domain:10 ~seed:19 in
  let calls = ref 0 in
  let tick () =
    incr calls;
    if !calls > 3 then raise Interrupted_by_test
  in
  let s = mk_stream ~tick `Path [ a; b ] in
  Alcotest.check_raises "tick escapes from the build" Interrupted_by_test
    (fun () ->
      s.Operator.s_open ();
      ignore (drain_via_next s));
  Alcotest.(check bool) "tick was polled" true (!calls > 3)

let suites =
  [
    ( "exec.any_k",
      [
        Alcotest.test_case "path-2 matches oracle" `Quick test_path_two;
        Alcotest.test_case "path-3 matches oracle" `Quick test_path_three;
        Alcotest.test_case "star-3 matches oracle" `Quick test_star_three;
        Alcotest.test_case "weighted scores" `Quick test_weighted;
        Alcotest.test_case "resumes midway" `Quick test_resumes_midway;
        Alcotest.test_case "exhaustion is sticky" `Quick
          test_exhausted_stays_exhausted;
        Alcotest.test_case "NaN rows pruned" `Quick test_nan_pruned;
        Alcotest.test_case "tick interrupts build" `Quick
          test_tick_interrupts_build;
      ] );
  ]
