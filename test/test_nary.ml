(* N-ary HRJN tests: correctness against the binary pipeline and the naive
   oracle, early-out, and the flat-vs-pipeline depth comparison. *)

open Relalg
open Exec

let score_idx = 2

let scored_stream rel =
  let sorted = Relation.sort_by ~desc:true (Expr.col "score") rel in
  Operator.scored_of_list (Relation.schema rel)
    (List.map
       (fun tu -> (tu, Value.to_float (Tuple.get tu score_idx)))
       (Relation.tuples sorted))

let nary_input rel =
  { Rank_join_nary.stream = scored_stream rel; key = (fun tu -> Tuple.get tu 1) }

let make_relations ?(m = 3) ?(n = 60) ?(domain = 6) ?(seed = 7) () =
  List.init m (fun i ->
      Test_util.scored_relation
        (String.make 1 (Char.chr (Char.code 'A' + i)))
        ~n ~domain ~seed:(seed + i))

let oracle relations k =
  let joined =
    match relations with
    | first :: rest ->
        List.fold_left
          (fun acc r ->
            let acc_schema = Relation.schema acc in
            let a0 = Schema.nth acc_schema 1 in
            let acc_key_rel = Option.get a0.Schema.relation in
            let r_name =
              Option.get (Schema.nth (Relation.schema r) 1).Schema.relation
            in
            Relation.join
              ~on:
                Expr.(
                  col ~relation:acc_key_rel "key" = col ~relation:r_name "key")
              acc r)
          first rest
    | [] -> failwith "no relations"
  in
  let score =
    Expr.weighted_sum
      (List.map
         (fun r ->
           let name = Option.get (Schema.nth (Relation.schema r) 1).Schema.relation in
           (1.0, Expr.col ~relation:name "score"))
         relations)
  in
  Relation.top_k ~score ~k joined

let run_nary relations k =
  let stream, stats =
    Rank_join_nary.hrjn_nary ~inputs:(List.map nary_input relations) ()
  in
  (Operator.scored_take stream k, stats)

let test_nary_matches_oracle_3way () =
  let rels = make_relations () in
  List.iter
    (fun k ->
      let results, _ = run_nary rels k in
      Test_util.check_score_multiset
        (Printf.sprintf "3-way top-%d" k)
        (List.map snd (oracle rels k))
        (List.map snd results);
      Test_util.check_non_increasing "ordered" (List.map snd results))
    [ 1; 5; 20 ]

let test_nary_matches_oracle_4way () =
  let rels = make_relations ~m:4 ~n:30 ~domain:4 () in
  let results, _ = run_nary rels 6 in
  Test_util.check_score_multiset "4-way top-6"
    (List.map snd (oracle rels 6))
    (List.map snd results)

let test_nary_two_inputs_equals_binary () =
  let rels = make_relations ~m:2 ~n:50 ~domain:5 ~seed:21 () in
  let results, _ = run_nary rels 10 in
  match rels with
  | [ ra; rb ] ->
      let stream, _ =
        Rank_join.hrjn ~combine:( +. )
          ~left:{ Rank_join.stream = scored_stream ra; key = (fun tu -> Tuple.get tu 1) }
          ~right:{ Rank_join.stream = scored_stream rb; key = (fun tu -> Tuple.get tu 1) }
          ()
      in
      let binary = Operator.scored_take stream 10 in
      Test_util.check_score_multiset "nary(2) = binary"
        (List.map snd binary) (List.map snd results)
  | _ -> Alcotest.fail "expected two relations"

let test_nary_early_out () =
  let rels = make_relations ~m:3 ~n:500 ~domain:3 ~seed:31 () in
  let _, stats = run_nary rels 3 in
  Array.iteri
    (fun i d ->
      Alcotest.(check bool) (Printf.sprintf "input %d early out" i) true (d < 500))
    (Exec_stats.depths stats)

let test_nary_empty_input () =
  let rels = make_relations ~m:2 () in
  let empty = Relation.create (Test_util.scored_schema "Z") [] in
  let results, _ = run_nary (rels @ [ empty ]) 5 in
  Alcotest.(check int) "no results" 0 (List.length results)

(* One empty input makes the whole join empty: the operator must learn this
   after at most one round-robin pass, not drain the live inputs. *)
let test_nary_empty_input_depth () =
  let rels = make_relations ~m:2 ~n:150 () in
  let empty = Relation.create (Test_util.scored_schema "Z") [] in
  let results, stats = run_nary (rels @ [ empty ]) 5 in
  Alcotest.(check int) "no results" 0 (List.length results);
  for i = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "input %d depth O(1)" i)
      true
      (Exec_stats.depth stats i <= 2)
  done

let test_nary_rejects_single_input () =
  let rels = make_relations ~m:1 () in
  Alcotest.check_raises "arity"
    (Invalid_argument "Rank_join_nary.hrjn_nary: need at least 2 inputs")
    (fun () -> ignore (Rank_join_nary.hrjn_nary ~inputs:(List.map nary_input rels) ()))

let test_nary_flat_vs_pipeline_depths () =
  (* The flat operator's total consumption should not exceed the binary
     pipeline's by much (and is typically lower: no intermediate k
     inflation). We assert it stays within 2x as a sanity envelope. *)
  let rels = make_relations ~m:3 ~n:400 ~domain:40 ~seed:41 () in
  let _, nstats = run_nary rels 10 in
  let nary_total = Array.fold_left ( + ) 0 (Exec_stats.depths nstats) in
  match rels with
  | [ ra; rb; rc ] ->
      let input r = { Rank_join.stream = scored_stream r; key = (fun tu -> Tuple.get tu 1) } in
      let child, child_stats = Rank_join.hrjn ~combine:( +. ) ~left:(input ra) ~right:(input rb) () in
      let top, top_stats =
        Rank_join.hrjn ~combine:( +. )
          ~left:
            {
              Rank_join.stream = child;
              key =
                (let schema = child.Operator.s_schema in
                 let idx = Schema.index_of_exn schema ~relation:"A" "key" in
                 fun tu -> Tuple.get tu idx);
            }
          ~right:(input rc) ()
      in
      ignore (Operator.scored_take top 10);
      let pipeline_total =
        (Exec_stats.left_depth child_stats) + (Exec_stats.right_depth child_stats)
        + (Exec_stats.right_depth top_stats)
      in
      Alcotest.(check bool)
        (Printf.sprintf "flat %d vs pipeline %d" nary_total pipeline_total)
        true
        (nary_total <= 2 * pipeline_total)
  | _ -> Alcotest.fail "expected three relations"

let prop_nary_equals_oracle =
  QCheck.Test.make ~name:"nary hrjn: top-k = oracle (random)" ~count:40
    QCheck.(
      triple (int_range 0 9999) (pair (int_range 2 30) (int_range 1 6))
        (int_range 1 12))
    (fun (seed, (n, domain), k) ->
      let rels = make_relations ~m:3 ~n ~domain ~seed () in
      let results, _ = run_nary rels k in
      let e = Test_util.score_multiset (List.map snd (oracle rels k)) in
      let a = Test_util.score_multiset (List.map snd results) in
      List.length e = List.length a
      && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) e a)

let suites =
  [
    ( "exec.rank_join_nary",
      [
        Alcotest.test_case "3-way oracle" `Quick test_nary_matches_oracle_3way;
        Alcotest.test_case "4-way oracle" `Quick test_nary_matches_oracle_4way;
        Alcotest.test_case "nary(2) = binary" `Quick test_nary_two_inputs_equals_binary;
        Alcotest.test_case "early out" `Quick test_nary_early_out;
        Alcotest.test_case "empty input" `Quick test_nary_empty_input;
        Alcotest.test_case "empty input depth" `Quick test_nary_empty_input_depth;
        Alcotest.test_case "arity check" `Quick test_nary_rejects_single_input;
        Alcotest.test_case "flat vs pipeline depths" `Quick test_nary_flat_vs_pipeline_depths;
        QCheck_alcotest.to_alcotest prop_nary_equals_oracle;
      ] );
  ]

(* --- optimizer integration: HRJN* plans --- *)

let star_catalog ?(n = 2000) ?(domain = 200) ?(seed = 71) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B"; "C" ];
  cat

let star_query ?(k = 10) () =
  Core.Logical.make
    ~relations:
      (List.map
         (fun t -> Core.Logical.base ~score:(Expr.col ~relation:t "score") t)
         [ "A"; "B"; "C" ])
    ~joins:
      [
        Core.Logical.equijoin ("A", "key") ("B", "key");
        Core.Logical.equijoin ("B", "key") ("C", "key");
      ]
    ~k ()

let rec plan_has_nary = function
  | Core.Plan.Nary_rank_join _ -> true
  | Core.Plan.Table_scan _ | Core.Plan.Index_scan _ | Core.Plan.Rank_index_scan _
  | Core.Plan.Remote_scan _ ->
      false
  | Core.Plan.Gather_merge { inputs; _ } -> List.exists plan_has_nary inputs
  | Core.Plan.Filter { input; _ }
  | Core.Plan.Sort { input; _ }
  | Core.Plan.Top_k { input; _ }
  | Core.Plan.Exchange { input; _ } ->
      plan_has_nary input
  | Core.Plan.Join { left; right; _ } -> plan_has_nary left || plan_has_nary right
  | Core.Plan.Any_k { inputs; _ } -> List.exists plan_has_nary inputs

let test_enumerator_generates_nary () =
  let cat = star_catalog () in
  let q = star_query () in
  let env = Core.Cost_model.default_env ~k_min:10 cat q in
  let result = Core.Enumerator.run env in
  let full = Core.Enumerator.relation_mask env [ "A"; "B"; "C" ] in
  Alcotest.(check bool) "an HRJN* plan is retained" true
    (List.exists
       (fun sp -> plan_has_nary sp.Core.Memo.plan)
       (Core.Memo.plans result.Core.Enumerator.memo full));
  (* And on this selective star workload it should actually win. *)
  match result.Core.Enumerator.best with
  | Some sp -> Alcotest.(check bool) "chosen" true (plan_has_nary sp.Core.Memo.plan)
  | None -> Alcotest.fail "no plan chosen"

let test_nary_plan_executes_correctly () =
  let cat = star_catalog ~n:300 ~domain:12 () in
  let q = star_query ~k:8 () in
  let env = Core.Cost_model.default_env ~k_min:8 cat q in
  let result = Core.Enumerator.run env in
  let full = Core.Enumerator.relation_mask env [ "A"; "B"; "C" ] in
  match
    List.find_opt
      (fun sp -> plan_has_nary sp.Core.Memo.plan)
      (Core.Memo.plans result.Core.Enumerator.memo full)
  with
  | None -> Alcotest.fail "no HRJN* plan retained"
  | Some sp ->
      (* It must verify and execute to the oracle's answers. *)
      (match
         Lint.Engine.errors (Lint.Engine.lint_plan cat sp.Core.Memo.plan)
       with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "HRJN* plan ill-formed: %s" (Lint.Diag.to_string d));
      let plan = Core.Plan.Top_k { k = 8; input = sp.Core.Memo.plan } in
      let run = Core.Executor.run cat plan in
      let rel name =
        let info = Storage.Catalog.table cat name in
        Relation.create info.Storage.Catalog.tb_schema
          (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
      in
      let joined =
        Relation.join
          ~on:Expr.(col ~relation:"B" "key" = col ~relation:"C" "key")
          (Relation.join
             ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
             (rel "A") (rel "B"))
          (rel "C")
      in
      let score =
        Expr.weighted_sum
          (List.map (fun t -> (1.0, Expr.col ~relation:t "score")) [ "A"; "B"; "C" ])
      in
      let oracle = Relation.top_k ~score ~k:8 joined in
      Test_util.check_score_multiset "HRJN* = oracle" (List.map snd oracle)
        (List.map snd run.Core.Executor.rows);
      Alcotest.(check int) "instrumented" 1 (List.length run.Core.Executor.nary_nodes)

let test_nary_not_generated_for_chain_keys () =
  (* Distinct join columns: no shared key, no HRJN* candidate. *)
  let cat = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 81 in
  let schema =
    Schema.of_columns
      [ Schema.column "k1" Value.Tint; Schema.column "k2" Value.Tint;
        Schema.column "score" Value.Tfloat ]
  in
  List.iter
    (fun name ->
      let tuples =
        List.init 100 (fun _ ->
            [| Value.Int (Rkutil.Prng.int prng 10); Value.Int (Rkutil.Prng.int prng 10);
               Value.Float (Rkutil.Prng.uniform prng) |])
      in
      ignore (Storage.Catalog.create_table cat name schema tuples))
    [ "A"; "B"; "C" ];
  let q =
    Core.Logical.make
      ~relations:
        (List.map
           (fun t -> Core.Logical.base ~score:(Expr.col ~relation:t "score") t)
           [ "A"; "B"; "C" ])
      ~joins:
        [
          Core.Logical.equijoin ("A", "k1") ("B", "k2");
          Core.Logical.equijoin ("B", "k1") ("C", "k2");
        ]
      ~k:5 ()
  in
  let env = Core.Cost_model.default_env ~k_min:5 cat q in
  let result = Core.Enumerator.run env in
  let full = Core.Enumerator.relation_mask env [ "A"; "B"; "C" ] in
  Alcotest.(check bool) "no HRJN* plans" false
    (List.exists
       (fun sp -> plan_has_nary sp.Core.Memo.plan)
       (Core.Memo.plans result.Core.Enumerator.memo full))

let test_nary_depth_formula () =
  Test_util.check_floats_close ~eps:1e-9 "m=2 reduces to 2sqrt(k/s)"
    (Core.Depth_model.uniform_depth ~k:50.0 ~s:0.01)
    (Core.Depth_model.nary_uniform_depth ~m:2 ~k:50.0 ~s:0.01);
  let d3 = Core.Depth_model.nary_uniform_depth ~m:3 ~k:10.0 ~s:0.01 in
  Test_util.check_floats_close ~eps:1e-9 "m=3 closed form"
    (3.0 *. ((10.0 /. (0.01 ** 2.0)) ** (1.0 /. 3.0)))
    d3;
  Alcotest.check_raises "m=1 rejected"
    (Invalid_argument "Depth_model.nary_uniform_depth: m < 2") (fun () ->
      ignore (Core.Depth_model.nary_uniform_depth ~m:1 ~k:5.0 ~s:0.5))

let optimizer_suite =
  ( "core.nary_integration",
    [
      Alcotest.test_case "enumerator generates" `Quick test_enumerator_generates_nary;
      Alcotest.test_case "HRJN* plan executes" `Quick test_nary_plan_executes_correctly;
      Alcotest.test_case "chain keys: no HRJN*" `Quick test_nary_not_generated_for_chain_keys;
      Alcotest.test_case "depth formula" `Quick test_nary_depth_formula;
    ] )
