(* Property tests for the vectorized execution layer: the batch kernels
   must be bit-identical to the scalar expression interpreter over
   adversarial inputs (NaN, Null, Int-typed scores, 1/8-grid ties — both
   the unboxed all-Float fast path and the scalar fallback), and the
   batched top-k paths must drop NaN and tie-break exactly like their
   tuple-at-a-time counterparts ([Exec.Top_n] and the stable sort+limit
   pair). *)

open Relalg
open Exec

let schema =
  Schema.of_columns
    [
      Schema.column ~relation:"T" "id" Value.Tint;
      Schema.column ~relation:"T" "key" Value.Tint;
      Schema.column ~relation:"T" "score" Value.Tfloat;
    ]

let col_score = Expr.col ~relation:"T" "score"
let col_key = Expr.col ~relation:"T" "key"

(* Score cell variants: the 1/8 grid forces exact ties across rows, NaN
   exercises the total-order comparator, and Null / Int cells knock the
   column off the unboxed fast path into the scalar fallback. *)
let mixed_cell (c, f) =
  match c mod 10 with
  | 0 -> Value.Null
  | 1 -> Value.Float Float.nan
  | 2 -> Value.Int (int_of_float (f *. 8.0))
  | _ -> Value.Float (Float.round (f *. 8.0) /. 8.0)

(* All-Float variant (NaN included): every batch over these rows takes the
   vectorized fast path, where bit-equality is a theorem about the kernel
   compiler rather than about a shared closure. *)
let float_cell (c, f) =
  if c mod 10 = 0 then Value.Float Float.nan
  else Value.Float (Float.round (f *. 8.0) /. 8.0)

let rows_of cell specs =
  List.mapi
    (fun i (c, f) ->
      Tuple.make [ Value.Int i; Value.Int (c mod 4); cell (c, f) ])
    specs

let specs_gen = QCheck.(list_of_size Gen.(0 -- 80) (pair int (float_range (-2.0) 2.0)))

let bits = Int64.bits_of_float

(* Scalar reference for a predicate: the interpreter the kernels claim to
   replicate. *)
let scalar_filter pred rows =
  let keep = Expr.compile_bool schema pred in
  List.filter keep rows

let preds =
  [
    Expr.(Cmp (Ge, col_score, cfloat 0.25));
    Expr.(Cmp (Lt, col_score, cfloat (-0.5)));
    Expr.(And (Cmp (Ge, col_score, cfloat (-1.0)), Not (Cmp (Eq, col_key, cint 3))));
    (* NaN never satisfies an ordered comparison, in either path *)
    Expr.(Cmp (Le, Add (col_score, cfloat 0.0), col_score));
  ]

let prop_pred_kernel cell name =
  QCheck.Test.make ~name ~count:150 specs_gen (fun specs ->
      let rows = rows_of cell specs in
      List.for_all
        (fun pred ->
          let b = Batch.of_list schema rows in
          Batch.pred_kernel schema pred b;
          List.equal Tuple.equal (Batch.to_list b) (scalar_filter pred rows))
        preds)

let scores =
  [
    col_score;
    Expr.(Add (Mul (cfloat 0.25, col_score), Mul (cfloat 0.5, col_key)));
    Expr.(Div (col_score, Sub (col_score, cfloat 0.125)));
    Expr.(Neg (Mul (col_score, col_score)));
  ]

let prop_score_kernel cell name =
  QCheck.Test.make ~name ~count:150 specs_gen (fun specs ->
      let rows = rows_of cell specs in
      List.for_all
        (fun e ->
          let b = Batch.of_list schema rows in
          let got = Batch.score_kernel schema e b in
          let eval = Expr.compile_float schema e in
          let want = Array.of_list (List.map eval rows) in
          Array.length got = Array.length want
          && Array.for_all2 (fun a b -> Int64.equal (bits a) (bits b)) got want)
        scores)

(* --- batched top-n vs Exec.Top_n ---------------------------------------- *)

let scored_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (t1, s1) (t2, s2) ->
         Tuple.equal t1 t2 && Int64.equal (bits s1) (bits s2))
       a b

(* Same rows, same comparator, same k: the batched heap must keep the same
   candidate set (NaN dropped on entry, ties broken by Tuple.compare) and
   emit it in the same order, and report the same stats totals. *)
let prop_top_n cell name =
  QCheck.Test.make ~name ~count:120
    QCheck.(pair (int_range 0 12) specs_gen)
    (fun (k, specs) ->
      let rows = rows_of cell specs in
      List.for_all
        (fun e ->
          let serial_stats = Exec_stats.create 1 in
          let vector_stats = Exec_stats.create 1 in
          let serial =
            Operator.scored_to_list
              (Top_n.by_expr ~stats:serial_stats ~k e
                 (Operator.of_list schema rows))
          in
          let vector =
            Operator.scored_to_list
              (Vector.top_n ~stats:vector_stats ~k e
                 (Vector.of_operator (Operator.of_list schema rows)))
          in
          scored_equal serial vector
          && Exec_stats.depths serial_stats = Exec_stats.depths vector_stats
          && Exec_stats.emitted serial_stats = Exec_stats.emitted vector_stats
          && Exec_stats.buffer_max serial_stats
             = Exec_stats.buffer_max vector_stats)
        scores)

(* --- fused top-k sink vs stable sort + limit ----------------------------- *)

(* The fused sink's contract: the first k rows of the stable in-memory
   sort, NaN kept and ordered as the smallest score (last under desc,
   first under asc), ties preserving arrival order. *)
let prop_fused_top_k cell name =
  let cat = Storage.Catalog.create () in
  let budget = Sort.budget (Storage.Catalog.pool cat) in
  QCheck.Test.make ~name ~count:120
    QCheck.(triple bool (int_range 0 12) specs_gen)
    (fun (desc, k, specs) ->
      let rows = rows_of cell specs in
      List.for_all
        (fun e ->
          let reference =
            Operator.to_list
              (Basic_ops.limit k
                 (Sort.by_expr budget ~desc e (Operator.of_list schema rows)))
          in
          let fused =
            Operator.to_list
              (Vector.fused_top_k budget ~desc ~k e
                 (Vector.of_operator (Operator.of_list schema rows)))
          in
          List.equal Tuple.equal reference fused)
        scores)

let props =
  [
    prop_pred_kernel mixed_cell "pred_kernel = compile_bool (mixed cells)";
    prop_pred_kernel float_cell "pred_kernel = compile_bool (all-Float fast path)";
    prop_score_kernel mixed_cell "score_kernel = compile_float (mixed cells)";
    prop_score_kernel float_cell "score_kernel = compile_float (all-Float fast path)";
    prop_top_n mixed_cell "Vector.top_n = Top_n.by_expr (mixed cells)";
    prop_top_n float_cell "Vector.top_n = Top_n.by_expr (NaN/tie fast path)";
    prop_fused_top_k mixed_cell "fused_top_k = sort+limit (mixed cells)";
    prop_fused_top_k float_cell "fused_top_k = sort+limit (NaN/tie fast path)";
  ]

let suites =
  [ ("exec.vector", List.map QCheck_alcotest.to_alcotest props) ]
