(* The execution observability layer: Io_stats sink-scoping, the metrics
   registry, and EXPLAIN ANALYZE — whose observed depths must be exactly the
   rank-join operators' [Exec_stats] depths. *)

open Relalg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* --- Io_stats sink mirroring -------------------------------------------- *)

let test_sink_mirroring () =
  let root = Storage.Io_stats.create () in
  let a = Storage.Io_stats.create () in
  let b = Storage.Io_stats.create () in
  Storage.Io_stats.add_page_read root;
  Storage.Io_stats.with_sink root a (fun () ->
      Storage.Io_stats.add_page_read root;
      (* Re-pointing the sink one level deeper: the innermost wins. *)
      Storage.Io_stats.with_sink root b (fun () ->
          Storage.Io_stats.add_page_write root);
      Storage.Io_stats.add_pool_hit root);
  Storage.Io_stats.add_page_read root;
  let r = Storage.Io_stats.snapshot root in
  let sa = Storage.Io_stats.snapshot a in
  let sb = Storage.Io_stats.snapshot b in
  Alcotest.(check int) "root sees everything (reads)" 3 r.Storage.Io_stats.page_reads;
  Alcotest.(check int) "root sees everything (writes)" 1 r.Storage.Io_stats.page_writes;
  Alcotest.(check int) "a: only its scope's reads" 1 sa.Storage.Io_stats.page_reads;
  Alcotest.(check int) "a: hit in scope" 1 sa.Storage.Io_stats.pool_hits;
  Alcotest.(check int) "a: write went deeper" 0 sa.Storage.Io_stats.page_writes;
  Alcotest.(check int) "b: the inner write" 1 sb.Storage.Io_stats.page_writes;
  Alcotest.(check bool) "sink restored" true (Storage.Io_stats.sink root = None)

(* --- the HRJN pipeline fixture ------------------------------------------ *)

let setup_catalog () =
  let cat = Storage.Catalog.create ~pool_frames:64 () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (11 + (31 * i)))
           ~name ~n:2000 ~key_domain:200 ()))
    [ "A"; "B" ];
  cat

let score_of t = Expr.col ~relation:t "score"

let index_scan_desc cat t =
  let ix =
    match Storage.Catalog.find_index_on_expr cat ~table:t (score_of t) with
    | Some ix -> ix.Storage.Catalog.ix_name
    | None -> Alcotest.failf "no score index on %s" t
  in
  Core.Plan.Index_scan { table = t; index = ix; key = score_of t; desc = true }

let hrjn_topk cat k =
  Core.Plan.Top_k
    {
      k;
      input =
        Core.Plan.Join
          {
            algo = Core.Plan.Hrjn;
            cond =
              {
                Core.Logical.left_table = "A";
                left_column = "key";
                right_table = "B";
                right_column = "key";
              };
            left = index_scan_desc cat "A";
            right = index_scan_desc cat "B";
            left_score = Some (score_of "A");
            right_score = Some (score_of "B");
          };
    }

let topk_query k =
  let relations =
    List.map (fun t -> Core.Logical.base ~score:(score_of t) t) [ "A"; "B" ]
  in
  Core.Logical.make ~relations
    ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
    ~k ()

let analyzed_run () =
  let cat = setup_catalog () in
  let k = 10 in
  let plan = hrjn_topk cat k in
  let env = Core.Cost_model.default_env ~k_min:k cat (topk_query k) in
  let ann = Core.Propagate.run env ~k plan in
  let metrics = Exec.Metrics.create (Storage.Catalog.io cat) in
  let result = Core.Executor.run ~hints:ann ~metrics cat plan in
  (env, ann, metrics, result)

let rec find_profile pred (p : Core.Executor.profile) =
  if pred p.Core.Executor.p_plan then Some p
  else List.find_map (find_profile pred) p.Core.Executor.p_children

let is_rank_join = function
  | Core.Plan.Join { algo = Core.Plan.Hrjn; _ } -> true
  | _ -> false

(* The tentpole regression: the depths EXPLAIN ANALYZE observes are wired to
   the very Exec_stats records the rank-join operators maintain — same
   numbers, same object. *)
let test_analyze_depths_equal_exec_stats () =
  let _env, _ann, _metrics, result = analyzed_run () in
  let profile =
    match result.Core.Executor.profile with
    | Some p -> p
    | None -> Alcotest.fail "metrics supplied but no profile returned"
  in
  let hrjn =
    match find_profile is_rank_join profile with
    | Some p -> p
    | None -> Alcotest.fail "no HRJN node in profile"
  in
  let rn =
    match result.Core.Executor.rank_nodes with
    | [ rn ] -> rn
    | l -> Alcotest.failf "expected 1 rank node, got %d" (List.length l)
  in
  let observed = Exec.Exec_stats.depths hrjn.Core.Executor.p_node.Exec.Metrics.stats in
  let from_executor = Exec.Exec_stats.depths rn.Core.Executor.stats in
  Alcotest.(check (array int)) "profile depths = rank-join depths" from_executor observed;
  Alcotest.(check bool) "depths are non-trivial" true
    (Exec.Exec_stats.left_depth rn.Core.Executor.stats > 0
    && Exec.Exec_stats.right_depth rn.Core.Executor.stats > 0);
  Alcotest.(check int) "k rows out" 10 (List.length result.Core.Executor.rows)

let test_analyze_rendering () =
  let env, ann, _metrics, result = analyzed_run () in
  let profile = Option.get result.Core.Executor.profile in
  let text = Core.Analyze.render ~env ~hints:ann profile in
  let rn = List.hd result.Core.Executor.rank_nodes in
  let dl = Exec.Exec_stats.left_depth rn.Core.Executor.stats in
  let dr = Exec.Exec_stats.right_depth rn.Core.Executor.stats in
  Alcotest.(check bool) "HRJN line present" true (contains text "HRJN");
  Alcotest.(check bool) "observed left depth printed" true
    (contains text (Printf.sprintf "in0=%d (predicted" dl));
  Alcotest.(check bool) "observed right depth printed" true
    (contains text (Printf.sprintf "in1=%d (predicted" dr));
  Alcotest.(check bool) "estimate column present" true
    (contains text "io: estimated")

(* Per-node I/O attributions must partition the run's total: every charge
   lands in exactly one (innermost) node. *)
let test_io_attribution_partitions_total () =
  let _env, _ann, metrics, result = analyzed_run () in
  let sum f =
    List.fold_left
      (fun acc (n : Exec.Metrics.node) ->
        acc + f (Storage.Io_stats.snapshot n.Exec.Metrics.io))
      0 (Exec.Metrics.nodes metrics)
  in
  Alcotest.(check int) "reads partitioned"
    result.Core.Executor.io.Storage.Io_stats.page_reads
    (sum (fun s -> s.Storage.Io_stats.page_reads));
  Alcotest.(check int) "pool hits partitioned"
    result.Core.Executor.io.Storage.Io_stats.pool_hits
    (sum (fun s -> s.Storage.Io_stats.pool_hits));
  Alcotest.(check int) "writes partitioned"
    result.Core.Executor.io.Storage.Io_stats.page_writes
    (sum (fun s -> s.Storage.Io_stats.page_writes))

let test_node_json_shape () =
  let _env, _ann, metrics, _result = analyzed_run () in
  List.iter
    (fun (n : Exec.Metrics.node) ->
      let j = Exec.Metrics.node_to_json n in
      Alcotest.(check bool) "json has label" true (contains j "\"label\":");
      Alcotest.(check bool) "json has depths" true (contains j "\"depths\":[");
      Alcotest.(check bool) "json has io" true (contains j "\"page_reads\":"))
    (Exec.Metrics.nodes metrics)

(* --- vectorized vs tuple-at-a-time profile parity ----------------------- *)

(* The vectorized executor reports tuple-exact metrics: running the same
   plan batch-at-a-time and tuple-at-a-time must produce the same profile
   tree with the same per-node depths, emitted counts and buffer
   high-water marks (inputs stay below sort memory, so no spill I/O is
   involved). This pins the EXPLAIN ANALYZE contract: batching is an
   execution detail, not an observability change. *)

let profile_of ~vectorized cat plan =
  let metrics = Exec.Metrics.create (Storage.Catalog.io cat) in
  let result = Core.Executor.run ~metrics ~vectorized cat plan in
  match result.Core.Executor.profile with
  | Some p -> (result, p)
  | None -> Alcotest.fail "metrics supplied but no profile returned"

let rec check_profiles_equal path (a : Core.Executor.profile)
    (b : Core.Executor.profile) =
  let la = Core.Executor.node_label a.Core.Executor.p_plan in
  let lb = Core.Executor.node_label b.Core.Executor.p_plan in
  Alcotest.(check string) (path ^ ": operator") la lb;
  let sa = a.Core.Executor.p_node.Exec.Metrics.stats in
  let sb = b.Core.Executor.p_node.Exec.Metrics.stats in
  Alcotest.(check (array int))
    (path ^ "/" ^ la ^ ": depths")
    (Exec.Exec_stats.depths sa) (Exec.Exec_stats.depths sb);
  Alcotest.(check int)
    (path ^ "/" ^ la ^ ": emitted")
    (Exec.Exec_stats.emitted sa) (Exec.Exec_stats.emitted sb);
  Alcotest.(check int)
    (path ^ "/" ^ la ^ ": buffer high-water")
    (Exec.Exec_stats.buffer_max sa)
    (Exec.Exec_stats.buffer_max sb);
  Alcotest.(check int)
    (path ^ "/" ^ la ^ ": children")
    (List.length a.Core.Executor.p_children)
    (List.length b.Core.Executor.p_children);
  List.iteri
    (fun i (ca, cb) ->
      check_profiles_equal (Printf.sprintf "%s/%s[%d]" path la i) ca cb)
    (List.combine a.Core.Executor.p_children b.Core.Executor.p_children)

let test_vectorized_profile_parity () =
  let cat = setup_catalog () in
  let order t =
    { Core.Plan.expr = score_of t; direction = Core.Interesting_orders.Desc }
  in
  let scan_filter_topk =
    Core.Plan.Top_k
      {
        k = 25;
        input =
          Core.Plan.Sort
            {
              order = order "A";
              input =
                Core.Plan.Filter
                  {
                    pred = Expr.(Cmp (Ge, score_of "A", cfloat 0.25));
                    input = Core.Plan.Table_scan { table = "A" };
                  };
            };
      }
  in
  let join_sort_topk =
    Core.Plan.Top_k
      {
        k = 15;
        input =
          Core.Plan.Sort
            {
              order =
                {
                  Core.Plan.expr =
                    Expr.(Add (score_of "A", score_of "B"));
                  direction = Core.Interesting_orders.Desc;
                };
              input =
                Core.Plan.Join
                  {
                    algo = Core.Plan.Hash;
                    cond =
                      {
                        Core.Logical.left_table = "A";
                        left_column = "key";
                        right_table = "B";
                        right_column = "key";
                      };
                    left = Core.Plan.Table_scan { table = "A" };
                    right = Core.Plan.Table_scan { table = "B" };
                    left_score = None;
                    right_score = None;
                  };
            };
      }
  in
  List.iter
    (fun (name, plan) ->
      let serial_res, serial = profile_of ~vectorized:false cat plan in
      let vec_res, vec = profile_of ~vectorized:true cat plan in
      Alcotest.(check int)
        (name ^ ": same row count")
        (List.length serial_res.Core.Executor.rows)
        (List.length vec_res.Core.Executor.rows);
      List.iter2
        (fun (t1, s1) (t2, s2) ->
          Alcotest.(check bool)
            (name ^ ": identical rows")
            true
            (Relalg.Tuple.equal t1 t2 && Float.compare s1 s2 = 0))
        serial_res.Core.Executor.rows vec_res.Core.Executor.rows;
      check_profiles_equal name serial vec)
    [ ("scan-filter-topk", scan_filter_topk);
      ("hash-join-sort-topk", join_sort_topk) ]

let test_sql_analyze () =
  let cat = setup_catalog () in
  match
    Sqlfront.Sql.analyze cat
      "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY A.score + \
       B.score DESC LIMIT 7"
  with
  | Error e -> Alcotest.failf "analyze failed: %s" e
  | Ok text ->
      Alcotest.(check bool) "rows header" true (contains text "Rows returned: 7");
      Alcotest.(check bool) "depths line" true (contains text "depths: in0=")

let suites =
  [
    ( "exec.metrics",
      [
        Alcotest.test_case "sink mirroring" `Quick test_sink_mirroring;
        Alcotest.test_case "analyze depths = exec stats" `Quick
          test_analyze_depths_equal_exec_stats;
        Alcotest.test_case "analyze rendering" `Quick test_analyze_rendering;
        Alcotest.test_case "io attribution partitions total" `Quick
          test_io_attribution_partitions_total;
        Alcotest.test_case "node json" `Quick test_node_json_shape;
        Alcotest.test_case "vectorized profile parity" `Quick
          test_vectorized_profile_parity;
        Alcotest.test_case "sql analyze" `Quick test_sql_analyze;
      ] );
  ]
