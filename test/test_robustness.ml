(* Robustness and adversarial-input tests: degenerate workloads (all keys
   equal, all scores tied), minimal resource budgets, non-equi NRJN,
   min-combine rank joins, partial pulls, and a DP-vs-exhaustive
   optimality check. *)

open Relalg
open Exec

let score_idx = 2

let scored_stream rel =
  let sorted = Relation.sort_by ~desc:true (Expr.col "score") rel in
  Operator.scored_of_list (Relation.schema rel)
    (List.map
       (fun tu -> (tu, Value.to_float (Tuple.get tu score_idx)))
       (Relation.tuples sorted))

let rank_input rel =
  { Rank_join.stream = scored_stream rel; key = (fun tu -> Tuple.get tu 1) }

let constant_key_relation name ~n ~score_of =
  Relation.create
    (Test_util.scored_schema name)
    (List.init n (fun i ->
         [| Value.Int i; Value.Int 0; Value.Float (score_of i) |]))

let oracle ra rb k combine_expr =
  let joined =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra rb
  in
  Relation.top_k ~score:combine_expr ~k joined

let sum_expr = Expr.(col ~relation:"A" "score" + col ~relation:"B" "score")

let test_hrjn_all_keys_equal () =
  (* Cross-product-like join: every pair matches; buffer pressure maximal. *)
  let ra = constant_key_relation "A" ~n:40 ~score_of:(fun i -> float_of_int i /. 40.0) in
  let rb = constant_key_relation "B" ~n:40 ~score_of:(fun i -> float_of_int (40 - i) /. 40.0) in
  let stream, stats =
    Rank_join.hrjn ~combine:( +. ) ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  let results = Operator.scored_take stream 10 in
  Test_util.check_score_multiset "top-10 on full cross"
    (List.map snd (oracle ra rb 10 sum_expr))
    (List.map snd results);
  Alcotest.(check bool) "buffer tracked" true ((Exec_stats.buffer_max stats) > 0)

let test_hrjn_all_scores_tied () =
  (* Every tuple has the same score: threshold equals every combined score;
     results must still be exactly the join, k of them. *)
  let ra = Test_util.scored_relation "A" ~n:30 ~domain:3 ~seed:101 in
  let tie r =
    Relation.create (Relation.schema r)
      (List.map
         (fun tu -> [| Tuple.get tu 0; Tuple.get tu 1; Value.Float 0.5 |])
         (Relation.tuples r))
  in
  let ra = tie ra and rb = tie (Test_util.scored_relation "B" ~n:30 ~domain:3 ~seed:102) in
  let stream, _ =
    Rank_join.hrjn ~combine:( +. ) ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  let results = Operator.scored_take stream 7 in
  Alcotest.(check int) "7 results" 7 (List.length results);
  List.iter
    (fun (_, s) -> Test_util.check_floats_close "tied score" 1.0 s)
    results

let test_hrjn_min_combine () =
  (* Min is monotone, so the threshold logic must stay correct. *)
  let ra = Test_util.scored_relation "A" ~n:50 ~domain:5 ~seed:103 in
  let rb = Test_util.scored_relation "B" ~n:50 ~domain:5 ~seed:104 in
  let stream, _ =
    Rank_join.hrjn ~combine:Float.min ~left:(rank_input ra) ~right:(rank_input rb) ()
  in
  let results = Operator.scored_take stream 8 in
  let joined =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra rb
  in
  (* Oracle: compute min-scores by hand. *)
  let schema = Relation.schema joined in
  let ia = Schema.index_of_exn schema ~relation:"A" "score" in
  let ib = Schema.index_of_exn schema ~relation:"B" "score" in
  let all =
    List.map
      (fun tu -> Float.min (Value.to_float (Tuple.get tu ia)) (Value.to_float (Tuple.get tu ib)))
      (Relation.tuples joined)
  in
  let expected =
    List.filteri (fun i _ -> i < 8) (List.sort (fun a b -> Float.compare b a) all)
  in
  Test_util.check_score_multiset "min-combine top-8" expected (List.map snd results)

let test_nrjn_non_equi_predicate () =
  (* NRJN supports arbitrary predicates: rank pairs with A.key < B.key. *)
  let ra = Test_util.scored_relation "A" ~n:25 ~domain:10 ~seed:105 in
  let rb = Test_util.scored_relation "B" ~n:25 ~domain:10 ~seed:106 in
  let pred = Expr.Cmp (Expr.Lt, Expr.col ~relation:"A" "key", Expr.col ~relation:"B" "key") in
  let inner = Operator.of_list (Relation.schema rb) (Relation.tuples rb) in
  let stream, _ =
    Rank_join.nrjn ~combine:( +. ) ~pred ~outer:(scored_stream ra) ~inner
      ~inner_score:(fun tu -> Value.to_float (Tuple.get tu score_idx))
      ()
  in
  let results = Operator.scored_take stream 6 in
  let joined = Relation.join ~on:pred ra rb in
  let expected = Relation.top_k ~score:sum_expr ~k:6 joined in
  Test_util.check_score_multiset "non-equi top-6" (List.map snd expected)
    (List.map snd results)

let test_sort_minimal_memory () =
  (* memory_tuples = 2 with fan_in = 2: maximal number of merge passes. *)
  let rel = Test_util.scored_relation "T" ~n:97 ~domain:10 ~seed:107 in
  let io = Storage.Io_stats.create () in
  let pool = Storage.Buffer_pool.create ~frames:4 io in
  let b = Sort.budget ~memory_tuples:2 ~tuples_per_page:3 ~fan_in:2 pool in
  let sorted =
    Operator.to_list
      (Sort.by_expr b (Expr.col ~relation:"T" "score")
         (Operator.of_list (Relation.schema rel) (Relation.tuples rel)))
  in
  Alcotest.(check int) "all rows" 97 (List.length sorted);
  let scores = List.map (fun tu -> Value.to_float (Tuple.get tu score_idx)) sorted in
  let rec ok = function
    | a :: (b :: _ as rest) -> a <= b && ok rest
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (ok scores)

let test_one_frame_pool () =
  (* The engine must function (slowly) with a single buffer frame. *)
  let cat = Storage.Catalog.create ~pool_frames:1 ~tuples_per_page:5 () in
  let prng = Rkutil.Prng.create 108 in
  ignore
    (Workload.Generator.load_scored_table cat prng ~name:"A" ~n:60 ~key_domain:6 ());
  ignore
    (Workload.Generator.load_scored_table cat prng ~name:"B" ~n:60 ~key_domain:6 ());
  let q =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
          Core.Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
        ]
      ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:5 ()
  in
  let _, result = Core.Optimizer.run_query cat q in
  Alcotest.(check int) "5 results" 5 (List.length result.Core.Executor.rows);
  Test_util.check_non_increasing "ordered" (List.map snd result.Core.Executor.rows)

let test_partial_pull_is_prefix () =
  let cat = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 109 in
  ignore
    (Workload.Generator.load_scored_table cat prng ~name:"A" ~n:150 ~key_domain:15 ());
  ignore
    (Workload.Generator.load_scored_table cat prng ~name:"B" ~n:150 ~key_domain:15 ());
  let q =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
          Core.Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
        ]
      ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:20 ()
  in
  let planned = Core.Optimizer.optimize cat q in
  let full = Core.Optimizer.execute cat planned in
  let partial = Core.Optimizer.execute ~fetch_limit:5 cat planned in
  Alcotest.(check int) "5 rows" 5 (List.length partial.Core.Executor.rows);
  List.iteri
    (fun i (_, s) ->
      let _, s_full = List.nth full.Core.Executor.rows i in
      Test_util.check_floats_close "prefix agrees" s_full s)
    partial.Core.Executor.rows

(* DP optimality: the chosen plan's estimated cost is never above the best
   cost over an exhaustive enumeration of hash-join orders + final sort. *)
let test_dp_not_worse_than_exhaustive () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (110 + i))
           ~name ~n:200 ~key_domain:20 ()))
    [ "A"; "B"; "C" ];
  let q =
    Core.Logical.make
      ~relations:
        (List.map
           (fun t -> Core.Logical.base ~score:(Expr.col ~relation:t "score") t)
           [ "A"; "B"; "C" ])
      ~joins:
        [
          Core.Logical.equijoin ("A", "key") ("B", "key");
          Core.Logical.equijoin ("B", "key") ("C", "key");
        ]
      ~k:10 ()
  in
  let env = Core.Cost_model.default_env ~k_min:10 cat q in
  let planned = Core.Optimizer.optimize cat q in
  let chosen = planned.Core.Optimizer.est.Core.Cost_model.cost_at 10.0 in
  (* Exhaustive join orders over three relations (left-deep and bushy make
     the same 3-relation shapes): ((X⋈Y)⋈Z) for all permutations with a
     valid join predicate chain, hash joins only, sort on top, topk. *)
  let score =
    Expr.weighted_sum
      (List.map (fun t -> (1.0, Expr.col ~relation:t "score")) [ "A"; "B"; "C" ])
  in
  let cond l r =
    { Core.Logical.left_table = l; left_column = "key"; right_table = r; right_column = "key" }
  in
  let scan t = Core.Plan.Table_scan { table = t } in
  let plans =
    List.filter_map
      (fun (x, y, z) ->
        (* require predicates to exist between x,y (chain via key = key is
           fine for all pairs here) *)
        Some
          (Core.Plan.Top_k
             {
               k = 10;
               input =
                 Core.Plan.Sort
                   {
                     order = { Core.Plan.expr = score; direction = Core.Interesting_orders.Desc };
                     input =
                       Core.Plan.Join
                         {
                           algo = Core.Plan.Hash;
                           cond = cond x z;
                           left =
                             Core.Plan.Join
                               {
                                 algo = Core.Plan.Hash;
                                 cond = cond x y;
                                 left = scan x;
                                 right = scan y;
                                 left_score = None;
                                 right_score = None;
                               };
                           right = scan z;
                           left_score = None;
                           right_score = None;
                         };
                   };
             }))
      [
        ("A", "B", "C"); ("B", "A", "C"); ("B", "C", "A");
        ("C", "B", "A"); ("A", "C", "B"); ("C", "A", "B");
      ]
  in
  List.iter
    (fun p ->
      let est = Core.Cost_model.estimate env p in
      Alcotest.(check bool) "dp <= exhaustive alternative" true
        (chosen <= est.Core.Cost_model.cost_at 10.0 +. 1e-6))
    plans

let prop_executor_limit_consistency =
  QCheck.Test.make ~name:"executor: fetch_limit n = prefix of full run" ~count:20
    QCheck.(pair (int_range 0 999) (int_range 1 10))
    (fun (seed, limit) ->
      let cat = Storage.Catalog.create () in
      List.iteri
        (fun i name ->
          ignore
            (Workload.Generator.load_scored_table cat
               (Rkutil.Prng.create (seed + i))
               ~name ~n:80 ~key_domain:8 ()))
        [ "A"; "B" ];
      let q =
        Core.Logical.make
          ~relations:
            [
              Core.Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
              Core.Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
            ]
          ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
          ~k:30 ()
      in
      let planned = Core.Optimizer.optimize cat q in
      let full = Core.Optimizer.execute cat planned in
      let partial = Core.Optimizer.execute ~fetch_limit:limit cat planned in
      let expected = min limit (List.length full.Core.Executor.rows) in
      List.length partial.Core.Executor.rows = expected
      && List.for_all2
           (fun (_, a) (_, b) -> Test_util.floats_close ~eps:1e-9 a b)
           partial.Core.Executor.rows
           (List.filteri (fun i _ -> i < expected) full.Core.Executor.rows))

let suites =
  [
    ( "robustness",
      [
        Alcotest.test_case "hrjn all keys equal" `Quick test_hrjn_all_keys_equal;
        Alcotest.test_case "hrjn all scores tied" `Quick test_hrjn_all_scores_tied;
        Alcotest.test_case "hrjn min combine" `Quick test_hrjn_min_combine;
        Alcotest.test_case "nrjn non-equi" `Quick test_nrjn_non_equi_predicate;
        Alcotest.test_case "sort minimal memory" `Quick test_sort_minimal_memory;
        Alcotest.test_case "one-frame pool" `Quick test_one_frame_pool;
        Alcotest.test_case "partial pull prefix" `Quick test_partial_pull_is_prefix;
        Alcotest.test_case "dp vs exhaustive" `Quick test_dp_not_worse_than_exhaustive;
        QCheck_alcotest.to_alcotest prop_executor_limit_consistency;
      ] );
  ]
