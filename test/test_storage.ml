(* Tests for pages, buffer pool, heap files, histograms and the catalog. *)

open Relalg
open Storage

let tu i s = Tuple.make [ Value.Int i; Value.Float s ]

let two_col_schema =
  Schema.of_columns
    [ Schema.column "id" Value.Tint; Schema.column "score" Value.Tfloat ]

let test_page_fill () =
  let p = Page.create ~id:0 ~capacity:2 in
  Alcotest.(check int) "slot 0" 0 (Page.add p (tu 0 0.0));
  Alcotest.(check int) "slot 1" 1 (Page.add p (tu 1 0.1));
  Alcotest.(check bool) "full" true (Page.is_full p);
  Alcotest.check_raises "overflow" (Invalid_argument "Page.add: page full")
    (fun () -> ignore (Page.add p (tu 2 0.2)));
  Alcotest.(check int) "count" 2 (Page.count p);
  Alcotest.(check bool) "get" true (Tuple.equal (tu 1 0.1) (Page.get p 1))

let test_pool_hit_miss_accounting () =
  let io = Io_stats.create () in
  let pool = Buffer_pool.create ~frames:2 io in
  let p0 = Buffer_pool.alloc_page pool ~capacity:4 in
  let p1 = Buffer_pool.alloc_page pool ~capacity:4 in
  let p2 = Buffer_pool.alloc_page pool ~capacity:4 in
  (* Only 2 frames: p0 must have been evicted (it was dirty -> 1 write). *)
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "one eviction write" 1 snap.Io_stats.page_writes;
  ignore (Buffer_pool.get pool (Page.id p1));
  ignore (Buffer_pool.get pool (Page.id p2));
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "hits" 2 snap.Io_stats.pool_hits;
  (* Re-reading p0 is a miss. *)
  ignore (Buffer_pool.get pool (Page.id p0));
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "one miss read" 1 snap.Io_stats.page_reads

(* Marking an evicted page dirty must fault it back in (a charged read) and
   register the frame dirty so the mutation reaches disk at the next
   eviction/flush — not silently no-op. *)
let test_mark_dirty_after_eviction () =
  let io = Io_stats.create () in
  let pool = Buffer_pool.create ~frames:1 io in
  let p0 = Buffer_pool.alloc_page pool ~capacity:4 in
  let p1 = Buffer_pool.alloc_page pool ~capacity:4 in
  (* One frame: allocating p1 evicted dirty p0 (1 write). *)
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "p0 evicted" 1 snap.Io_stats.page_writes;
  Buffer_pool.mark_dirty pool (Page.id p0);
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "p0 faulted back in" 1 snap.Io_stats.page_reads;
  Alcotest.(check int) "p1 evicted by the fault" 2 snap.Io_stats.page_writes;
  Buffer_pool.flush pool;
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "dirty p0 written by flush" 3 snap.Io_stats.page_writes;
  ignore (Buffer_pool.get pool (Page.id p1));
  Alcotest.check_raises "unknown page"
    (Invalid_argument "Buffer_pool.mark_dirty: unknown page 999") (fun () ->
      Buffer_pool.mark_dirty pool 999)

let test_pool_unknown_page () =
  let pool = Buffer_pool.create (Io_stats.create ()) in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Buffer_pool.get: unknown page 999") (fun () ->
      ignore (Buffer_pool.get pool 999))

let test_heap_file_roundtrip () =
  let io = Io_stats.create () in
  let pool = Buffer_pool.create ~frames:8 io in
  let hf = Heap_file.create ~tuples_per_page:3 pool two_col_schema in
  let tuples = List.init 10 (fun i -> tu i (float_of_int i /. 10.0)) in
  Heap_file.load hf tuples;
  Alcotest.(check int) "cardinality" 10 (Heap_file.cardinality hf);
  Alcotest.(check int) "pages" 4 (Heap_file.n_pages hf);
  let out = Heap_file.to_list hf in
  Alcotest.(check bool) "roundtrip" true (List.equal Tuple.equal tuples out)

let test_heap_file_fetch_by_rid () =
  let pool = Buffer_pool.create (Io_stats.create ()) in
  let hf = Heap_file.create ~tuples_per_page:2 pool two_col_schema in
  let rids = List.map (Heap_file.append hf) (List.init 5 (fun i -> tu i 0.0)) in
  List.iteri
    (fun i rid ->
      Alcotest.(check bool)
        (Printf.sprintf "fetch %d" i)
        true
        (Tuple.equal (tu i 0.0) (Heap_file.fetch hf rid)))
    rids

let test_heap_file_scan_charges_io () =
  let io = Io_stats.create () in
  (* A pool smaller than the file forces re-reads on every scan. *)
  let pool = Buffer_pool.create ~frames:2 io in
  let hf = Heap_file.create ~tuples_per_page:10 pool two_col_schema in
  Heap_file.load hf (List.init 100 (fun i -> tu i 0.0));
  Io_stats.reset io;
  ignore (Heap_file.to_list hf);
  let snap = Io_stats.snapshot io in
  Alcotest.(check bool) "scan reads pages" true (snap.Io_stats.page_reads >= 8)

let test_histogram_selectivity () =
  let values = List.init 1000 (fun i -> float_of_int i /. 1000.0) in
  let h = Histogram.build ~buckets:20 values in
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let le_half = Histogram.selectivity_le h 0.5 in
  Alcotest.(check bool) "<=0.5 near 0.5" true (Float.abs (le_half -. 0.5) < 0.05);
  let in_q = Histogram.selectivity_range h ~lo:0.25 ~hi:0.75 in
  Alcotest.(check bool) "quartiles near 0.5" true (Float.abs (in_q -. 0.5) < 0.05);
  Alcotest.(check (float 0.0)) "below range" 0.0 (Histogram.selectivity_le h (-1.0));
  Alcotest.(check (float 0.0)) "above range" 1.0 (Histogram.selectivity_le h 2.0)

(* Boundary-value contract for the selectivity estimators: predicates
   entirely below/above the recorded domain return exactly 0/1 (or 0 mass for
   ranges), and a degenerate point range delegates to selectivity_eq instead
   of collapsing to [le hi - le lo = 0]. *)
let test_histogram_range_boundaries () =
  let values = List.init 100 (fun i -> float_of_int i) in
  (* domain [0, 99] *)
  let h = Histogram.build ~buckets:10 values in
  Alcotest.(check (float 0.0)) "le below min" 0.0 (Histogram.selectivity_le h (-0.5));
  Alcotest.(check (float 0.0)) "le at max" 1.0 (Histogram.selectivity_le h 99.0);
  Alcotest.(check (float 0.0)) "le above max" 1.0 (Histogram.selectivity_le h 1000.0);
  Alcotest.(check (float 0.0)) "range entirely below" 0.0
    (Histogram.selectivity_range h ~lo:(-10.0) ~hi:(-1.0));
  Alcotest.(check (float 0.0)) "range entirely above" 0.0
    (Histogram.selectivity_range h ~lo:100.5 ~hi:200.0);
  Alcotest.(check (float 0.0)) "inverted range" 0.0
    (Histogram.selectivity_range h ~lo:10.0 ~hi:5.0);
  (* Point range = selectivity_eq, and it must be strictly positive for an
     in-domain value. *)
  let eq50 = Histogram.selectivity_eq h 50.0 in
  Alcotest.(check bool) "eq positive" true (eq50 > 0.0);
  Alcotest.(check (float 0.0)) "point range = eq" eq50
    (Histogram.selectivity_range h ~lo:50.0 ~hi:50.0);
  Alcotest.(check (float 0.0)) "point range at min" (Histogram.selectivity_eq h 0.0)
    (Histogram.selectivity_range h ~lo:0.0 ~hi:0.0);
  Alcotest.(check (float 0.0)) "point range at max" (Histogram.selectivity_eq h 99.0)
    (Histogram.selectivity_range h ~lo:99.0 ~hi:99.0);
  Alcotest.(check (float 0.0)) "point range outside domain" 0.0
    (Histogram.selectivity_range h ~lo:(-3.0) ~hi:(-3.0));
  (* A closed range that straddles the minimum must not report less mass
     than the included endpoint alone. *)
  Alcotest.(check bool) "straddling min >= eq(min)" true
    (Histogram.selectivity_range h ~lo:(-5.0) ~hi:0.0
    >= Histogram.selectivity_eq h 0.0);
  (* Whole-domain range is everything. *)
  Alcotest.(check (float 1e-9)) "whole domain" 1.0
    (Histogram.selectivity_range h ~lo:(-1.0) ~hi:100.0)

let test_histogram_single_value () =
  (* All values identical: degenerate zero-width domain. *)
  let h = Histogram.build (List.init 5 (fun _ -> 7.0)) in
  Alcotest.(check (float 0.0)) "le below" 0.0 (Histogram.selectivity_le h 6.0);
  Alcotest.(check (float 0.0)) "le at" 1.0 (Histogram.selectivity_le h 7.0);
  Alcotest.(check bool) "point range positive" true
    (Histogram.selectivity_range h ~lo:7.0 ~hi:7.0 > 0.0);
  Alcotest.(check (float 0.0)) "range below" 0.0
    (Histogram.selectivity_range h ~lo:0.0 ~hi:6.9);
  Alcotest.(check (float 0.0)) "range above" 0.0
    (Histogram.selectivity_range h ~lo:7.1 ~hi:8.0)

let test_histogram_empty () =
  let h = Histogram.build [] in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "sel" 0.0 (Histogram.selectivity_le h 0.5);
  Alcotest.(check (float 0.0)) "slab" 0.0 (Histogram.mean_decrement_slab h)

let test_histogram_slab () =
  (* 11 evenly spaced values in [0,1]: slab = 0.1. *)
  let values = List.init 11 (fun i -> float_of_int i /. 10.0) in
  let h = Histogram.build values in
  Test_util.check_floats_close ~eps:1e-9 "slab" 0.1 (Histogram.mean_decrement_slab h)

let test_catalog_create_and_stats () =
  let cat = Catalog.create () in
  let tuples = List.init 100 (fun i -> tu (i mod 10) (float_of_int i /. 100.0)) in
  let info = Catalog.create_table cat "T" two_col_schema tuples in
  Alcotest.(check int) "cardinality" 100 info.Catalog.tb_stats.Catalog.ts_cardinality;
  (match Catalog.column_stats cat ~table:"T" ~column:"id" with
  | None -> Alcotest.fail "missing id stats"
  | Some cs ->
      Alcotest.(check int) "distinct ids" 10 cs.Catalog.cs_distinct;
      Alcotest.(check (float 0.0)) "min" 0.0 cs.Catalog.cs_min;
      Alcotest.(check (float 0.0)) "max" 9.0 cs.Catalog.cs_max);
  Alcotest.(check bool) "schema qualified" true
    (Schema.mem info.Catalog.tb_schema ~relation:"T" "score")

let test_catalog_duplicate_table () =
  let cat = Catalog.create () in
  ignore (Catalog.create_table cat "T" two_col_schema []);
  Alcotest.check_raises "dup" (Invalid_argument "Catalog.create_table: duplicate table T")
    (fun () -> ignore (Catalog.create_table cat "T" two_col_schema []))

let test_catalog_index_lookup_by_expr () =
  let cat = Catalog.create () in
  ignore (Catalog.create_table cat "T" two_col_schema [ tu 1 0.5 ]);
  let ix =
    Catalog.create_index cat ~name:"T_score" ~table:"T"
      ~key:(Expr.col ~relation:"T" "score") ()
  in
  Alcotest.(check int) "entries" 1 (Btree.length ix.Catalog.ix_btree);
  (match Catalog.find_index_on_expr cat ~table:"T" (Expr.col ~relation:"T" "score") with
  | Some found -> Alcotest.(check string) "found" "T_score" found.Catalog.ix_name
  | None -> Alcotest.fail "index not found by expression");
  (* A scaled expression induces the same order, so it should match too. *)
  match
    Catalog.find_index_on_expr cat ~table:"T"
      Expr.(cfloat 2.0 * col ~relation:"T" "score")
  with
  | Some _ -> ()
  | None -> Alcotest.fail "scaled expression should match index order"

let test_join_selectivity_estimate () =
  let cat = Catalog.create () in
  let mk n domain seed =
    let prng = Rkutil.Prng.create seed in
    List.init n (fun i -> tu (Rkutil.Prng.int prng domain) (float_of_int i))
  in
  ignore (Catalog.create_table cat "L" two_col_schema (mk 500 20 1));
  ignore (Catalog.create_table cat "R" two_col_schema (mk 500 50 2));
  let s = Catalog.estimate_join_selectivity cat ~left:("L", "id") ~right:("R", "id") in
  (* 1 / max(distinct) = 1/50. *)
  Alcotest.(check bool) "close to 1/50" true (Float.abs (s -. 0.02) < 0.005)

let suites =
  [
    ( "storage.page_pool",
      [
        Alcotest.test_case "page fill" `Quick test_page_fill;
        Alcotest.test_case "pool accounting" `Quick test_pool_hit_miss_accounting;
        Alcotest.test_case "mark_dirty after eviction" `Quick
          test_mark_dirty_after_eviction;
        Alcotest.test_case "unknown page" `Quick test_pool_unknown_page;
      ] );
    ( "storage.heap_file",
      [
        Alcotest.test_case "roundtrip" `Quick test_heap_file_roundtrip;
        Alcotest.test_case "fetch by rid" `Quick test_heap_file_fetch_by_rid;
        Alcotest.test_case "scan charges io" `Quick test_heap_file_scan_charges_io;
      ] );
    ( "storage.histogram",
      [
        Alcotest.test_case "selectivity" `Quick test_histogram_selectivity;
        Alcotest.test_case "range boundaries" `Quick test_histogram_range_boundaries;
        Alcotest.test_case "single value" `Quick test_histogram_single_value;
        Alcotest.test_case "empty" `Quick test_histogram_empty;
        Alcotest.test_case "decrement slab" `Quick test_histogram_slab;
      ] );
    ( "storage.catalog",
      [
        Alcotest.test_case "create/stats" `Quick test_catalog_create_and_stats;
        Alcotest.test_case "duplicate table" `Quick test_catalog_duplicate_table;
        Alcotest.test_case "index by expr" `Quick test_catalog_index_lookup_by_expr;
        Alcotest.test_case "join selectivity" `Quick test_join_selectivity_estimate;
      ] );
  ]
