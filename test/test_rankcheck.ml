(* Bounded, fixed-seed slice of the rankcheck differential fuzz harness
   (the open-ended sweep is `make fuzz`). Every seed here is deterministic:
   a failure prints the same replay command the CLI would. *)

open Check

let fail_on f =
  Alcotest.failf "%s" (Format.asprintf "%a" Rankcheck.pp_failure f)

(* The acceptance sweep: 200 consecutive seeds starting at 42, every
   enumerated plan against the oracle, zero divergences. *)
let test_fixed_seed_sweep () =
  let outcome = Rankcheck.run ~seed:42 ~cases:200 () in
  (match outcome.Rankcheck.o_failures with f :: _ -> fail_on f | [] -> ());
  Alcotest.(check int) "cases" 200 outcome.Rankcheck.o_cases;
  Alcotest.(check bool)
    "many plans exercised" true
    (outcome.Rankcheck.o_plans > 1000)

(* Parallel-determinism sweep: the same exchange plan at degree overrides
   1/2/N/2N must return bit-identical output (satellite of the morsel
   parallelism work; the 1000-seed version is `rankopt fuzz --degree N`). *)
let test_degree_sweep () =
  List.iter
    (fun degree ->
      let outcome = Rankcheck.run_degree ~seed:0 ~cases:60 ~degree () in
      (match outcome.Rankcheck.o_failures with f :: _ -> fail_on f | [] -> ());
      Alcotest.(check int)
        (Printf.sprintf "cases at degree %d" degree)
        60 outcome.Rankcheck.o_cases;
      Alcotest.(check bool)
        "degree executions compared" true
        (outcome.Rankcheck.o_plans >= 60 * 3))
    [ 2; 4 ]

(* Case i of [run ~seed ~cases] must be exactly case 0 of
   [run ~seed:(seed + i) ~cases:1] — that is the whole replay contract. *)
let test_replay_composition () =
  List.iter
    (fun seed ->
      let a = Rankcheck.gen_case seed in
      let b = Rankcheck.gen_case seed in
      Alcotest.(check bool) "gen_case deterministic" true (a = b))
    [ 0; 7; 42; 1647; 99991 ];
  let bulk = Rankcheck.run ~seed:500 ~cases:5 () in
  let singles =
    List.init 5 (fun i ->
        let o = Rankcheck.run ~seed:(500 + i) ~cases:1 () in
        o.Rankcheck.o_plans)
  in
  Alcotest.(check int)
    "plan counts compose" bulk.Rankcheck.o_plans
    (List.fold_left ( + ) 0 singles)

(* The generator must actually cover the hard corners the harness exists
   for: empty relations, three-way joins, tied scores. *)
let test_generator_coverage () =
  let cases = List.init 120 Rankcheck.gen_case in
  let has_empty =
    List.exists
      (fun c ->
        List.exists (fun t -> t.Rankcheck.t_rows = []) c.Rankcheck.c_tables)
      cases
  in
  let has_three_way =
    List.exists (fun c -> List.length c.Rankcheck.c_tables = 3) cases
  in
  let has_ties =
    List.exists
      (fun c ->
        List.exists
          (fun t ->
            let scores = List.map (fun (_, _, s) -> s) t.Rankcheck.t_rows in
            List.length (List.sort_uniq compare scores) < List.length scores)
          c.Rankcheck.c_tables)
      cases
  in
  Alcotest.(check bool) "generates empty relations" true has_empty;
  Alcotest.(check bool) "generates 3-way joins" true has_three_way;
  Alcotest.(check bool) "generates tied scores" true has_ties

(* Captured pre-fix counterexample (shrunk from fuzz seed 79): the INL join
   used to probe the inner table's key index directly, silently dropping
   the filter wrapped around the inner access path. T0's only row fails
   `T0.score >= 0.25`, so the true answer is empty — the unfixed executor
   returned the row anyway. Kept as a hand-built case so it survives any
   future change to the case generator. *)
let inlj_filter_case =
  let open Sqlfront.Ast in
  let col t c = Column { table = Some t; name = c } in
  {
    Rankcheck.c_seed = 79;
    c_tables =
      [
        {
          Rankcheck.t_name = "T0";
          t_key_domain = 2;
          t_dist = Workload.Dist.Uniform { lo = 0.0; hi = 1.0 };
          t_rows = [ (6, 1, 0.0625) ];
        };
        {
          Rankcheck.t_name = "T1";
          t_key_domain = 2;
          t_dist = Workload.Dist.Uniform { lo = 0.0; hi = 1.0 };
          t_rows = [ (1, 1, 0.637583) ];
        };
      ];
    c_query =
      {
        select = [ Star ];
        from = [ "T0"; "T1" ];
        where =
          [
            Compare (Eq, col "T0" "key", col "T1" "key");
            Compare (Ge, col "T0" "score", Number 0.25);
          ];
        rank_between = None;
        rank_dense = false;
        group_by = [];
        order_by =
          Some
            ( Binop
                ( Add,
                  Binop (Mul, Number 0.25, col "T0" "score"),
                  Binop (Mul, Number 0.5, col "T1" "score") ),
              Desc );
        limit = Some 1;
        limit_param = false;
      };
  }

let test_inlj_filter_regression () =
  match Rankcheck.check_case inlj_filter_case with
  | Ok plans -> Alcotest.(check bool) "plans checked" true (plans > 0)
  | Error (reason, _) -> Alcotest.failf "counterexample regressed: %s" reason

(* Captured pre-fix counterexample shape for the rank-join exhaustion fix
   (fuzz seed 44 family): one relation is empty, so every join result set is
   empty — before the fix, NRJN/HRJN kept polling the live side to
   exhaustion, which the harness reports as an over-read. *)
let empty_input_case =
  let open Sqlfront.Ast in
  let col t c = Column { table = Some t; name = c } in
  let rows n = List.init n (fun i -> (i, i mod 3, 0.125 *. float_of_int (i mod 8))) in
  {
    Rankcheck.c_seed = 44;
    c_tables =
      [
        {
          Rankcheck.t_name = "T0";
          t_key_domain = 3;
          t_dist = Workload.Dist.Uniform { lo = 0.0; hi = 1.0 };
          t_rows = rows 20;
        };
        {
          Rankcheck.t_name = "T1";
          t_key_domain = 3;
          t_dist = Workload.Dist.Uniform { lo = 0.0; hi = 1.0 };
          t_rows = [];
        };
      ];
    c_query =
      {
        select = [ Star ];
        from = [ "T0"; "T1" ];
        where = [ Compare (Eq, col "T0" "key", col "T1" "key") ];
        rank_between = None;
        rank_dense = false;
        group_by = [];
        order_by =
          Some (Binop (Add, col "T0" "score", col "T1" "score"), Desc);
        limit = Some 4;
        limit_param = false;
      };
  }

let test_empty_input_regression () =
  match Rankcheck.check_case empty_input_case with
  | Ok plans -> Alcotest.(check bool) "plans checked" true (plans > 0)
  | Error (reason, _) -> Alcotest.failf "counterexample regressed: %s" reason

(* Vector-mode slice: every MEMO-retained plan executed tuple-at-a-time
   and batch-at-a-time must be bit identical — rows, scores, order, and
   rank-join depth/emitted counters. The open-ended sweep is
   `rankopt fuzz --vector`. *)
let test_vector_fixed_seed_sweep () =
  let outcome = Rankcheck.run_vector ~seed:0 ~cases:120 () in
  (match outcome.Rankcheck.o_failures with f :: _ -> fail_on f | [] -> ());
  Alcotest.(check int) "cases" 120 outcome.Rankcheck.o_cases;
  Alcotest.(check bool)
    "plan pairs compared" true
    (outcome.Rankcheck.o_plans > 500)

(* Enumeration-mode slice: EXECUTE-then-FETCH prefixes through the query
   service must be tuple-exact (ties, NaN drops and all) against the full
   ranked-list oracle. The open-ended sweep is `rankopt fuzz --enum`. *)
let test_enum_fixed_seed_sweep () =
  let outcome = Rankcheck.run_enum ~seed:0 ~cases:40 () in
  (match outcome.Rankcheck.o_failures with f :: _ -> fail_on f | [] -> ());
  Alcotest.(check int) "cases" 40 outcome.Rankcheck.o_cases;
  Alcotest.(check bool)
    "prefixes checked" true
    (outcome.Rankcheck.o_plans > 100)

(* Enum cases must keep the replay contract and actually exercise the
   corners the mode exists for: exact tied totals and NaN-scored rows. *)
let test_enum_case_coverage () =
  List.iter
    (fun seed ->
      let a = Rankcheck.enum_case seed in
      let b = Rankcheck.enum_case seed in
      Alcotest.(check bool) "enum_case deterministic" true
        (a.Rankcheck.c_seed = b.Rankcheck.c_seed
        && a.Rankcheck.c_query = b.Rankcheck.c_query
        && List.for_all2
             (fun (x : Rankcheck.table_spec) (y : Rankcheck.table_spec) ->
               List.for_all2
                 (fun (i1, k1, s1) (i2, k2, s2) ->
                   i1 = i2 && k1 = k2
                   && (Float.equal s1 s2
                      || (Float.is_nan s1 && Float.is_nan s2)))
                 x.Rankcheck.t_rows y.Rankcheck.t_rows)
             a.Rankcheck.c_tables b.Rankcheck.c_tables))
    [ 0; 3; 42; 512 ];
  let cases = List.init 80 Rankcheck.enum_case in
  let rows c =
    List.concat_map (fun t -> t.Rankcheck.t_rows) c.Rankcheck.c_tables
  in
  let has_nan =
    List.exists
      (fun c -> List.exists (fun (_, _, s) -> Float.is_nan s) (rows c))
      cases
  in
  let on_grid s = Float.is_nan s || Float.equal (Float.round (s *. 8.0) /. 8.0) s in
  Alcotest.(check bool) "injects NaN scores" true has_nan;
  Alcotest.(check bool) "all scores on the exact 1/8 grid" true
    (List.for_all (fun c -> List.for_all (fun (_, _, s) -> on_grid s) (rows c))
       cases)

(* Shrinking preserves failure. We can't ship a live engine bug to shrink,
   so check the mechanics on the generator side: shrinking a passing case
   is the identity (nothing to minimize), and shrunk output of any case
   stays well-formed. *)
let test_rank_fixed_seed_sweep () =
  let outcome = Rankcheck.run_rank ~seed:0 ~cases:50 () in
  (match outcome.Rankcheck.o_failures with f :: _ -> fail_on f | [] -> ());
  Alcotest.(check int) "cases" 50 outcome.Rankcheck.o_cases;
  (* Both physical variants plus the SQL path per case. *)
  Alcotest.(check int) "window executions" 150 outcome.Rankcheck.o_plans

(* Rank cases must exercise the corners the mode exists for: tie blocks
   (1/8-grid scores), NaN rows, residual filters, and windows overshooting
   the table. *)
let test_rank_case_coverage () =
  let cases = List.init 80 Rankcheck.rank_case in
  let has pred = List.exists pred cases in
  let rows c =
    List.concat_map (fun t -> t.Rankcheck.t_rows) c.Rankcheck.c_tables
  in
  Alcotest.(check bool) "single scored table" true
    (List.for_all (fun c -> List.length c.Rankcheck.c_tables = 1) cases);
  Alcotest.(check bool) "every case carries a window" true
    (List.for_all
       (fun c -> c.Rankcheck.c_query.Sqlfront.Ast.rank_between <> None)
       cases);
  Alcotest.(check bool) "some NaN-scored rows" true
    (has (fun c -> List.exists (fun (_, _, s) -> Float.is_nan s) (rows c)));
  Alcotest.(check bool) "some tie blocks" true
    (has (fun c ->
         let scores =
           List.filter_map
             (fun (_, _, s) -> if Float.is_nan s then None else Some s)
             (rows c)
         in
         List.length (List.sort_uniq Float.compare scores)
         < List.length scores));
  Alcotest.(check bool) "some residual filters" true
    (has (fun c -> c.Rankcheck.c_query.Sqlfront.Ast.where <> []));
  Alcotest.(check bool) "some windows overshoot the table" true
    (has (fun c ->
         match c.Rankcheck.c_query.Sqlfront.Ast.rank_between with
         | Some (_, hi) -> hi > List.length (rows c)
         | None -> false))

let test_shrink_wellformed () =
  let case = Rankcheck.gen_case 42 in
  let shrunk = Rankcheck.shrink case in
  Alcotest.(check bool) "passing case untouched" true (case = shrunk)

let suites =
  [
    ( "check.rankcheck",
      [
        Alcotest.test_case "fixed-seed sweep (42..241)" `Slow
          test_fixed_seed_sweep;
        Alcotest.test_case "degree sweep (0..59, degrees 2 and 4)" `Quick
          test_degree_sweep;
        Alcotest.test_case "replay composition" `Quick test_replay_composition;
        Alcotest.test_case "generator coverage" `Quick test_generator_coverage;
        Alcotest.test_case "regression: INLJ drops inner filter" `Quick
          test_inlj_filter_regression;
        Alcotest.test_case "regression: empty-input over-read" `Quick
          test_empty_input_regression;
        Alcotest.test_case "vector-mode sweep (0..119)" `Quick
          test_vector_fixed_seed_sweep;
        Alcotest.test_case "enum-mode sweep (0..39)" `Slow
          test_enum_fixed_seed_sweep;
        Alcotest.test_case "enum-case coverage" `Quick test_enum_case_coverage;
        Alcotest.test_case "rank-mode sweep (0..49)" `Slow
          test_rank_fixed_seed_sweep;
        Alcotest.test_case "rank-case coverage" `Quick test_rank_case_coverage;
        Alcotest.test_case "shrink well-formed" `Quick test_shrink_wellformed;
      ] );
  ]
