(* Mutation tests for the planlint rule catalog: for every rule PL01..PL10,
   a deliberately corrupted plan / memo record / planned statement /
   cache entry asserting that exactly that rule fires — plus
   zero-false-positive checks: optimizer output, a fixed slice of the fuzz
   corpus, and the emit-time assertion mode must all lint clean. *)

open Relalg
open Core

let setup ?(seed = 11) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n:120 ~key_domain:10 ()))
    [ "A"; "B"; "C" ];
  cat

let score t = Expr.col ~relation:t "score"

let ab_cond =
  { Logical.left_table = "A"; left_column = "key"; right_table = "B"; right_column = "key" }

let ab_query ?filter () =
  Logical.make
    ~relations:
      [ Logical.base ?filter ~score:(score "A") "A";
        Logical.base ~score:(score "B") "B" ]
    ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
    ~k:5 ()

(* The corrupted input must produce at least one diagnostic, and nothing
   from any other rule may fire alongside — rule ownership is part of the
   catalog's contract (diagnosable mutations never cascade). *)
let expect_only rule diags =
  match diags with
  | [] -> Alcotest.failf "expected %s to fire" rule
  | ds ->
      List.iter
        (fun (dg : Lint.Diag.t) ->
          if not (String.equal dg.Lint.Diag.rule rule) then
            Alcotest.failf "expected only %s, got: %s" rule
              (Lint.Diag.to_string dg))
        ds

let expect_clean what diags =
  match Lint.Engine.errors diags with
  | [] -> ()
  | dg :: _ ->
      Alcotest.failf "%s should lint clean, got: %s" what
        (Lint.Diag.to_string dg)

(* PL01: a filter predicate over a column no input provides. *)
let test_mutation_pl01 () =
  let cat = setup () in
  let p =
    Plan.Filter
      { pred = Expr.(Cmp (Ge, col ~relation:"Z" "x", cfloat 0.0));
        input = Plan.Table_scan { table = "A" } }
  in
  expect_only "PL01-schema" (Lint.Engine.lint_plan cat p)

(* PL02: a merge join claims the ascending key order but its inputs arrive
   unsorted. *)
let test_mutation_pl02 () =
  let cat = setup () in
  let p =
    Plan.Join
      { algo = Plan.Sort_merge; cond = ab_cond;
        left = Plan.Table_scan { table = "A" };
        right = Plan.Table_scan { table = "B" };
        left_score = None; right_score = None }
  in
  expect_only "PL02-order" (Lint.Engine.lint_plan cat p)

(* PL03: the stored MEMO pipelining bit contradicts the plan shape (a sort
   is blocking). *)
let test_mutation_pl03 () =
  let cat = setup () in
  let p =
    Plan.Sort
      { order = { Plan.expr = score "A"; direction = Interesting_orders.Desc };
        input = Plan.Table_scan { table = "A" } }
  in
  expect_only "PL03-pipeline"
    (Lint.Rules.pipeline_rule ~stored:true (Lint.Walk.derive cat p))

(* PL04: the query demands a selection on A but the physical plan dropped
   it — the INL-join bug class. *)
let test_mutation_pl04 () =
  let cat = setup () in
  let query = ab_query ~filter:Expr.(Cmp (Ge, score "A", cfloat 0.5)) () in
  let p =
    Plan.Join
      { algo = Plan.Hash; cond = ab_cond;
        left = Plan.Table_scan { table = "A" };
        right = Plan.Table_scan { table = "B" };
        left_score = None; right_score = None }
  in
  expect_only "PL04-filter" (Lint.Rules.filter_rule ~query (Lint.Walk.derive cat p))

(* PL05: a propagation annotation carrying a NaN requirement. *)
let test_mutation_pl05 () =
  let cat = setup () in
  let query = ab_query () in
  let env = Cost_model.default_env ~k_min:5 cat query in
  let p = Plan.Table_scan { table = "A" } in
  let ann = Propagate.run env ~k:5 p in
  let corrupted = { ann with Propagate.required = Float.nan } in
  expect_only "PL05-kprop" (Lint.Rules.check_propagation env ~k:5 corrupted)

(* PL06: a rank join claiming to read 50 tuples from a 10-tuple input. *)
let test_mutation_pl06 () =
  expect_only "PL06-depth"
    (Lint.Rules.check_depths ~path:"plan:root" ~card_left:10.0 ~card_right:10.0
       { Depth_model.d_left = 50.0; d_right = 5.0 })

(* PL07: a NaN row estimate, and separately a cost function that decreases
   as output grows. *)
let test_mutation_pl07 () =
  let cat = setup () in
  let query = ab_query () in
  let env = Cost_model.default_env ~k_min:5 cat query in
  let e = Cost_model.estimate env (Plan.Table_scan { table = "A" }) in
  expect_only "PL07-cost"
    (Lint.Rules.check_estimate ~path:"plan:root"
       { e with Cost_model.rows = Float.nan });
  expect_only "PL07-cost"
    (Lint.Rules.check_estimate ~path:"plan:root"
       { e with Cost_model.cost_at = (fun x -> 1000.0 -. x) })

(* PL08: retained property bits that disagree with the plan — a stored
   order claim the plan does not make, and an entry key that is not the
   plan's relation mask. *)
let test_mutation_pl08 () =
  let cat = setup () in
  let query = ab_query () in
  let env = Cost_model.default_env ~k_min:5 cat query in
  let sp = Memo.subplan_of env (Plan.Table_scan { table = "A" }) in
  let corrupted =
    { sp with
      Memo.order =
        Some { Plan.expr = score "A"; direction = Interesting_orders.Desc } }
  in
  expect_only "PL08-memo" (Lint.Rules.subplan_rule env corrupted);
  let mask = Enumerator.relation_mask env [ "A" ] in
  expect_only "PL08-memo" (Lint.Rules.subplan_rule env ~key:(mask lxor 3) sp)

(* PL09: a planned statement whose root Top-k limit was tampered away from
   the query's k. *)
let test_mutation_pl09 () =
  let cat = setup () in
  let planned = Optimizer.optimize cat (ab_query ()) in
  let tampered =
    match planned.Optimizer.plan with
    | Plan.Top_k { k; input } ->
        { planned with Optimizer.plan = Plan.Top_k { k = k + 1; input } }
    | p -> Alcotest.failf "expected a Top-k root, got %s" (Plan.describe p)
  in
  expect_only "PL09-topk" (Lint.Rules.topk_rule tampered)

(* PL10: a cache entry filed under a non-canonical key, with a negative
   stats epoch. *)
let test_mutation_pl10 () =
  let cat = setup () in
  let sql = "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 5" in
  let prepared =
    match Sqlfront.Sql.template_of_sql sql with
    | Error e -> Alcotest.failf "template: %s" e
    | Ok tpl -> (
        match Sqlfront.Sql.instantiate tpl () with
        | Error e -> Alcotest.failf "instantiate: %s" e
        | Ok ast -> (
            match Sqlfront.Sql.prepare_ast cat ast with
            | Error e -> Alcotest.failf "prepare: %s" e
            | Ok p -> p))
  in
  expect_only "PL10-cache"
    (Lint.Rules.cache_entry_rule
       ~key:"select A.id from A order by A.score desc limit ?" ~epoch:(-1)
       prepared)

(* PL12: the stored Enumerate (cursor-resumability) bit flipped either
   way, plus the pure bit checker. *)
let test_mutation_pl12 () =
  let cat = setup () in
  let query = ab_query () in
  let planned = Optimizer.optimize cat query in
  Alcotest.(check bool)
    "ranking join statement is cursor-resumable" true
    planned.Optimizer.enumerable;
  expect_only "PL12-enum"
    (Lint.Rules.enumerate_rule { planned with Optimizer.enumerable = false });
  (* The opposite flip: claiming resumability for a non-ranking plan. *)
  let flat =
    Logical.make
      ~relations:[ Logical.base "A"; Logical.base "B" ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ()
  in
  let fplanned = Optimizer.optimize cat flat in
  Alcotest.(check bool)
    "flat join is not resumable" false fplanned.Optimizer.enumerable;
  expect_only "PL12-enum"
    (Lint.Rules.enumerate_rule { fplanned with Optimizer.enumerable = true });
  (* The pure checker: disagreement fires, agreement is silent. *)
  expect_only "PL12-enum"
    (Lint.Rules.check_enumerate_bit ~path:"plan:root" ~query ~recomputed:true
       false);
  Alcotest.(check int)
    "agreement lints clean" 0
    (List.length
       (Lint.Rules.check_enumerate_bit ~path:"plan:root" ~query
          ~recomputed:false false))

(* PL13: a by-rank scan's window and index justification. *)
let test_mutation_pl13 () =
  let cat = setup () in
  let rank ?(lo = 1) ?(hi = 10) index =
    Plan.Rank_index_scan
      { table = "A"; index; score = score "A"; lo; hi; dense = false }
  in
  let lint p = Lint.Rules.rank_rule cat (Lint.Walk.derive cat p) in
  expect_only "PL13-rank" (lint (rank ~lo:0 (Some "A_score")));
  expect_only "PL13-rank" (lint (rank ~lo:8 ~hi:3 None));
  expect_only "PL13-rank" (lint (rank (Some "A_missing")));
  (* A real index on the right table, keyed on A.key instead of the
     claimed score. *)
  expect_only "PL13-rank" (lint (rank (Some "A_key")));
  Alcotest.(check int)
    "counted descent lints clean" 0
    (List.length (lint (rank (Some "A_score"))));
  Alcotest.(check int)
    "sort fallback needs no index" 0
    (List.length (lint (rank None)));
  (* The optimizer's own rank-range output is clean under the full catalog. *)
  let query =
    Logical.make
      ~relations:[ Logical.base ~score:(score "A") "A" ]
      ~joins:[] ~rank_range:(2, 9) ()
  in
  expect_clean "rank-range planned statement"
    (Lint.Engine.lint_planned (Optimizer.optimize cat query))

(* PL14: scatter/gather soundness — shard bounds, merge-order
   justification, distinct shards, remote-only inputs. *)
let test_mutation_pl14 () =
  let cat = setup () in
  let rscan ?(shard = 0) ?(sc = Some (score "A")) ?(k' = Some 5) () =
    Plan.Remote_scan
      {
        shard;
        endpoint = Printf.sprintf "shard%d.sock" shard;
        sql = "SELECT * FROM A ORDER BY A.score DESC LIMIT ?";
        tables = [ "A" ];
        score = sc;
        k_bound = k';
      }
  in
  let gather ?(sc = Some (score "A")) ?(k = Some 5) inputs =
    Plan.Gather_merge { inputs; score = sc; k }
  in
  let lint p = Lint.Rules.shard_rule (Lint.Walk.derive cat p) in
  Alcotest.(check int)
    "two-shard gather lints clean" 0
    (List.length (lint (gather [ rscan (); rscan ~shard:1 () ])));
  (* no shard inputs at all *)
  expect_only "PL14-shard" (lint (gather []));
  (* the same shard merged twice *)
  expect_only "PL14-shard" (lint (gather [ rscan (); rscan () ]));
  (* per-shard bound below the gather's k: a shard can hold all winners *)
  expect_only "PL14-shard" (lint (gather [ rscan ~k':(Some 3) () ]));
  (* bounded gather over an unbounded shard stream *)
  expect_only "PL14-shard" (lint (gather [ rscan ~k':None () ]));
  (* merge order claimed over an unordered shard stream *)
  expect_only "PL14-shard" (lint (gather [ rscan ~sc:None () ]));
  (* shard sorted by a different score than the merge compares on *)
  expect_only "PL14-shard"
    (lint (gather [ rscan ~sc:(Some (score "B")) () ]));
  (* a local (non-remote) input under the gather *)
  expect_only "PL14-shard"
    (lint (gather ~sc:None ~k:None [ Plan.Table_scan { table = "A" } ]))

(* PL15: batched/streaming boundary soundness and the stored Vectorized
   property bit — the pure checkers under hand-corrupted claims, the
   memo-bit flip both ways through the full subplan lint, and clean
   agreement cases. *)
let test_mutation_pl15 () =
  let cat = setup () in
  let path = "plan:root" in
  (* Pure spine checker: a claimed batched region containing a streaming
     sink or an exchange fires; a clean claim is silent. *)
  expect_only "PL15-vector"
    (Lint.Rules.check_vector_spine ~path ~spine:true ~fused:false
       ~has_rank_join:true ~has_exchange:false);
  expect_only "PL15-vector"
    (Lint.Rules.check_vector_spine ~path ~spine:true ~fused:false
       ~has_rank_join:false ~has_exchange:true);
  expect_only "PL15-vector"
    (Lint.Rules.check_vector_spine ~path ~spine:false ~fused:true
       ~has_rank_join:true ~has_exchange:true);
  Alcotest.(check int)
    "sound batched region lints clean" 0
    (List.length
       (Lint.Rules.check_vector_spine ~path ~spine:true ~fused:false
          ~has_rank_join:false ~has_exchange:false));
  Alcotest.(check int)
    "streaming region may hold rank joins" 0
    (List.length
       (Lint.Rules.check_vector_spine ~path ~spine:false ~fused:false
          ~has_rank_join:true ~has_exchange:true));
  (* Pure bit checker: disagreement fires both ways, agreement is silent. *)
  expect_only "PL15-vector"
    (Lint.Rules.check_vector_bit ~path ~recomputed:true false);
  expect_only "PL15-vector"
    (Lint.Rules.check_vector_bit ~path ~recomputed:false true);
  Alcotest.(check int)
    "bit agreement lints clean" 0
    (List.length (Lint.Rules.check_vector_bit ~path ~recomputed:true true));
  (* The driver with a stored bit, and the memo-bit flip through the full
     subplan lint: a bare scan is batch-executable, so its recorded bit is
     true and flipping it must fire exactly PL15. *)
  let query = ab_query () in
  let env = Cost_model.default_env ~k_min:5 cat query in
  let scan = Plan.Table_scan { table = "A" } in
  let sp = Memo.subplan_of env scan in
  Alcotest.(check bool)
    "scan subplan records the Vectorized bit" true sp.Memo.vectorized;
  expect_only "PL15-vector"
    (Lint.Engine.errors
       (Lint.Engine.lint_subplan env { sp with Memo.vectorized = false }));
  expect_only "PL15-vector"
    (Lint.Rules.vector_rule ~vectorized:false (Lint.Walk.derive cat scan));
  (* A rank join is never batch-executable: claiming so must fire. *)
  let rank_plan =
    Plan.Join
      { algo = Plan.Hrjn; cond = ab_cond;
        left = Plan.Index_scan
            { table = "A"; index = "A_score"; key = score "A"; desc = true };
        right = Plan.Index_scan
            { table = "B"; index = "B_score"; key = score "B"; desc = true };
        left_score = Some (score "A"); right_score = Some (score "B") }
  in
  expect_only "PL15-vector"
    (Lint.Rules.vector_rule ~vectorized:true (Lint.Walk.derive cat rank_plan));
  Alcotest.(check int)
    "rank-join plan with an unset bit lints clean" 0
    (List.length
       (Lint.Rules.vector_rule ~vectorized:false
          (Lint.Walk.derive cat rank_plan)))

(* --- zero false positives ------------------------------------------- *)

let test_optimizer_output_clean () =
  let cat = setup () in
  let planned = Optimizer.optimize cat (ab_query ()) in
  expect_clean "optimizer output" (Lint.Engine.lint_planned planned)

let test_cache_entry_clean () =
  let cat = setup () in
  let sql = "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY \
             0.4*A.score + 0.6*B.score DESC LIMIT ?"
  in
  match Sqlfront.Sql.template_of_sql sql with
  | Error e -> Alcotest.failf "template: %s" e
  | Ok tpl -> (
      match Sqlfront.Sql.instantiate tpl ~k:7 () with
      | Error e -> Alcotest.failf "instantiate: %s" e
      | Ok ast -> (
          match Sqlfront.Sql.prepare_ast cat ast with
          | Error e -> Alcotest.failf "prepare: %s" e
          | Ok p ->
              expect_clean "cache entry"
                (Lint.Engine.lint_prepared ~key:tpl.Sqlfront.Sql.tpl_text
                   ~epoch:0 p)))

let test_emit_mode_clean () =
  let cat = setup () in
  Lint.Engine.Emit.reset ();
  Lint.Engine.Emit.enable ();
  let finish () = Lint.Engine.Emit.disable () in
  Fun.protect ~finally:finish (fun () ->
      ignore (Optimizer.optimize cat (ab_query ()));
      Alcotest.(check bool)
        "emit mode linted retained plans" true
        (Lint.Engine.Emit.linted () > 0);
      expect_clean "emit mode" (Lint.Engine.Emit.diagnostics ()))

let test_fuzz_corpus_clean () =
  (* A fixed slice of the differential-fuzz corpus: every MEMO-retained
     plan of every case must lint with zero diagnostics. The open-ended
     sweep is `rankopt lint --fuzz-seed 0 --fuzz-cases 6000`. *)
  let outcome = Check.Rankcheck.run_lint ~seed:7000 ~cases:12 () in
  (match outcome.Check.Rankcheck.o_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "fuzz corpus lint failure: %a" Check.Rankcheck.pp_failure f);
  Alcotest.(check bool) "plans linted" true (outcome.Check.Rankcheck.o_plans > 0)

let test_catalog_complete () =
  let ids = List.map fst Lint.Rules.catalog in
  Alcotest.(check int) "fifteen rules" 15 (List.length ids);
  Alcotest.(check bool)
    "distinct ids" true
    (List.length (List.sort_uniq String.compare ids) = List.length ids)

(* Diagnostics must round-trip into the machine-readable JSON surface. *)
let test_diag_json () =
  let dg =
    Lint.Diag.make ~rule:"PL02-order" ~hint:"sort \"first\""
      ~path:"plan:root/left" "claims order s(\"A\") it cannot justify"
  in
  let json = Lint.Diag.list_to_json [ dg ] in
  List.iter
    (fun sub ->
      let n = String.length sub and m = String.length json in
      let rec at i = i + n <= m && (String.sub json i n = sub || at (i + 1)) in
      Alcotest.(check bool) (Printf.sprintf "json contains %s" sub) true (at 0))
    [ "\"PL02-order\""; "\"error\""; "plan:root/left"; "\\\"first\\\"" ]

let suites =
  [
    ( "lint.mutations",
      [
        Alcotest.test_case "PL01 unbound predicate" `Quick test_mutation_pl01;
        Alcotest.test_case "PL02 unjustified order" `Quick test_mutation_pl02;
        Alcotest.test_case "PL03 pipeline bit flip" `Quick test_mutation_pl03;
        Alcotest.test_case "PL04 dropped filter" `Quick test_mutation_pl04;
        Alcotest.test_case "PL05 NaN requirement" `Quick test_mutation_pl05;
        Alcotest.test_case "PL06 depth over cardinality" `Quick test_mutation_pl06;
        Alcotest.test_case "PL07 corrupt estimate" `Quick test_mutation_pl07;
        Alcotest.test_case "PL08 property-bit drift" `Quick test_mutation_pl08;
        Alcotest.test_case "PL09 tampered Top-k" `Quick test_mutation_pl09;
        Alcotest.test_case "PL10 bad cache entry" `Quick test_mutation_pl10;
        Alcotest.test_case "PL12 Enumerate-bit flip" `Quick test_mutation_pl12;
        Alcotest.test_case "PL13 by-rank justification" `Quick
          test_mutation_pl13;
        Alcotest.test_case "PL14 scatter/gather soundness" `Quick
          test_mutation_pl14;
        Alcotest.test_case "PL15 batched-region soundness" `Quick
          test_mutation_pl15;
      ] );
    ( "lint.clean",
      [
        Alcotest.test_case "optimizer output" `Quick test_optimizer_output_clean;
        Alcotest.test_case "cache entry" `Quick test_cache_entry_clean;
        Alcotest.test_case "emit mode" `Quick test_emit_mode_clean;
        Alcotest.test_case "fuzz corpus slice" `Quick test_fuzz_corpus_clean;
        Alcotest.test_case "catalog is complete" `Quick test_catalog_complete;
        Alcotest.test_case "json rendering" `Quick test_diag_json;
      ] );
  ]
