(* Tests for the histogram-slab refinement of the depth model: asymmetric
   score weights must produce asymmetric depth estimates that steer the
   operator into reading deeper on the low-weight side. *)

open Relalg
open Core

let setup ?(n = 4000) ?(domain = 400) ?(seed = 15) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B" ];
  cat

let weighted_query ~wa ~wb ~k =
  Logical.make
    ~relations:
      [
        Logical.base ~score:(Expr.col ~relation:"A" "score") ~weight:wa "A";
        Logical.base ~score:(Expr.col ~relation:"B" "score") ~weight:wb "B";
      ]
    ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
    ~k ()

let hrjn_plan cat ~wa ~wb =
  let ix t =
    (Option.get
       (Storage.Catalog.find_index_on_expr cat ~table:t (Expr.col ~relation:t "score")))
      .Storage.Catalog.ix_name
  in
  let iscan t =
    Plan.Index_scan
      { table = t; index = ix t; key = Expr.col ~relation:t "score"; desc = true }
  in
  Plan.Join
    {
      algo = Plan.Hrjn;
      cond = { Logical.left_table = "A"; left_column = "key"; right_table = "B"; right_column = "key" };
      left = iscan "A";
      right = iscan "B";
      left_score = Some (Expr.Mul (Expr.cfloat wa, Expr.col ~relation:"A" "score"));
      right_score = Some (Expr.Mul (Expr.cfloat wb, Expr.col ~relation:"B" "score"));
    }

let depths_for cat ~wa ~wb ~k =
  let q = weighted_query ~wa ~wb ~k in
  let env = Cost_model.default_env ~k_min:k cat q in
  let plan = hrjn_plan cat ~wa ~wb in
  match plan with
  | Plan.Join { cond; left; right; _ } ->
      (env, plan, Cost_model.rank_join_depths env plan ~k:(float_of_int k) ~cond ~left ~right)
  | _ -> assert false

let test_symmetric_weights_symmetric_depths () =
  let cat = setup () in
  let _, _, d = depths_for cat ~wa:0.5 ~wb:0.5 ~k:10 in
  (* The empirical score ranges of the two tables differ slightly, so allow
     a small relative tolerance. *)
  Test_util.check_floats_close ~eps:1e-2 "dL = dR" d.Depth_model.d_left
    d.Depth_model.d_right

let test_asymmetric_weights_asymmetric_depths () =
  (* Low weight on B means B's scores barely matter: the model should read
     deeper into B (small slab -> fine discrimination needed) than into A. *)
  let cat = setup () in
  let _, _, d = depths_for cat ~wa:0.9 ~wb:0.1 ~k:10 in
  Alcotest.(check bool)
    (Printf.sprintf "dR (%.0f) > dL (%.0f)" d.Depth_model.d_right d.Depth_model.d_left)
    true
    (d.Depth_model.d_right > d.Depth_model.d_left *. 1.5)

let test_slab_formula_matches_handmade () =
  (* With uniform scores on [0,1], slabs are wa/(n-1) and wb/(n-1); the
     closed form cL = sqrt(y k/(x s)) should match the model output before
     clamping (here well inside bounds). *)
  let cat = setup ~n:4000 ~domain:400 () in
  let k = 10 in
  let wa = 0.8 and wb = 0.2 in
  let env, plan, d = depths_for cat ~wa ~wb ~k in
  (match plan with
  | Plan.Join { cond; _ } ->
      let s = Cost_model.join_selectivity env cond in
      let x = wa and y = wb in
      (* slabs share the 1/(n-1) factor, which cancels in the formulas *)
      let expect = Depth_model.top_k_depths_slabs ~k:(float_of_int k) ~s ~x ~y in
      Test_util.check_floats_close ~eps:1e-2 "dL" expect.Depth_model.d_left
        d.Depth_model.d_left;
      Test_util.check_floats_close ~eps:1e-2 "dR" expect.Depth_model.d_right
        d.Depth_model.d_right
  | _ -> assert false)

let test_weighted_execution_follows_asymmetry () =
  (* End to end: with hints from the slab model, the executed operator reads
     deeper on the low-weight side, and results stay correct. *)
  let cat = setup ~n:3000 ~domain:300 () in
  let k = 10 in
  let q = weighted_query ~wa:0.9 ~wb:0.1 ~k in
  let planned, result = Optimizer.run_query cat q in
  if Plan.has_rank_join planned.Optimizer.plan then begin
    match result.Executor.rank_nodes with
    | [ rn ] ->
        let dl = (Exec.Exec_stats.left_depth rn.Executor.stats) in
        let dr = (Exec.Exec_stats.right_depth rn.Executor.stats) in
        (* One side must be read substantially deeper than the other; which
           physical side holds B depends on the chosen join order. *)
        let lo = min dl dr and hi = max dl dr in
        Alcotest.(check bool)
          (Printf.sprintf "asymmetric consumption (%d vs %d)" dl dr)
          true
          (hi > lo * 2)
    | _ -> Alcotest.fail "expected one rank node"
  end;
  (* Correctness regardless of plan. *)
  let rel name =
    let info = Storage.Catalog.table cat name in
    Relation.create info.Storage.Catalog.tb_schema
      (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
  in
  let joined =
    Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
      (rel "A") (rel "B")
  in
  let score =
    Expr.weighted_sum
      [ (0.9, Expr.col ~relation:"A" "score"); (0.1, Expr.col ~relation:"B" "score") ]
  in
  let oracle = Relation.top_k ~score ~k joined in
  Test_util.check_score_multiset "weighted answers" (List.map snd oracle)
    (List.map snd result.Executor.rows)

let suites =
  [
    ( "core.slab_estimation",
      [
        Alcotest.test_case "symmetric weights" `Quick test_symmetric_weights_symmetric_depths;
        Alcotest.test_case "asymmetric weights" `Quick test_asymmetric_weights_asymmetric_depths;
        Alcotest.test_case "matches closed form" `Quick test_slab_formula_matches_handmade;
        Alcotest.test_case "execution follows" `Quick test_weighted_execution_follows_asymmetry;
      ] );
  ]
