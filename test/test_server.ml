(* Tests for the concurrent query service: wire protocol, the k-interval
   plan cache (including the optimizer flip across k-star), the service's
   prepared-statement / admission-control / deadline behavior, and a
   fixed-seed slice of the server-mode differential fuzzer. *)

let mk_catalog ?(n = 200) ?(domain = 20) ?(seed = 41) ?(pool_frames = 64)
    tables =
  let cat = Storage.Catalog.create ~pool_frames () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + (31 * i)))
           ~name ~n ~key_domain:domain ()))
    tables;
  cat

let join_sql =
  "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY A.score + \
   B.score DESC LIMIT ?"

let template sql = Result.get_ok (Sqlfront.Sql.template_of_sql sql)

let prepare_at cat tpl k =
  let ast = Result.get_ok (Sqlfront.Sql.instantiate tpl ~k ()) in
  Result.get_ok (Sqlfront.Sql.prepare_ast cat ast)

(* [Plan.describe] with the Top-k limit normalized out: rebinding k
   changes "Top5(...)" to "Top45(...)" while reusing the same shape. *)
let describe (p : Sqlfront.Sql.prepared) =
  let d = Core.Plan.describe p.Sqlfront.Sql.planned.Core.Optimizer.plan in
  match String.index_opt d '(' with
  | Some i when String.length d > 3 && String.sub d 0 3 = "Top" ->
      "Top" ^ String.sub d i (String.length d - i)
  | _ -> d

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  let ok = function Ok c -> c | Error e -> Alcotest.fail e in
  (match ok (Server.Protocol.parse_command "  ping  ") with
  | Server.Protocol.Ping -> ()
  | _ -> Alcotest.fail "expected Ping");
  (match ok (Server.Protocol.parse_command "EXECUTE q1 17") with
  | Server.Protocol.Execute { name = "q1"; k = Some 17 } -> ()
  | _ -> Alcotest.fail "expected Execute q1 17");
  (match ok (Server.Protocol.parse_command "EXECUTE q1") with
  | Server.Protocol.Execute { name = "q1"; k = None } -> ()
  | _ -> Alcotest.fail "expected Execute q1");
  (match ok (Server.Protocol.parse_command "PREPARE p SELECT 1 FROM T") with
  | Server.Protocol.Prepare { name = "p"; sql = "SELECT 1 FROM T" } -> ()
  | _ -> Alcotest.fail "expected Prepare");
  (match ok (Server.Protocol.parse_command "stats session") with
  | Server.Protocol.Stats `Session -> ()
  | _ -> Alcotest.fail "expected Stats Session");
  Alcotest.(check bool)
    "garbage rejected" true
    (Result.is_error (Server.Protocol.parse_command "FROBNICATE"));
  Alcotest.(check bool)
    "bad k rejected" true
    (Result.is_error (Server.Protocol.parse_command "EXECUTE q four"))

let test_protocol_roundtrip () =
  let resp =
    Server.Protocol.ok_response
      ~fields:[ ("rows", "2"); ("cached", "1") ]
      [ "a\t1"; "b\t2" ]
  in
  match Server.Protocol.render resp with
  | header :: payload ->
      Alcotest.(check int)
        "announced payload" (List.length payload)
        (Server.Protocol.payload_count header);
      let parsed = Result.get_ok (Server.Protocol.parse_header header) in
      Alcotest.(check bool) "ok" true parsed.Server.Protocol.ok;
      Alcotest.(check (option string))
        "cached field" (Some "1")
        (List.assoc_opt "cached" parsed.Server.Protocol.fields);
      let err = Server.Protocol.err_response ~code:"TIMEOUT" "too slow" in
      let eheader = List.hd (Server.Protocol.render err) in
      let eparsed = Result.get_ok (Server.Protocol.parse_header eheader) in
      Alcotest.(check bool) "err not ok" false eparsed.Server.Protocol.ok;
      Alcotest.(check string) "code" "TIMEOUT" eparsed.Server.Protocol.code;
      Alcotest.(check string) "message" "too slow" eparsed.Server.Protocol.message
  | [] -> Alcotest.fail "render produced nothing"

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_cache_lru_eviction () =
  let cat = mk_catalog [ "A"; "B" ] in
  let cache = Server.Plan_cache.create ~capacity:2 () in
  let store key sql =
    let tpl = template sql in
    Server.Plan_cache.store cache ~key ~epoch:0 (prepare_at cat tpl 3)
  in
  store "t1" "SELECT A.id FROM A ORDER BY A.score DESC LIMIT ?";
  store "t2" "SELECT B.id FROM B ORDER BY B.score DESC LIMIT ?";
  (match Server.Plan_cache.find cache ~key:"t1" ~epoch:0 ~k:(Some 3) with
  | Server.Plan_cache.Hit _ -> ()
  | _ -> Alcotest.fail "t1 should hit");
  (* t2 is now least recently used; a third template evicts it. *)
  store "t3" join_sql;
  (match Server.Plan_cache.find cache ~key:"t2" ~epoch:0 ~k:(Some 3) with
  | Server.Plan_cache.Absent -> ()
  | _ -> Alcotest.fail "t2 should have been LRU-evicted");
  let s = Server.Plan_cache.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Server.Plan_cache.evictions;
  Alcotest.(check int) "two entries" 2 s.Server.Plan_cache.entries

let test_cache_epoch_invalidation () =
  let cat = mk_catalog [ "A"; "B" ] in
  let cache = Server.Plan_cache.create () in
  let tpl = template join_sql in
  Server.Plan_cache.store cache ~key:"q" ~epoch:3 (prepare_at cat tpl 3);
  (match Server.Plan_cache.find cache ~key:"q" ~epoch:4 ~k:(Some 3) with
  | Server.Plan_cache.Stale -> ()
  | _ -> Alcotest.fail "epoch mismatch should be Stale");
  (* The stale entry is dropped eagerly: a same-epoch retry is a cold miss. *)
  (match Server.Plan_cache.find cache ~key:"q" ~epoch:4 ~k:(Some 3) with
  | Server.Plan_cache.Absent -> ()
  | _ -> Alcotest.fail "stale entry should have been dropped");
  let s = Server.Plan_cache.stats cache in
  Alcotest.(check int) "one invalidation" 1 s.Server.Plan_cache.invalidations

(* The paper's k* crossover, end to end: on the Figure-6 workload the
   optimizer picks a rank-join plan for small k whose validity interval is
   finite; rebinding inside the interval is a cache hit reusing the plan,
   rebinding outside re-optimizes to a different plan shape, and both
   variants then coexist under one template. *)
let test_k_interval_flip () =
  let cat = mk_catalog ~n:5000 ~domain:2000 [ "A"; "B" ] in
  let tpl = template join_sql in
  let small = prepare_at cat tpl 5 in
  let validity = small.Sqlfront.Sql.planned.Core.Optimizer.k_validity in
  let hi =
    match validity.Core.Optimizer.k_hi with
    | Some hi -> hi
    | None -> Alcotest.fail "small-k plan should have a finite k-interval"
  in
  Alcotest.(check bool) "interval contains its own k" true
    (Core.Optimizer.k_in_validity small.Sqlfront.Sql.planned 5);
  Alcotest.(check bool) "crossover below table size" true (hi < 5000);
  let big = prepare_at cat tpl (2 * hi) in
  Alcotest.(check bool)
    "optimizer flips plan shape across k*" true
    (describe small <> describe big);
  (* Now through the cache. *)
  let cache = Server.Plan_cache.create () in
  let epoch = Storage.Catalog.stats_epoch cat in
  Server.Plan_cache.store cache ~key:"q" ~epoch small;
  (match Server.Plan_cache.find cache ~key:"q" ~epoch ~k:(Some hi) with
  | Server.Plan_cache.Hit p ->
      Alcotest.(check string)
        "in-interval rebind reuses the plan shape" (describe small) (describe p);
      Alcotest.(check (option int))
        "rebind pushed the new k" (Some hi)
        p.Sqlfront.Sql.planned.Core.Optimizer.query.Core.Logical.k
  | _ -> Alcotest.fail "k inside the interval should hit");
  (match Server.Plan_cache.find cache ~key:"q" ~epoch ~k:(Some (2 * hi)) with
  | Server.Plan_cache.Interval_miss -> ()
  | _ -> Alcotest.fail "k outside the interval should be an interval miss");
  Server.Plan_cache.store cache ~key:"q" ~epoch big;
  (* Both regimes are now cached as variants of one template. *)
  (match Server.Plan_cache.find cache ~key:"q" ~epoch ~k:(Some 2) with
  | Server.Plan_cache.Hit p ->
      Alcotest.(check string) "small-k variant" (describe small) (describe p)
  | _ -> Alcotest.fail "small k should hit the rank-join variant");
  (match Server.Plan_cache.find cache ~key:"q" ~epoch ~k:(Some (2 * hi)) with
  | Server.Plan_cache.Hit p ->
      Alcotest.(check string) "large-k variant" (describe big) (describe p)
  | _ -> Alcotest.fail "large k should hit the sort-based variant");
  let s = Server.Plan_cache.stats cache in
  Alcotest.(check int) "one reopt-on-rebind" 1 s.Server.Plan_cache.reopt_rebinds;
  Alcotest.(check int) "one entry, two variants" 2 s.Server.Plan_cache.variants

(* ------------------------------------------------------------------ *)
(* Service                                                             *)
(* ------------------------------------------------------------------ *)

let with_service ?(config = Server.Service.default_config) cat f =
  let svc = Server.Service.create ~config cat in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) (fun () -> f svc)

let get_reply = function
  | Ok (r : Server.Service.reply) -> r
  | Error e -> Alcotest.fail (Server.Service.error_message e)

let test_service_prepared_flow () =
  let cat = mk_catalog [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  (match Server.Service.prepare s ~name:"q" join_sql with
  | Ok tpl ->
      Alcotest.(check bool)
        "template is k-parameterized" true
        (String.length tpl.Sqlfront.Sql.tpl_text >= 7
        && String.sub tpl.Sqlfront.Sql.tpl_text
             (String.length tpl.Sqlfront.Sql.tpl_text - 7)
             7
           = "LIMIT ?")
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  let r1 = get_reply (Server.Service.execute_prepared s ~k:3 "q") in
  Alcotest.(check int) "k=3 rows" 3 (List.length r1.Server.Service.rows);
  Alcotest.(check bool) "first execution optimizes" false r1.Server.Service.cached;
  let r2 = get_reply (Server.Service.execute_prepared s ~k:3 "q") in
  Alcotest.(check bool) "second execution hits cache" true r2.Server.Service.cached;
  let r3 = get_reply (Server.Service.execute_prepared s ~k:5 "q") in
  Alcotest.(check int) "k=5 rows after rebind" 5
    (List.length r3.Server.Service.rows);
  (match Server.Service.execute_prepared s "nope" with
  | Error (Server.Service.Unknown_prepared _) -> ()
  | _ -> Alcotest.fail "unknown prepared name should be a typed error");
  (* Prepared statements are session-scoped. *)
  let s2 = Server.Service.open_session svc in
  (match Server.Service.execute_prepared s2 "q" with
  | Error (Server.Service.Unknown_prepared _) -> ()
  | _ -> Alcotest.fail "prepared statements must not leak across sessions");
  Server.Service.close_session s2;
  Server.Service.close_session s

let test_service_dml_invalidation () =
  let cat = mk_catalog [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  let sql = "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 4" in
  ignore (get_reply (Server.Service.query s sql));
  let warm = get_reply (Server.Service.query s sql) in
  Alcotest.(check bool) "warm query cached" true warm.Server.Service.cached;
  let epoch_before = Storage.Catalog.stats_epoch cat in
  let dml = get_reply (Server.Service.query s "INSERT INTO A VALUES (9999, 1, 0.5)") in
  Alcotest.(check (option int)) "one row inserted" (Some 1)
    dml.Server.Service.affected;
  Alcotest.(check bool)
    "DML bumps the stats epoch" true
    (Storage.Catalog.stats_epoch cat > epoch_before);
  let cold = get_reply (Server.Service.query s sql) in
  Alcotest.(check bool)
    "stats change invalidates the cached plan" false cold.Server.Service.cached;
  let cs = Server.Service.cache_stats svc in
  Alcotest.(check bool)
    "invalidation counted" true
    (cs.Server.Plan_cache.invalidations >= 1);
  Server.Service.close_session s

(* One pool serves both whole statements and exchange morsel pumps: a
   dop>1 service must answer a drain-heavy query exactly like a serial
   one, and concurrent sessions must not deadlock even though their
   statements and the statements' own morsels compete for the same two
   workers. *)
let test_service_parallel_dop () =
  let sql = "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY A.score + B.score DESC LIMIT 150" in
  let serial_scores =
    let cat = mk_catalog [ "A"; "B" ] in
    with_service cat @@ fun svc ->
    let s = Server.Service.open_session svc in
    let r = get_reply (Server.Service.query s sql) in
    Server.Service.close_session s;
    r.Server.Service.scores
  in
  let cat = mk_catalog [ "A"; "B" ] in
  with_service
    ~config:{ Server.Service.default_config with workers = 2; dop = 4 }
    cat
  @@ fun svc ->
  let s = Server.Service.open_session svc in
  let r = get_reply (Server.Service.query s sql) in
  Alcotest.(check (list (float 1e-9)))
    "dop=4 service matches serial scores" serial_scores
    r.Server.Service.scores;
  (* Hammer: a few domains issuing the same drain query concurrently. *)
  let errors = Atomic.make 0 in
  let hammer () =
    let s = Server.Service.open_session svc in
    for _ = 1 to 5 do
      match Server.Service.query s sql with
      | Ok reply ->
          if reply.Server.Service.scores <> serial_scores then
            Atomic.incr errors
      | Error _ -> Atomic.incr errors
    done;
    Server.Service.close_session s
  in
  let ds = List.init 3 (fun _ -> Domain.spawn hammer) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no divergence or failure under hammer" 0
    (Atomic.get errors);
  Alcotest.(check (option string))
    "stats advertise the degree" (Some "4")
    (List.assoc_opt "dop" (Server.Service.stats svc));
  Server.Service.close_session s

let test_service_timeout () =
  let cat = mk_catalog [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  (match
     Server.Service.query s ~timeout_s:(-1.0)
       "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 2"
   with
  | Error Server.Service.Timeout -> ()
  | Ok _ -> Alcotest.fail "expired deadline should not execute"
  | Error e -> Alcotest.fail (Server.Service.error_code e));
  let fields = Server.Service.stats svc in
  Alcotest.(check (option string))
    "timeout counted" (Some "1")
    (List.assoc_opt "timeouts" fields);
  Server.Service.close_session s

let test_service_queue_full () =
  (* domain=5 makes the equijoin huge, so a single worker with a one-slot
     queue is saturated while the other submitters arrive. *)
  let cat = mk_catalog ~n:2000 ~domain:5 [ "A"; "B" ] in
  let config =
    { Server.Service.default_config with workers = 1; queue_capacity = 1 }
  in
  with_service ~config cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  let slow =
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY A.score + \
     B.score DESC LIMIT 1000"
  in
  let outcomes = Array.make 8 (Error Server.Service.Shutting_down) in
  let threads =
    List.init (Array.length outcomes) (fun i ->
        Thread.create (fun () -> outcomes.(i) <- Server.Service.query s slow) ())
  in
  List.iter Thread.join threads;
  let shed, completed =
    Array.fold_left
      (fun (shed, completed) -> function
        | Error (Server.Service.Queue_full _) -> (shed + 1, completed)
        | Ok _ -> (shed, completed + 1)
        | Error e -> Alcotest.fail (Server.Service.error_code e))
      (0, 0) outcomes
  in
  Alcotest.(check bool) "some statements shed" true (shed >= 1);
  Alcotest.(check bool) "some statements completed" true (completed >= 1);
  let fields = Server.Service.stats svc in
  Alcotest.(check (option string))
    "shed counter matches" (Some (string_of_int shed))
    (List.assoc_opt "shed" fields);
  Server.Service.close_session s

let test_service_stats_fields () =
  let cat = mk_catalog [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  ignore (get_reply (Server.Service.query s "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 1"));
  let fields = Server.Service.stats svc in
  List.iter
    (fun key ->
      if List.assoc_opt key fields = None then
        Alcotest.failf "missing server stats field %s" key)
    [
      "queries"; "errors"; "timeouts"; "shed"; "p50_ms"; "p95_ms";
      "cache_hits"; "cache_misses"; "cache_reopt_rebinds"; "cache_hit_rate";
      "queue_depth"; "workers"; "sessions"; "stats_epoch";
    ];
  Alcotest.(check (option string))
    "one session open" (Some "1")
    (List.assoc_opt "sessions" fields);
  let sfields = Server.Service.session_stats s in
  Alcotest.(check (option string))
    "session query count" (Some "1")
    (List.assoc_opt "queries" sfields);
  (* EXPLAIN surfaces the epoch and the k-validity interval. *)
  (match
     Server.Service.explain s
       (String.concat "5" (String.split_on_char '?' join_sql))
   with
  | Error e -> Alcotest.fail (Server.Service.error_message e)
  | Ok text ->
      let contains needle =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "explain shows stats epoch" true
        (contains "Catalog stats epoch");
      Alcotest.(check bool) "explain shows k-validity" true
        (contains "Plan valid for k in"));
  Server.Service.close_session s

(* ------------------------------------------------------------------ *)
(* Cursors: FETCH NEXT, bind validation, staleness, deadlines          *)
(* ------------------------------------------------------------------ *)

let test_protocol_fetch_parse () =
  let ok = function Ok c -> c | Error e -> Alcotest.fail e in
  (match ok (Server.Protocol.parse_command "FETCH q NEXT 10") with
  | Server.Protocol.Fetch { name = "q"; n = 10 } -> ()
  | _ -> Alcotest.fail "expected Fetch q 10");
  (match ok (Server.Protocol.parse_command "fetch q next") with
  | Server.Protocol.Fetch { name = "q"; n = 1 } -> ()
  | _ -> Alcotest.fail "FETCH without a count should default to 1");
  (match ok (Server.Protocol.parse_command "CLOSE q") with
  | Server.Protocol.Close "q" -> ()
  | _ -> Alcotest.fail "expected Close q");
  Alcotest.(check bool)
    "FETCH without NEXT rejected" true
    (Result.is_error (Server.Protocol.parse_command "FETCH q 10"));
  Alcotest.(check bool)
    "FETCH with junk count rejected" true
    (Result.is_error (Server.Protocol.parse_command "FETCH q NEXT ten"));
  Alcotest.(check bool)
    "bare CLOSE rejected" true
    (Result.is_error (Server.Protocol.parse_command "CLOSE"))

(* k = 0 / negative / FETCH n < 1 must be protocol-level bind errors — and
   crucially must be rejected *before* the plan cache is touched, so a bad
   bind can never poison the cache with a k=0 variant (the regression: a
   cached Top-k(0) plan would crash every later rebind). *)
let test_bind_validation_no_cache_poison () =
  let cat = mk_catalog [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  (match Server.Service.prepare s ~name:"q" join_sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  (match Server.Service.execute_prepared s ~k:0 "q" with
  | Error (Server.Service.Bind_error _) -> ()
  | Ok _ -> Alcotest.fail "k=0 must be rejected"
  | Error e -> Alcotest.fail ("k=0: " ^ Server.Service.error_code e));
  (match Server.Service.execute_prepared s ~k:(-7) "q" with
  | Error (Server.Service.Bind_error _) -> ()
  | _ -> Alcotest.fail "negative k must be a bind error");
  let cs = Server.Service.cache_stats svc in
  Alcotest.(check int) "bad binds never reached the cache" 0
    (cs.Server.Plan_cache.hits + cs.Server.Plan_cache.misses);
  Alcotest.(check int) "nothing cached" 0 cs.Server.Plan_cache.entries;
  (* The statement is unharmed: a valid bind plans, executes, and caches. *)
  let r1 = get_reply (Server.Service.execute_prepared s ~k:3 "q") in
  Alcotest.(check int) "k=3 rows after bad binds" 3
    (List.length r1.Server.Service.rows);
  let r2 = get_reply (Server.Service.execute_prepared s ~k:3 "q") in
  Alcotest.(check bool) "replay hits the cache" true r2.Server.Service.cached;
  (match Server.Service.fetch s ~name:"q" 0 with
  | Error (Server.Service.Bind_error _) -> ()
  | _ -> Alcotest.fail "FETCH n=0 must be a bind error");
  (match Server.Service.fetch s ~name:"q" (-2) with
  | Error (Server.Service.Bind_error _) -> ()
  | _ -> Alcotest.fail "FETCH n<0 must be a bind error");
  Server.Service.close_session s

(* The cursor contract end to end: EXECUTE k then FETCH NEXT repeatedly
   must reproduce, tuple for tuple, a one-shot execution at the combined
   k. *)
let test_cursor_fetch_prefix () =
  let cat = mk_catalog [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  (match Server.Service.prepare s ~name:"cur" join_sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  (match Server.Service.prepare s ~name:"oneshot" join_sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  let r0 = get_reply (Server.Service.execute_prepared s ~k:5 "cur") in
  Alcotest.(check int) "EXECUTE k=5" 5 (List.length r0.Server.Service.rows);
  Alcotest.(check (option string))
    "session counts the open cursor" (Some "1")
    (List.assoc_opt "cursors" (Server.Service.session_stats s));
  let f1 = get_reply (Server.Service.fetch s ~name:"cur" 4) in
  let f2 = get_reply (Server.Service.fetch s ~name:"cur" 6) in
  Alcotest.(check int) "first fetch" 4 (List.length f1.Server.Service.rows);
  Alcotest.(check int) "second fetch" 6 (List.length f2.Server.Service.rows);
  let got =
    r0.Server.Service.rows @ f1.Server.Service.rows @ f2.Server.Service.rows
  in
  let got_scores =
    r0.Server.Service.scores @ f1.Server.Service.scores
    @ f2.Server.Service.scores
  in
  let one = get_reply (Server.Service.execute_prepared s ~k:15 "oneshot") in
  Alcotest.(check int) "one-shot size" 15 (List.length one.Server.Service.rows);
  Alcotest.(check bool) "prefix rows tuple-identical" true
    (List.equal Relalg.Tuple.equal one.Server.Service.rows got);
  Alcotest.(check (list (float 1e-12)))
    "prefix scores identical" one.Server.Service.scores got_scores;
  (match Server.Service.close_cursor s "cur" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Server.Service.error_code e));
  (match Server.Service.fetch s ~name:"cur" 1 with
  | Error (Server.Service.Unknown_cursor _) -> ()
  | _ -> Alcotest.fail "FETCH after CLOSE must be UNKNOWN_CURSOR");
  (match Server.Service.fetch s ~name:"never" 1 with
  | Error (Server.Service.Unknown_cursor _) -> ()
  | _ -> Alcotest.fail "FETCH on an unknown name must be UNKNOWN_CURSOR");
  Server.Service.close_session s

let test_cursor_stale_after_dml () =
  let cat = mk_catalog [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  (match Server.Service.prepare s ~name:"q" join_sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  ignore (get_reply (Server.Service.execute_prepared s ~k:3 "q"));
  ignore (get_reply (Server.Service.query s "INSERT INTO A VALUES (9999, 1, 0.5)"));
  (match Server.Service.fetch s ~name:"q" 2 with
  | Error (Server.Service.Cursor_stale _) -> ()
  | Ok _ -> Alcotest.fail "FETCH across a stats-epoch bump must be stale"
  | Error e -> Alcotest.fail ("stale: " ^ Server.Service.error_code e));
  (* The stale cursor is dropped, not wedged: re-EXECUTE re-plans and
     fetching resumes. *)
  (match Server.Service.fetch s ~name:"q" 2 with
  | Error (Server.Service.Unknown_cursor _) -> ()
  | _ -> Alcotest.fail "stale cursor must have been dropped");
  ignore (get_reply (Server.Service.execute_prepared s ~k:3 "q"));
  let f = get_reply (Server.Service.fetch s ~name:"q" 2) in
  Alcotest.(check int) "fetch after re-EXECUTE" 2
    (List.length f.Server.Service.rows);
  Server.Service.close_session s

(* Per-table epochs: DML against a table a statement never reads must not
   stale its cursor or invalidate its cached plan. Regression for the
   catalog-wide epoch, under which any write anywhere killed every open
   cursor and cached plan. *)
let test_per_table_epoch_isolation () =
  let cat = mk_catalog [ "A"; "B"; "C" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  (match Server.Service.prepare s ~name:"q" join_sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  ignore (get_reply (Server.Service.execute_prepared s ~k:3 "q"));
  (* Writes to C — not among the statement's FROM tables. *)
  ignore (get_reply (Server.Service.query s "INSERT INTO C VALUES (9999, 1, 0.5)"));
  let f = get_reply (Server.Service.fetch s ~name:"q" 2) in
  Alcotest.(check int) "cursor survives unrelated DML" 2
    (List.length f.Server.Service.rows);
  let r = get_reply (Server.Service.execute_prepared s ~k:3 "q") in
  Alcotest.(check bool) "cached plan survives unrelated DML" true
    r.Server.Service.cached;
  (* Writes to A — one of its own tables — must still invalidate both. *)
  ignore (get_reply (Server.Service.query s "INSERT INTO A VALUES (9998, 1, 0.5)"));
  (match Server.Service.fetch s ~name:"q" 2 with
  | Error (Server.Service.Cursor_stale _) -> ()
  | Ok _ -> Alcotest.fail "DML on the cursor's own table must stale it"
  | Error e -> Alcotest.fail ("own-table DML: " ^ Server.Service.error_code e));
  let r = get_reply (Server.Service.execute_prepared s ~k:3 "q") in
  Alcotest.(check bool) "own-table DML invalidates the cached plan" false
    r.Server.Service.cached;
  Server.Service.close_session s

(* RANK <table>.<column> OF <value>: protocol parse plus the inline
   order-statistic probe. *)
let test_rank_probe () =
  (match Server.Protocol.parse_command "RANK A.score OF 0.5" with
  | Ok (Server.Protocol.Rank { table = "A"; column = "score"; value; dense }) ->
      Alcotest.(check (float 0.0)) "value" 0.5 value;
      Alcotest.(check bool) "sparse by default" false dense
  | Ok _ -> Alcotest.fail "expected Rank"
  | Error e -> Alcotest.fail e);
  (match Server.Protocol.parse_command "RANK A.score OF 0.5 DENSE" with
  | Ok (Server.Protocol.Rank { dense; _ }) ->
      Alcotest.(check bool) "DENSE suffix parsed" true dense
  | Ok _ -> Alcotest.fail "expected Rank"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "RANK with a junk suffix rejected" true
    (Result.is_error (Server.Protocol.parse_command "RANK A.score OF 0.5 NOPE"));
  Alcotest.(check bool)
    "RANK without OF rejected" true
    (Result.is_error (Server.Protocol.parse_command "RANK A.score 0.5"));
  Alcotest.(check bool)
    "RANK without a dotted column rejected" true
    (Result.is_error (Server.Protocol.parse_command "RANK A OF 0.5"));
  let cat = mk_catalog ~n:50 [ "A" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  let probe v = Server.Service.rank_probe s ~table:"A" ~column:"score" v in
  (match probe 2.0 with
  | Ok (rank, total) ->
      Alcotest.(check (option int)) "above every score" (Some 1) rank;
      Alcotest.(check int) "total counts ranked entries" 50 total
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  (match probe (-1.0) with
  | Ok (rank, _) ->
      Alcotest.(check (option int)) "below every score" (Some 51) rank
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  (match probe Float.nan with
  | Ok (rank, _) -> Alcotest.(check (option int)) "NaN probe" None rank
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  (match Server.Service.rank_probe s ~table:"Z" ~column:"score" 0.5 with
  | Error (Server.Service.Bind_error _) -> ()
  | _ -> Alcotest.fail "unknown table must be a bind error");
  (match Server.Service.rank_probe s ~table:"A" ~column:"id" 0.5 with
  | Error (Server.Service.Plan_error _) -> ()
  | _ -> Alcotest.fail "column without a rank index must be a plan error");
  Server.Service.close_session s

(* Satellite hammer: deadlines firing mid-FETCH (and pre-expired ones)
   must surface as TIMEOUT without wedging the worker pool — afterwards
   the same service must still plan, execute, and fetch normally. *)
let test_cursor_deadline_hammer () =
  let cat = mk_catalog ~n:1500 ~domain:4 [ "A"; "B" ] in
  let config = { Server.Service.default_config with workers = 2 } in
  with_service ~config cat @@ fun svc ->
  let timeouts = Atomic.make 0 in
  let wedged = Atomic.make 0 in
  let hammer i () =
    let s = Server.Service.open_session svc in
    (match Server.Service.prepare s ~name:"h" join_sql with
    | Ok _ -> ()
    | Error _ -> Atomic.incr wedged);
    for round = 1 to 4 do
      (match Server.Service.execute_prepared s ~k:3 "h" with
      | Ok _ | Error Server.Service.Timeout -> ()
      | Error _ -> Atomic.incr wedged);
      (* Alternate pre-expired and near-instant deadlines so some fetches
         are cancelled in the queue and some are interrupted mid-pull. *)
      let timeout_s = if (i + round) mod 2 = 0 then -1.0 else 1e-6 in
      (match Server.Service.fetch s ~timeout_s ~name:"h" 500 with
      | Error Server.Service.Timeout -> Atomic.incr timeouts
      | Ok _ -> ()
      | Error (Server.Service.Unknown_cursor _) -> ()
      | Error _ -> Atomic.incr wedged)
    done;
    Server.Service.close_session s
  in
  let threads = List.init 4 (fun i -> Thread.create (hammer i) ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no unexpected errors" 0 (Atomic.get wedged);
  Alcotest.(check bool) "some deadlines fired mid-fetch" true
    (Atomic.get timeouts > 0);
  (* The pool survived: a fresh statement still runs end to end. *)
  let s = Server.Service.open_session svc in
  (match Server.Service.prepare s ~name:"q" join_sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  let r = get_reply (Server.Service.execute_prepared s ~k:4 "q") in
  Alcotest.(check int) "service alive after hammer" 4
    (List.length r.Server.Service.rows);
  let f = get_reply (Server.Service.fetch s ~name:"q" 4) in
  Alcotest.(check int) "fetch alive after hammer" 4
    (List.length f.Server.Service.rows);
  Server.Service.close_session s

(* RANK ... DENSE: dense numbering counts distinct scores, so a tied
   table separates it from the sparse probe. *)
let test_dense_rank_probe () =
  let cat = Storage.Catalog.create () in
  let schema =
    Relalg.Schema.of_columns
      [
        Relalg.Schema.column "id" Relalg.Value.Tint;
        Relalg.Schema.column "score" Relalg.Value.Tfloat;
      ]
  in
  let tuples =
    List.mapi
      (fun i s -> [| Relalg.Value.Int (i + 1); Relalg.Value.Float s |])
      [ 0.9; 0.9; 0.8; 0.7; 0.7; 0.7; 0.6; 0.5 ]
  in
  ignore (Storage.Catalog.create_table cat "D" schema tuples);
  ignore
    (Storage.Catalog.create_index cat ~name:"d_score" ~table:"D"
       ~key:(Relalg.Expr.col ~relation:"D" "score")
       ());
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  let dense v = Server.Service.rank_probe s ~dense:true ~table:"D" ~column:"score" v in
  let sparse v = Server.Service.rank_probe s ~table:"D" ~column:"score" v in
  (match (sparse 0.7, dense 0.7) with
  | Ok (Some r, total), Ok (Some d, dtotal) ->
      Alcotest.(check int) "sparse rank of 0.7" 4 r;
      Alcotest.(check int) "sparse total" 8 total;
      Alcotest.(check int) "dense rank of 0.7" 3 d;
      Alcotest.(check int) "dense total = distinct scores" 5 dtotal
  | _ -> Alcotest.fail "probe failed");
  (match dense 0.75 with
  | Ok (Some d, _) ->
      Alcotest.(check int) "absent value would open block 3" 3 d
  | _ -> Alcotest.fail "absent-value dense probe failed");
  (match dense Float.nan with
  | Ok (rank, _) -> Alcotest.(check (option int)) "NaN dense probe" None rank
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  Server.Service.close_session s

(* Satellite regression: ERR CURSOR_STALE and ERR QUEUE_FULL replies
   must identify the cursor/statement they refer to, so a client
   multiplexing statements can tell which one failed. *)
let test_error_identifiers () =
  let contains hay needle =
    let n = String.length needle in
    let rec scan i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || scan (i + 1))
    in
    scan 0
  in
  (* Rendered ERR lines carry the identifier in the message. *)
  let stale = Server.Service.Cursor_stale "cur42" in
  Alcotest.(check string) "stale code" "CURSOR_STALE"
    (Server.Service.error_code stale);
  Alcotest.(check bool) "stale message names the cursor" true
    (contains (Server.Service.error_message stale) "cur42");
  let shed = Server.Service.Queue_full "stmt7" in
  Alcotest.(check string) "shed code" "QUEUE_FULL"
    (Server.Service.error_code shed);
  Alcotest.(check bool) "shed message names the statement" true
    (contains (Server.Service.error_message shed) "stmt7");
  (* End to end: a fetch against a DML-staled cursor reports its name. *)
  let cat = mk_catalog ~n:60 [ "A"; "B" ] in
  with_service cat @@ fun svc ->
  let s = Server.Service.open_session svc in
  (match Server.Service.prepare s ~name:"mycur" join_sql with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  ignore (get_reply (Server.Service.execute_prepared s ~k:2 "mycur"));
  (match Server.Service.query s "DELETE FROM A WHERE A.id <= 1" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  (match Server.Service.fetch s ~name:"mycur" 2 with
  | Error (Server.Service.Cursor_stale name) ->
      Alcotest.(check string) "stale error carries the cursor name" "mycur"
        name
  | Ok _ -> Alcotest.fail "expected CURSOR_STALE"
  | Error e -> Alcotest.fail (Server.Service.error_message e));
  Server.Service.close_session s

(* ------------------------------------------------------------------ *)
(* Server-mode fuzzer slice                                            *)
(* ------------------------------------------------------------------ *)

let test_rankcheck_server_slice () =
  let outcome = Check.Rankcheck.run_server ~seed:1 ~cases:3 () in
  (match outcome.Check.Rankcheck.o_failures with
  | [] -> ()
  | f :: _ -> Alcotest.fail f.Check.Rankcheck.f_reason);
  Alcotest.(check bool)
    "executions checked" true
    (outcome.Check.Rankcheck.o_plans >= 3 * 4)

let suites =
  [
    ( "server protocol",
      [
        Alcotest.test_case "parse commands" `Quick test_protocol_parse;
        Alcotest.test_case "response round-trip" `Quick test_protocol_roundtrip;
      ] );
    ( "plan cache",
      [
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "epoch invalidation" `Quick
          test_cache_epoch_invalidation;
        Alcotest.test_case "k-interval flip across k*" `Slow
          test_k_interval_flip;
      ] );
    ( "query service",
      [
        Alcotest.test_case "prepared statement flow" `Quick
          test_service_prepared_flow;
        Alcotest.test_case "DML invalidates cached plans" `Quick
          test_service_dml_invalidation;
        Alcotest.test_case "parallel dop: shared pool, serial answers" `Quick
          test_service_parallel_dop;
        Alcotest.test_case "deadline: expired statements time out" `Quick
          test_service_timeout;
        Alcotest.test_case "admission control sheds on full queue" `Slow
          test_service_queue_full;
        Alcotest.test_case "stats and explain surfaces" `Quick
          test_service_stats_fields;
      ] );
    ( "cursors",
      [
        Alcotest.test_case "FETCH/CLOSE parse" `Quick test_protocol_fetch_parse;
        Alcotest.test_case "bind validation cannot poison the cache" `Quick
          test_bind_validation_no_cache_poison;
        Alcotest.test_case "EXECUTE + FETCH prefixes = one-shot" `Quick
          test_cursor_fetch_prefix;
        Alcotest.test_case "stats-epoch bump stales the cursor" `Quick
          test_cursor_stale_after_dml;
        Alcotest.test_case "per-table epochs isolate unrelated DML" `Quick
          test_per_table_epoch_isolation;
        Alcotest.test_case "RANK probe: parse + order-statistic descent"
          `Quick test_rank_probe;
        Alcotest.test_case "RANK probe: DENSE counts distinct scores" `Quick
          test_dense_rank_probe;
        Alcotest.test_case "ERR replies carry cursor/statement identifiers"
          `Quick test_error_identifiers;
        Alcotest.test_case "deadline mid-FETCH does not wedge the pool" `Slow
          test_cursor_deadline_hammer;
      ] );
    ( "server rankcheck",
      [
        Alcotest.test_case "server-mode differential slice" `Slow
          test_rankcheck_server_slice;
      ] );
  ]
