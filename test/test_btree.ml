(* B+-tree tests: model-based checks against a sorted association list. *)

open Relalg
open Storage

let tu i = Tuple.make [ Value.Int i ]

let vf f = Value.Float f

let fresh ?(fanout = 4) () = Btree.create ~fanout (Io_stats.create ()) ()

let test_empty () =
  let t = fresh () in
  Alcotest.(check int) "length" 0 (Btree.length t);
  Alcotest.(check int) "height" 1 (Btree.height t);
  Alcotest.(check int) "lookup" 0 (List.length (Btree.lookup t (vf 1.0)))

let test_insert_lookup_small () =
  let t = fresh () in
  List.iter (fun i -> Btree.insert t (vf (float_of_int i)) (tu i)) [ 5; 1; 3; 2; 4 ];
  Alcotest.(check int) "length" 5 (Btree.length t);
  List.iter
    (fun i ->
      match Btree.lookup t (vf (float_of_int i)) with
      | [ found ] -> Alcotest.(check bool) "tuple" true (Tuple.equal found (tu i))
      | other -> Alcotest.failf "lookup %d: %d results" i (List.length other))
    [ 1; 2; 3; 4; 5 ]

let test_duplicates () =
  let t = fresh () in
  for i = 0 to 9 do
    Btree.insert t (vf 1.0) (tu i)
  done;
  Btree.insert t (vf 2.0) (tu 100);
  Alcotest.(check int) "dups found" 10 (List.length (Btree.lookup t (vf 1.0)));
  Alcotest.(check int) "other key" 1 (List.length (Btree.lookup t (vf 2.0)))

let test_scan_desc_order () =
  let t = fresh () in
  let prng = Rkutil.Prng.create 11 in
  for i = 0 to 199 do
    Btree.insert t (vf (Rkutil.Prng.uniform prng)) (tu i)
  done;
  let next = Btree.scan_desc t in
  let rec collect acc =
    match next () with Some _ as x -> collect (x :: acc) | None -> List.rev acc
  in
  let n = List.length (collect []) in
  Alcotest.(check int) "all entries" 200 n

let test_scan_from () =
  let t = fresh () in
  for i = 0 to 9 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  let next = Btree.scan_asc ~from:(vf 6.5) t in
  let first = next () in
  (match first with
  | Some found -> Alcotest.(check bool) "starts at 7" true (Tuple.equal found (tu 7))
  | None -> Alcotest.fail "empty scan");
  let next = Btree.scan_desc ~from:(vf 6.5) t in
  match next () with
  | Some found -> Alcotest.(check bool) "desc starts at 6" true (Tuple.equal found (tu 6))
  | None -> Alcotest.fail "empty desc scan"

let test_range () =
  let t = fresh () in
  for i = 0 to 19 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  let r = Btree.range t ~lo:(Some (vf 5.0)) ~hi:(Some (vf 9.0)) in
  Alcotest.(check int) "5 entries" 5 (List.length r);
  let r = Btree.range t ~lo:None ~hi:(Some (vf 3.0)) in
  Alcotest.(check int) "4 entries" 4 (List.length r);
  let r = Btree.range t ~lo:(Some (vf 18.0)) ~hi:None in
  Alcotest.(check int) "2 entries" 2 (List.length r)

(* Exhaustive boundary semantics: over a known key set (with duplicates,
   small fanout so keys sit at first/last slots of split leaves), every
   (lo, hi) pair drawn from the keys and the midpoints between them, under
   all four inclusive/exclusive endpoint combinations, must agree with a
   naive filter over the sorted entry list. *)
let test_range_boundary_semantics () =
  (* Duplicate-heavy key set; fanout 4 forces several leaf splits so bound
     keys land on leaf edges. *)
  let keys = [ 0.0; 0.0; 1.0; 2.0; 2.0; 2.0; 3.0; 5.0; 5.0; 8.0; 8.0; 9.0 ] in
  let t = fresh ~fanout:4 () in
  List.iteri (fun i k -> Btree.insert t (vf k) (tu i)) keys;
  Alcotest.(check bool) "tree split" true (Btree.height t > 1);
  let bounds =
    (* Every stored key, midpoints, and values outside the domain. *)
    [ None ]
    @ List.map
        (fun k -> Some k)
        [ -1.0; 0.0; 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 4.0; 5.0; 6.0; 8.0; 8.5; 9.0; 10.0 ]
  in
  let naive ~lo ~hi ~lo_incl ~hi_incl =
    List.filter
      (fun k ->
        (match lo with
        | None -> true
        | Some l -> if lo_incl then k >= l else k > l)
        &&
        match hi with
        | None -> true
        | Some h -> if hi_incl then k <= h else k < h)
      keys
  in
  List.iter
    (fun lo ->
      List.iter
        (fun hi ->
          List.iter
            (fun (lo_incl, hi_incl) ->
              let got =
                Btree.range ~lo_incl ~hi_incl t
                  ~lo:(Option.map vf lo)
                  ~hi:(Option.map vf hi)
                |> List.map (fun tuple -> List.nth keys (Value.to_int (Tuple.get tuple 0)))
              in
              let want = naive ~lo ~hi ~lo_incl ~hi_incl in
              let show = function None -> "-inf" | Some f -> string_of_float f in
              Alcotest.(check (list (float 0.0)))
                (Printf.sprintf "range %s%s, %s%s"
                   (if lo_incl then "[" else "(")
                   (show lo) (show hi)
                   (if hi_incl then "]" else ")"))
                want got)
            [ (true, true); (true, false); (false, true); (false, false) ])
        bounds)
    bounds

let test_delete () =
  let t = fresh () in
  for i = 0 to 9 do
    Btree.insert t (vf (float_of_int (i mod 3))) (tu i)
  done;
  Alcotest.(check bool) "delete hit" true (Btree.delete t (vf 0.0) (tu 3));
  Alcotest.(check bool) "delete miss" false (Btree.delete t (vf 0.0) (tu 3));
  Alcotest.(check int) "length" 9 (Btree.length t);
  Alcotest.(check int) "remaining dups" 3 (List.length (Btree.lookup t (vf 0.0)))

let test_bulk_load_matches_inserts () =
  let prng = Rkutil.Prng.create 21 in
  let entries =
    List.init 500 (fun i -> (vf (Rkutil.Prng.uniform prng), tu i))
  in
  let bulk = Btree.bulk_load (Io_stats.create ()) entries in
  let incremental = fresh ~fanout:64 () in
  List.iter (fun (k, v) -> Btree.insert incremental k v) entries;
  Alcotest.(check int) "same length" (Btree.length incremental) (Btree.length bulk);
  let keys t = List.map fst (Btree.to_list_asc t) in
  Alcotest.(check bool) "same key order" true
    (List.equal Value.equal (keys bulk) (keys incremental));
  (match Btree.check_invariants bulk with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bulk invariants: %s" e);
  match Btree.check_invariants incremental with
  | Ok () -> ()
  | Error e -> Alcotest.failf "incremental invariants: %s" e

let test_height_grows () =
  let t = fresh ~fanout:4 () in
  for i = 0 to 99 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  Alcotest.(check bool) "height > 1" true (Btree.height t > 1);
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_io_charged () =
  let io = Io_stats.create () in
  let t = Btree.create ~fanout:4 io () in
  for i = 0 to 99 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  Io_stats.reset io;
  ignore (Btree.lookup t (vf 50.0));
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "one probe" 1 snap.Io_stats.index_probes;
  Alcotest.(check bool) "nodes visited >= height" true
    (snap.Io_stats.index_node_reads >= Btree.height t)

(* Model-based property: a random sequence of inserts and deletes agrees
   with a sorted association list. *)
let prop_model_based =
  let op_gen =
    QCheck.Gen.(
      list_size (int_range 0 120)
        (pair (int_range 0 15) (int_range 0 999)))
  in
  let arb =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) ops))
      op_gen
  in
  QCheck.Test.make ~name:"btree: matches sorted-list model" ~count:150 arb
    (fun ops ->
      let t = fresh ~fanout:4 () in
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          Btree.insert t (vf (float_of_int k)) (tu v);
          model := (float_of_int k, v) :: !model)
        ops;
      let model_sorted =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev !model)
      in
      let tree_list =
        List.map
          (fun (k, tuple) -> (Value.to_float k, Value.to_int (Tuple.get tuple 0)))
          (Btree.to_list_asc t)
      in
      let keys_match =
        List.equal
          (fun (a, _) (b, _) -> Float.equal a b)
          model_sorted tree_list
      in
      let invariants = Btree.check_invariants t = Ok () in
      let lookups_ok =
        List.for_all
          (fun k ->
            let expected =
              List.filter (fun (k', _) -> Float.equal (float_of_int k) k') model_sorted
              |> List.length
            in
            List.length (Btree.lookup t (vf (float_of_int k))) = expected)
          (List.sort_uniq compare (List.map fst ops))
      in
      keys_match && invariants && lookups_ok)

let prop_scan_desc_is_reverse_asc =
  QCheck.Test.make ~name:"btree: desc scan = reverse asc scan" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 200) (QCheck.int_range 0 50))
    (fun keys ->
      let t = fresh ~fanout:5 () in
      List.iteri (fun i k -> Btree.insert t (vf (float_of_int k)) (tu i)) keys;
      let drain next =
        let rec go acc =
          match next () with
          | Some tuple -> go (Value.to_int (Tuple.get tuple 0) :: acc)
          | None -> List.rev acc
        in
        go []
      in
      let asc = drain (Btree.scan_asc t) in
      let desc = drain (Btree.scan_desc t) in
      (* Key order must reverse; among duplicates order may differ, so
         compare keys, not payloads. *)
      let key_of i = List.nth keys i in
      List.map key_of asc = List.rev (List.map key_of desc))

let suites =
  [
    ( "storage.btree",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "insert/lookup" `Quick test_insert_lookup_small;
        Alcotest.test_case "duplicates" `Quick test_duplicates;
        Alcotest.test_case "scan desc" `Quick test_scan_desc_order;
        Alcotest.test_case "scan from" `Quick test_scan_from;
        Alcotest.test_case "range" `Quick test_range;
        Alcotest.test_case "range boundary semantics" `Quick
          test_range_boundary_semantics;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "bulk load" `Quick test_bulk_load_matches_inserts;
        Alcotest.test_case "height grows" `Quick test_height_grows;
        Alcotest.test_case "io charged" `Quick test_io_charged;
        QCheck_alcotest.to_alcotest prop_model_based;
        QCheck_alcotest.to_alcotest prop_scan_desc_is_reverse_asc;
      ] );
  ]
