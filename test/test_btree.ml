(* B+-tree tests: model-based checks against a sorted association list. *)

open Relalg
open Storage

let tu i = Tuple.make [ Value.Int i ]

let vf f = Value.Float f

let fresh ?(fanout = 4) () = Btree.create ~fanout (Io_stats.create ()) ()

let test_empty () =
  let t = fresh () in
  Alcotest.(check int) "length" 0 (Btree.length t);
  Alcotest.(check int) "height" 1 (Btree.height t);
  Alcotest.(check int) "lookup" 0 (List.length (Btree.lookup t (vf 1.0)))

let test_insert_lookup_small () =
  let t = fresh () in
  List.iter (fun i -> Btree.insert t (vf (float_of_int i)) (tu i)) [ 5; 1; 3; 2; 4 ];
  Alcotest.(check int) "length" 5 (Btree.length t);
  List.iter
    (fun i ->
      match Btree.lookup t (vf (float_of_int i)) with
      | [ found ] -> Alcotest.(check bool) "tuple" true (Tuple.equal found (tu i))
      | other -> Alcotest.failf "lookup %d: %d results" i (List.length other))
    [ 1; 2; 3; 4; 5 ]

let test_duplicates () =
  let t = fresh () in
  for i = 0 to 9 do
    Btree.insert t (vf 1.0) (tu i)
  done;
  Btree.insert t (vf 2.0) (tu 100);
  Alcotest.(check int) "dups found" 10 (List.length (Btree.lookup t (vf 1.0)));
  Alcotest.(check int) "other key" 1 (List.length (Btree.lookup t (vf 2.0)))

let test_scan_desc_order () =
  let t = fresh () in
  let prng = Rkutil.Prng.create 11 in
  for i = 0 to 199 do
    Btree.insert t (vf (Rkutil.Prng.uniform prng)) (tu i)
  done;
  let next = Btree.scan_desc t in
  let rec collect acc =
    match next () with Some _ as x -> collect (x :: acc) | None -> List.rev acc
  in
  let n = List.length (collect []) in
  Alcotest.(check int) "all entries" 200 n

let test_scan_from () =
  let t = fresh () in
  for i = 0 to 9 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  let next = Btree.scan_asc ~from:(vf 6.5) t in
  let first = next () in
  (match first with
  | Some found -> Alcotest.(check bool) "starts at 7" true (Tuple.equal found (tu 7))
  | None -> Alcotest.fail "empty scan");
  let next = Btree.scan_desc ~from:(vf 6.5) t in
  match next () with
  | Some found -> Alcotest.(check bool) "desc starts at 6" true (Tuple.equal found (tu 6))
  | None -> Alcotest.fail "empty desc scan"

let test_range () =
  let t = fresh () in
  for i = 0 to 19 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  let r = Btree.range t ~lo:(Some (vf 5.0)) ~hi:(Some (vf 9.0)) in
  Alcotest.(check int) "5 entries" 5 (List.length r);
  let r = Btree.range t ~lo:None ~hi:(Some (vf 3.0)) in
  Alcotest.(check int) "4 entries" 4 (List.length r);
  let r = Btree.range t ~lo:(Some (vf 18.0)) ~hi:None in
  Alcotest.(check int) "2 entries" 2 (List.length r)

(* Exhaustive boundary semantics: over a known key set (with duplicates,
   small fanout so keys sit at first/last slots of split leaves), every
   (lo, hi) pair drawn from the keys and the midpoints between them, under
   all four inclusive/exclusive endpoint combinations, must agree with a
   naive filter over the sorted entry list. *)
let test_range_boundary_semantics () =
  (* Duplicate-heavy key set; fanout 4 forces several leaf splits so bound
     keys land on leaf edges. *)
  let keys = [ 0.0; 0.0; 1.0; 2.0; 2.0; 2.0; 3.0; 5.0; 5.0; 8.0; 8.0; 9.0 ] in
  let t = fresh ~fanout:4 () in
  List.iteri (fun i k -> Btree.insert t (vf k) (tu i)) keys;
  Alcotest.(check bool) "tree split" true (Btree.height t > 1);
  let bounds =
    (* Every stored key, midpoints, and values outside the domain. *)
    [ None ]
    @ List.map
        (fun k -> Some k)
        [ -1.0; 0.0; 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 4.0; 5.0; 6.0; 8.0; 8.5; 9.0; 10.0 ]
  in
  let naive ~lo ~hi ~lo_incl ~hi_incl =
    List.filter
      (fun k ->
        (match lo with
        | None -> true
        | Some l -> if lo_incl then k >= l else k > l)
        &&
        match hi with
        | None -> true
        | Some h -> if hi_incl then k <= h else k < h)
      keys
  in
  List.iter
    (fun lo ->
      List.iter
        (fun hi ->
          List.iter
            (fun (lo_incl, hi_incl) ->
              let got =
                Btree.range ~lo_incl ~hi_incl t
                  ~lo:(Option.map vf lo)
                  ~hi:(Option.map vf hi)
                |> List.map (fun tuple -> List.nth keys (Value.to_int (Tuple.get tuple 0)))
              in
              let want = naive ~lo ~hi ~lo_incl ~hi_incl in
              let show = function None -> "-inf" | Some f -> string_of_float f in
              Alcotest.(check (list (float 0.0)))
                (Printf.sprintf "range %s%s, %s%s"
                   (if lo_incl then "[" else "(")
                   (show lo) (show hi)
                   (if hi_incl then "]" else ")"))
                want got)
            [ (true, true); (true, false); (false, true); (false, false) ])
        bounds)
    bounds

let test_delete () =
  let t = fresh () in
  for i = 0 to 9 do
    Btree.insert t (vf (float_of_int (i mod 3))) (tu i)
  done;
  Alcotest.(check bool) "delete hit" true (Btree.delete t (vf 0.0) (tu 3));
  Alcotest.(check bool) "delete miss" false (Btree.delete t (vf 0.0) (tu 3));
  Alcotest.(check int) "length" 9 (Btree.length t);
  Alcotest.(check int) "remaining dups" 3 (List.length (Btree.lookup t (vf 0.0)))

let test_bulk_load_matches_inserts () =
  let prng = Rkutil.Prng.create 21 in
  let entries =
    List.init 500 (fun i -> (vf (Rkutil.Prng.uniform prng), tu i))
  in
  let bulk = Btree.bulk_load (Io_stats.create ()) entries in
  let incremental = fresh ~fanout:64 () in
  List.iter (fun (k, v) -> Btree.insert incremental k v) entries;
  Alcotest.(check int) "same length" (Btree.length incremental) (Btree.length bulk);
  let keys t = List.map fst (Btree.to_list_asc t) in
  Alcotest.(check bool) "same key order" true
    (List.equal Value.equal (keys bulk) (keys incremental));
  (match Btree.check_invariants bulk with
  | Ok () -> ()
  | Error e -> Alcotest.failf "bulk invariants: %s" e);
  match Btree.check_invariants incremental with
  | Ok () -> ()
  | Error e -> Alcotest.failf "incremental invariants: %s" e

let test_height_grows () =
  let t = fresh ~fanout:4 () in
  for i = 0 to 99 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  Alcotest.(check bool) "height > 1" true (Btree.height t > 1);
  match Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_io_charged () =
  let io = Io_stats.create () in
  let t = Btree.create ~fanout:4 io () in
  for i = 0 to 99 do
    Btree.insert t (vf (float_of_int i)) (tu i)
  done;
  Io_stats.reset io;
  ignore (Btree.lookup t (vf 50.0));
  let snap = Io_stats.snapshot io in
  Alcotest.(check int) "one probe" 1 snap.Io_stats.index_probes;
  Alcotest.(check bool) "nodes visited >= height" true
    (snap.Io_stats.index_node_reads >= Btree.height t)

(* Model-based property: a random sequence of inserts and deletes agrees
   with a sorted association list. *)
let prop_model_based =
  let op_gen =
    QCheck.Gen.(
      list_size (int_range 0 120)
        (pair (int_range 0 15) (int_range 0 999)))
  in
  let arb =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) ops))
      op_gen
  in
  QCheck.Test.make ~name:"btree: matches sorted-list model" ~count:150 arb
    (fun ops ->
      let t = fresh ~fanout:4 () in
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          Btree.insert t (vf (float_of_int k)) (tu v);
          model := (float_of_int k, v) :: !model)
        ops;
      let model_sorted =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev !model)
      in
      let tree_list =
        List.map
          (fun (k, tuple) -> (Value.to_float k, Value.to_int (Tuple.get tuple 0)))
          (Btree.to_list_asc t)
      in
      let keys_match =
        List.equal
          (fun (a, _) (b, _) -> Float.equal a b)
          model_sorted tree_list
      in
      let invariants = Btree.check_invariants t = Ok () in
      let lookups_ok =
        List.for_all
          (fun k ->
            let expected =
              List.filter (fun (k', _) -> Float.equal (float_of_int k) k') model_sorted
              |> List.length
            in
            List.length (Btree.lookup t (vf (float_of_int k))) = expected)
          (List.sort_uniq compare (List.map fst ops))
      in
      keys_match && invariants && lookups_ok)

(* Regression for the empty-leaf unlink bug: a delete-heavy workload must
   leave no dead leaves on the sibling chain, so the node visits charged by
   a full scan are exactly the descent plus one hop per live leaf. Before
   the fix, emptied leaves stayed linked and a scan paid a visit for every
   leaf that had ever existed. *)
let prop_delete_scan_visits =
  QCheck.Test.make ~name:"btree: scan visits match live leaves after deletes"
    ~count:80
    QCheck.(pair (int_range 0 1_000_000) (int_range 20 250))
    (fun (seed, n) ->
      let io = Io_stats.create () in
      let t = Btree.create ~fanout:4 io () in
      let prng = Rkutil.Prng.create seed in
      let entries =
        Array.init n (fun i -> (float_of_int (Rkutil.Prng.int prng 40), i))
      in
      Array.iter (fun (k, i) -> Btree.insert t (vf k) (tu i)) entries;
      (* Delete whole key ranges so entire leaves empty out. *)
      Array.iter
        (fun (k, i) ->
          if k < 34.0 then assert (Btree.delete t (vf k) (tu i)))
        entries;
      (match Btree.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      Io_stats.reset io;
      let next = Btree.scan_asc t in
      let rec drain acc =
        match next () with Some _ -> drain (acc + 1) | None -> acc
      in
      let drained = drain 0 in
      let snap = Io_stats.snapshot io in
      drained = Btree.length t
      && snap.Io_stats.index_node_reads
         = Btree.height t + (Btree.n_leaves t - 1)
      && snap.Io_stats.tuples_read = drained)

let prop_scan_desc_is_reverse_asc =
  QCheck.Test.make ~name:"btree: desc scan = reverse asc scan" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 200) (QCheck.int_range 0 50))
    (fun keys ->
      let t = fresh ~fanout:5 () in
      List.iteri (fun i k -> Btree.insert t (vf (float_of_int k)) (tu i)) keys;
      let drain next =
        let rec go acc =
          match next () with
          | Some tuple -> go (Value.to_int (Tuple.get tuple 0) :: acc)
          | None -> List.rev acc
        in
        go []
      in
      let asc = drain (Btree.scan_asc t) in
      let desc = drain (Btree.scan_desc t) in
      (* Key order must reverse; among duplicates order may differ, so
         compare keys, not payloads. *)
      let key_of i = List.nth keys i in
      List.map key_of asc = List.rev (List.map key_of desc))

(* --- Rank semantics over the order-statistic tree ---------------------

   The single place duplicate-score and NaN semantics are pinned down:
   ties share the tie block's minimum rank (competition ranking), windows
   order tie-block members with the canonical comparator, and NaN scores
   are never ranked. *)

let id_of tuple = Value.to_int (Tuple.get tuple 0)
let id_cmp t1 t2 = compare (id_of t1) (id_of t2)

let rank_tree scores =
  let t = fresh ~fanout:4 () in
  List.iteri (fun i s -> Btree.insert t (vf s) (tu i)) scores;
  t

let window t ~lo ~hi =
  Rank_index.select_rank t ~lo ~hi ~resolve:Fun.id ~tie_cmp:id_cmp
  |> List.map (fun (tuple, _) -> id_of tuple)

let test_rank_of_value_ties () =
  (* ids 0,1,2 tie at 0.9; id 3 at 0.7; ids 4,5 tie at 0.5; id 6 at 0.3. *)
  let t = rank_tree [ 0.9; 0.9; 0.9; 0.7; 0.5; 0.5; 0.3 ] in
  Alcotest.(check int) "total" 7 (Rank_index.total t);
  let rank v = Rank_index.rank_of_value t v in
  Alcotest.(check (option int)) "tie block min rank" (Some 1) (rank 0.9);
  Alcotest.(check (option int)) "after a 3-way tie" (Some 4) (rank 0.7);
  Alcotest.(check (option int)) "second tie block" (Some 5) (rank 0.5);
  Alcotest.(check (option int)) "worst" (Some 7) (rank 0.3);
  Alcotest.(check (option int)) "would-be rank of absent value" (Some 8)
    (rank 0.1);
  Alcotest.(check (option int)) "would-be best" (Some 1) (rank 2.0);
  Alcotest.(check (option int)) "NaN never ranked" None (rank Float.nan)

let test_rank_nan_excluded () =
  let t = rank_tree [ Float.nan; 0.8; Float.nan; 0.6 ] in
  Alcotest.(check int) "nan_count" 2 (Rank_index.nan_count t);
  Alcotest.(check int) "total excludes NaN" 2 (Rank_index.total t);
  Alcotest.(check (option int)) "probe below all reals" (Some 3)
    (Rank_index.rank_of_value t 0.1);
  let w = Rank_index.select_rank t ~lo:1 ~hi:10 ~resolve:Fun.id ~tie_cmp:id_cmp in
  Alcotest.(check (list int)) "window skips NaN entries" [ 1; 3 ]
    (List.map (fun (tuple, _) -> id_of tuple) w);
  List.iter
    (fun (_, s) ->
      Alcotest.(check bool) "window scores are real" false (Float.is_nan s))
    w

let test_select_rank_canonical_ties () =
  (* Insertion order scrambled; descending canonical order is
     0.9:{1,5}  0.7:{3}  0.5:{0,2,4}. *)
  let t = rank_tree [ 0.5; 0.9; 0.5; 0.7; 0.5; 0.9 ] in
  Alcotest.(check (list int)) "full window in canonical tie order"
    [ 1; 5; 3; 0; 2; 4 ] (window t ~lo:1 ~hi:6);
  Alcotest.(check (list int)) "window splitting a tie block is deterministic"
    [ 0; 2 ] (window t ~lo:4 ~hi:5);
  Alcotest.(check (list int)) "bounds clamp to the live entries"
    [ 1; 5; 3; 0; 2; 4 ] (window t ~lo:0 ~hi:100);
  Alcotest.(check (list int)) "inverted window" [] (window t ~lo:5 ~hi:4);
  Alcotest.(check (list int)) "window past the end" [] (window t ~lo:7 ~hi:9)

let prop_select_rank_matches_oracle =
  QCheck.Test.make
    ~name:"rank_index: window = sorted-slice oracle" ~count:120
    QCheck.(
      triple (int_range 0 10_000) (int_range 0 60)
        (pair (int_range 1 20) (int_range 0 10)))
    (fun (seed, n, (lo, span)) ->
      let prng = Rkutil.Prng.create seed in
      (* Quantized scores force plenty of tie blocks. *)
      let scores =
        List.init n (fun _ -> float_of_int (Rkutil.Prng.int prng 8) /. 4.0)
      in
      let t = rank_tree scores in
      let hi = lo + span in
      let want =
        List.mapi (fun i s -> (i, s)) scores
        |> List.sort (fun (i1, s1) (i2, s2) ->
               match Float.compare s2 s1 with 0 -> compare i1 i2 | c -> c)
        |> List.filteri (fun i _ -> i >= lo - 1 && i <= hi - 1)
        |> List.map fst
      in
      window t ~lo ~hi = want
      && Rank_index.rank_of_value t 0.5
         = Some (1 + List.length (List.filter (fun s -> s > 0.5) scores)))

let suites =
  [
    ( "storage.btree",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "insert/lookup" `Quick test_insert_lookup_small;
        Alcotest.test_case "duplicates" `Quick test_duplicates;
        Alcotest.test_case "scan desc" `Quick test_scan_desc_order;
        Alcotest.test_case "scan from" `Quick test_scan_from;
        Alcotest.test_case "range" `Quick test_range;
        Alcotest.test_case "range boundary semantics" `Quick
          test_range_boundary_semantics;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "bulk load" `Quick test_bulk_load_matches_inserts;
        Alcotest.test_case "height grows" `Quick test_height_grows;
        Alcotest.test_case "io charged" `Quick test_io_charged;
        QCheck_alcotest.to_alcotest prop_model_based;
        QCheck_alcotest.to_alcotest prop_scan_desc_is_reverse_asc;
        QCheck_alcotest.to_alcotest prop_delete_scan_visits;
      ] );
    ( "storage.rank_index",
      [
        Alcotest.test_case "rank_of_value on tie blocks" `Quick
          test_rank_of_value_ties;
        Alcotest.test_case "NaN excluded from ranks" `Quick
          test_rank_nan_excluded;
        Alcotest.test_case "canonical tie order in windows" `Quick
          test_select_rank_canonical_ties;
        QCheck_alcotest.to_alcotest prop_select_rank_matches_oracle;
      ] );
  ]
