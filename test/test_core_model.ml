(* Tests for the estimation machinery: score distributions (Eq. 1), the
   depth model (Theorems 1-2, Eqs. 2-5), cost model and k propagation. *)

open Relalg
open Core

let test_score_dist_eq1_uniform_case () =
  (* j = 1: score_i = n - i*n/m, the familiar uniform order statistic. *)
  let n = 100.0 and m = 1000.0 in
  List.iter
    (fun i ->
      let expected = n -. (i *. n /. m) in
      Test_util.check_floats_close ~eps:1e-9
        (Printf.sprintf "i=%g" i)
        expected
        (Score_dist.expected_score_at ~j:1 ~n ~m ~i))
    [ 1.0; 10.0; 500.0 ]

let test_score_dist_eq1_triangular () =
  (* j = 2, i <= m/2 region: score_i = 2n - sqrt(2 i n^2 / m). *)
  let n = 50.0 and m = 400.0 in
  let i = 8.0 in
  let expected = (2.0 *. n) -. sqrt (2.0 *. i *. n *. n /. m) in
  Test_util.check_floats_close ~eps:1e-9 "triangular top"
    expected
    (Score_dist.expected_score_at ~j:2 ~n ~m ~i)

let test_score_dist_monotone_in_i () =
  let n = 10.0 and m = 100.0 in
  let prev = ref infinity in
  for i = 1 to 50 do
    let s = Score_dist.expected_score_at ~j:3 ~n ~m ~i:(float_of_int i) in
    if s > !prev then Alcotest.failf "score increased at i=%d" i;
    prev := s
  done

let test_score_dist_pdf_u2 () =
  let n = 1.0 in
  Test_util.check_floats_close ~eps:1e-12 "peak" 1.0 (Score_dist.pdf_u2 ~n 1.0);
  Test_util.check_floats_close ~eps:1e-12 "zero at 0" 0.0 (Score_dist.pdf_u2 ~n 0.0);
  Test_util.check_floats_close ~eps:1e-12 "zero at 2n" 0.0 (Score_dist.pdf_u2 ~n 2.0);
  Alcotest.(check (float 0.0)) "outside" 0.0 (Score_dist.pdf_u2 ~n 3.0);
  (* Integrates to ~1. *)
  let steps = 10_000 in
  let dx = 2.0 /. float_of_int steps in
  let integral = ref 0.0 in
  for i = 0 to steps - 1 do
    integral := !integral +. (Score_dist.pdf_u2 ~n ((float_of_int i +. 0.5) *. dx) *. dx)
  done;
  Test_util.check_floats_close ~eps:1e-4 "integral" 1.0 !integral

let test_score_dist_validation () =
  Alcotest.check_raises "j=0" (Invalid_argument "Score_dist.expected_score_at: j < 1")
    (fun () -> ignore (Score_dist.expected_score_at ~j:0 ~n:1.0 ~m:1.0 ~i:1.0))

(* --- Depth model --- *)

let test_any_k_satisfies_theorem1 () =
  (* Theorem 1: s * cL * cR >= k. *)
  List.iter
    (fun (k, s, x, y) ->
      let c_l, c_r = Depth_model.any_k_depths ~k ~s ~x ~y in
      Alcotest.(check bool)
        (Printf.sprintf "k=%g s=%g" k s)
        true
        (s *. c_l *. c_r >= k -. 1e-6))
    [ (1.0, 0.5, 1.0, 1.0); (10.0, 0.01, 1.0, 2.0); (100.0, 0.001, 0.3, 0.7) ]

let test_any_k_minimizes_delta () =
  (* The chosen (cL, cR) minimise delta = x cL + y cR subject to s cL cR = k:
     perturbing along the constraint must not decrease delta. *)
  let k = 50.0 and s = 0.02 and x = 0.4 and y = 1.3 in
  let c_l, c_r = Depth_model.any_k_depths ~k ~s ~x ~y in
  let delta cl = (x *. cl) +. (y *. (k /. (s *. cl))) in
  let d0 = delta c_l in
  Test_util.check_floats_close ~eps:1e-9 "on constraint" c_r (k /. (s *. c_l));
  List.iter
    (fun f ->
      Alcotest.(check bool) "perturbation not better" true (delta (c_l *. f) >= d0 -. 1e-9))
    [ 0.5; 0.9; 1.1; 2.0 ]

let test_top_k_slab_depths () =
  (* Equal slabs: dL = dR = 2 sqrt(k/s). *)
  let k = 25.0 and s = 0.01 in
  let d = Depth_model.top_k_depths_slabs ~k ~s ~x:1.0 ~y:1.0 in
  let expected = 2.0 *. sqrt (k /. s) in
  Test_util.check_floats_close ~eps:1e-9 "dL" expected d.Depth_model.d_left;
  Test_util.check_floats_close ~eps:1e-9 "dR" expected d.Depth_model.d_right;
  Test_util.check_floats_close ~eps:1e-9 "uniform_depth agrees" expected
    (Depth_model.uniform_depth ~k ~s)

let test_top_k_dominates_any_k () =
  let k = 10.0 and s = 0.05 and x = 0.8 and y = 1.7 in
  let c_l, c_r = Depth_model.any_k_depths ~k ~s ~x ~y in
  let d = Depth_model.top_k_depths_slabs ~k ~s ~x ~y in
  Alcotest.(check bool) "dL >= cL" true (d.Depth_model.d_left >= c_l);
  Alcotest.(check bool) "dR >= cR" true (d.Depth_model.d_right >= c_r)

let params ?(k = 10.0) ?(s = 0.01) ?(n = 1000.0) ?(l = 1) ?(r = 1) () =
  {
    Depth_model.k;
    s;
    n;
    left = { Depth_model.fan = l; card = n ** float_of_int l };
    right = { Depth_model.fan = r; card = n ** float_of_int r };
  }

let test_worst_case_reduces_to_uniform () =
  (* l = r = 1 must give 2 sqrt(k/s) exactly (Eqs. 2-5 specialised). *)
  let p = params ~k:40.0 ~s:0.004 () in
  let d = Depth_model.worst_case_depths p in
  let expected = Depth_model.uniform_depth ~k:40.0 ~s:0.004 in
  Test_util.check_floats_close ~eps:1e-9 "dL" expected d.Depth_model.d_left;
  Test_util.check_floats_close ~eps:1e-9 "dR" expected d.Depth_model.d_right

let test_average_case_reduces_to_sqrt2ks () =
  (* l = r = 1 average case: sqrt(2k/s). *)
  let p = params ~k:40.0 ~s:0.004 () in
  let d = Depth_model.average_case_depths p in
  let expected = sqrt (2.0 *. 40.0 /. 0.004) in
  Test_util.check_floats_close ~eps:1e-9 "dL" expected d.Depth_model.d_left;
  Test_util.check_floats_close ~eps:1e-9 "dR" expected d.Depth_model.d_right

let test_average_below_worst () =
  List.iter
    (fun (l, r) ->
      let p = params ~k:20.0 ~s:0.01 ~n:500.0 ~l ~r () in
      let w = Depth_model.worst_case_depths p in
      let a = Depth_model.average_case_depths p in
      Alcotest.(check bool)
        (Printf.sprintf "l=%d r=%d dL" l r)
        true
        (a.Depth_model.d_left <= w.Depth_model.d_left +. 1e-6);
      Alcotest.(check bool)
        (Printf.sprintf "l=%d r=%d dR" l r)
        true
        (a.Depth_model.d_right <= w.Depth_model.d_right +. 1e-6))
    [ (1, 1); (2, 1); (1, 2); (2, 2); (3, 2) ]

let test_depths_monotone_in_k () =
  let prev = ref 0.0 in
  List.iter
    (fun k ->
      let d = Depth_model.average_case_depths (params ~k ~l:2 ~r:1 ()) in
      Alcotest.(check bool) "monotone" true (d.Depth_model.d_left >= !prev);
      prev := d.Depth_model.d_left)
    [ 1.0; 5.0; 25.0; 125.0 ]

let test_depths_decrease_with_selectivity () =
  let d1 = Depth_model.average_case_depths (params ~s:0.001 ()) in
  let d2 = Depth_model.average_case_depths (params ~s:0.1 ()) in
  Alcotest.(check bool) "higher selectivity, shallower" true
    (d2.Depth_model.d_left < d1.Depth_model.d_left)

let test_clamping () =
  let p = params ~k:1e9 ~s:1e-9 ~n:100.0 () in
  let d = Depth_model.clamped p (Depth_model.average_case_depths p) in
  Alcotest.(check bool) "clamped to card" true
    (d.Depth_model.d_left <= p.Depth_model.left.Depth_model.card +. 1e-9);
  Alcotest.(check bool) "at least 1" true (d.Depth_model.d_left >= 1.0)

let test_buffer_bound () =
  let d = { Depth_model.d_left = 100.0; d_right = 200.0 } in
  Test_util.check_floats_close ~eps:1e-12 "dL dR s" 200.0
    (Depth_model.buffer_upper_bound d ~s:0.01)

let test_depth_validation () =
  Alcotest.check_raises "bad k" (Invalid_argument "Depth_model: k < 1") (fun () ->
      ignore (Depth_model.uniform_depth ~k:0.5 ~s:0.5));
  Alcotest.check_raises "bad s"
    (Invalid_argument "Depth_model: selectivity outside (0,1]") (fun () ->
      ignore (Depth_model.uniform_depth ~k:5.0 ~s:0.0))

let prop_theorem1_holds =
  QCheck.Test.make ~name:"depth model: s*cL*cR >= k always" ~count:300
    QCheck.(
      triple (float_range 1.0 1000.0) (float_range 0.0001 1.0)
        (pair (float_range 0.01 10.0) (float_range 0.01 10.0)))
    (fun (k, s, (x, y)) ->
      let c_l, c_r = Depth_model.any_k_depths ~k ~s ~x ~y in
      s *. c_l *. c_r >= k -. 1e-6)

let prop_worst_case_symmetry =
  QCheck.Test.make ~name:"depth model: swapping sides swaps depths" ~count:200
    QCheck.(
      triple (float_range 1.0 500.0) (float_range 0.001 0.5)
        (pair (int_range 1 4) (int_range 1 4)))
    (fun (k, s, (l, r)) ->
      let p = params ~k ~s ~n:1000.0 ~l ~r () in
      let q = params ~k ~s ~n:1000.0 ~l:r ~r:l () in
      let dp = Depth_model.worst_case_depths p in
      let dq = Depth_model.worst_case_depths q in
      Test_util.floats_close ~eps:1e-6 dp.Depth_model.d_left dq.Depth_model.d_right
      && Test_util.floats_close ~eps:1e-6 dp.Depth_model.d_right dq.Depth_model.d_left)

(* --- Cost model and propagation --- *)

let setup ?(n = 1000) ?(domain = 100) ?(k = 10) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (100 + i))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B"; "C" ];
  let query =
    Logical.make
      ~relations:
        [
          Logical.base ~score:(Expr.col ~relation:"A" "score") ~weight:0.5 "A";
          Logical.base ~score:(Expr.col ~relation:"B" "score") ~weight:0.5 "B";
        ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ~k ()
  in
  let env = Cost_model.default_env ~k_min:k cat query in
  (cat, query, env)

let scan t = Plan.Table_scan { table = t }

let score_of t = Expr.col ~relation:t "score"

let ab_cond =
  {
    Logical.left_table = "A";
    left_column = "key";
    right_table = "B";
    right_column = "key";
  }

let hrjn_plan () =
  Plan.Join
    {
      algo = Plan.Hrjn;
      cond = ab_cond;
      left = Plan.Sort { order = { Plan.expr = score_of "A"; direction = Interesting_orders.Desc }; input = scan "A" };
      right = Plan.Sort { order = { Plan.expr = score_of "B"; direction = Interesting_orders.Desc }; input = scan "B" };
      left_score = Some (Expr.Mul (Expr.cfloat 0.5, score_of "A"));
      right_score = Some (Expr.Mul (Expr.cfloat 0.5, score_of "B"));
    }

let sort_plan () =
  let join =
    Plan.Join
      {
        algo = Plan.Hash;
        cond = ab_cond;
        left = scan "A";
        right = scan "B";
        left_score = None;
        right_score = None;
      }
  in
  Plan.Sort
    {
      order =
        {
          Plan.expr =
            Expr.weighted_sum [ (0.5, score_of "A"); (0.5, score_of "B") ];
          direction = Interesting_orders.Desc;
        };
      input = join;
    }

let test_join_cardinality_estimate () =
  let _, _, env = setup () in
  let est = Cost_model.estimate env (Plan.Join { algo = Plan.Hash; cond = ab_cond; left = scan "A"; right = scan "B"; left_score = None; right_score = None }) in
  (* n^2 / domain = 1000*1000/100 = 10_000 within histogram-distinct noise. *)
  Alcotest.(check bool) "rows near 10k" true
    (est.Cost_model.rows > 5_000.0 && est.Cost_model.rows < 20_000.0)

let test_scan_cost_scales_with_pages () =
  let cat, query, _ = setup () in
  let env = Cost_model.default_env cat query in
  let est = Cost_model.estimate env (scan "A") in
  let info = Storage.Catalog.table cat "A" in
  let pages = float_of_int info.Storage.Catalog.tb_stats.Storage.Catalog.ts_pages in
  Alcotest.(check bool) "cost >= pages" true (est.Cost_model.total_cost >= pages)

let test_sort_plan_cost_k_independent () =
  let _, _, env = setup () in
  let est = Cost_model.estimate env (sort_plan ()) in
  Alcotest.(check bool) "not k-dependent" false est.Cost_model.k_dependent;
  Test_util.check_floats_close "cost_at 1 = total" est.Cost_model.total_cost
    (est.Cost_model.cost_at 1.0)

let test_rank_plan_cost_grows_with_k () =
  let _, _, env = setup () in
  let est = Cost_model.estimate env (hrjn_plan ()) in
  Alcotest.(check bool) "k-dependent" true est.Cost_model.k_dependent;
  let c1 = est.Cost_model.cost_at 1.0 in
  let c100 = est.Cost_model.cost_at 100.0 in
  let c1000 = est.Cost_model.cost_at 1000.0 in
  Alcotest.(check bool) "increasing" true (c1 <= c100 && c100 <= c1000)

let test_k_star_exists_or_rank_dominates () =
  let _, _, env = setup () in
  (* Use pipelined rank plan (index scans) vs the sort plan. *)
  match Cost_model.k_star env ~rank_plan:(hrjn_plan ()) ~sort_plan:(sort_plan ()) with
  | None ->
      (* Rank plan cheaper everywhere; verify at full output. *)
      let r = Cost_model.estimate env (hrjn_plan ()) in
      let s = Cost_model.estimate env (sort_plan ()) in
      Alcotest.(check bool) "rank cheaper at na" true
        (r.Cost_model.cost_at r.Cost_model.rows <= s.Cost_model.total_cost)
  | Some k_star ->
      let r = Cost_model.estimate env (hrjn_plan ()) in
      let s = Cost_model.estimate env (sort_plan ()) in
      Test_util.check_floats_close ~eps:1e-3 "costs equal at k*"
        (r.Cost_model.cost_at k_star) s.Cost_model.total_cost

let test_filter_selectivity_histogram () =
  let cat, query, _ = setup () in
  let env = Cost_model.default_env cat query in
  let sel =
    Cost_model.filter_selectivity env
      Expr.(Cmp (Le, col ~relation:"A" "score", cfloat 0.25))
  in
  Alcotest.(check bool) "sel near 0.25" true (Float.abs (sel -. 0.25) < 0.08)

let test_propagate_assigns_root_k () =
  let _, _, env = setup ~k:10 () in
  let plan = Plan.Top_k { k = 10; input = hrjn_plan () } in
  let ann = Propagate.run env ~k:10 plan in
  Alcotest.(check (float 0.0)) "root k" 10.0 ann.Propagate.required;
  match Propagate.rank_join_annotations ann with
  | [ (_, required, d) ] ->
      Alcotest.(check (float 0.0)) "rank node k" 10.0 required;
      Alcotest.(check bool) "depths positive" true
        (d.Depth_model.d_left >= 1.0 && d.Depth_model.d_right >= 1.0)
  | other -> Alcotest.failf "expected 1 rank node, got %d" (List.length other)

let test_propagate_hierarchy_k_grows_downward () =
  (* In a two-level rank-join pipeline, the child must produce at least as
     many results as the parent's input depth — Figure 4's 100 -> 580 -> 783
     pattern: the child's required k exceeds the root's. *)
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (200 + i))
           ~name ~n:5000 ~key_domain:500 ()))
    [ "A"; "B"; "C" ];
  let query =
    Logical.make
      ~relations:
        [
          Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
          Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
          Logical.base ~score:(Expr.col ~relation:"C" "score") "C";
        ]
      ~joins:
        [
          Logical.equijoin ("A", "key") ("B", "key");
          Logical.equijoin ("B", "key") ("C", "key");
        ]
      ~k:100 ()
  in
  let env = Cost_model.default_env ~k_min:100 cat query in
  let bc_cond =
    { Logical.left_table = "B"; left_column = "key"; right_table = "C"; right_column = "key" }
  in
  let desc t = Plan.Sort { order = { Plan.expr = score_of t; direction = Interesting_orders.Desc }; input = scan t } in
  let child =
    Plan.Join
      {
        algo = Plan.Hrjn;
        cond = bc_cond;
        left = desc "B";
        right = desc "C";
        left_score = Some (score_of "B");
        right_score = Some (score_of "C");
      }
  in
  let root =
    Plan.Join
      {
        algo = Plan.Hrjn;
        cond = ab_cond;
        left = desc "A";
        right = child;
        left_score = Some (score_of "A");
        right_score = Some (Expr.Add (score_of "B", score_of "C"));
      }
  in
  let ann = Propagate.run env ~k:100 (Plan.Top_k { k = 100; input = root }) in
  match Propagate.rank_join_annotations ann with
  | [ (_, top_k, top_d); (_, child_k, _) ] ->
      Alcotest.(check (float 0.0)) "top k" 100.0 top_k;
      Test_util.check_floats_close ~eps:1e-9 "child k = top right depth"
        top_d.Depth_model.d_right child_k;
      Alcotest.(check bool) "child k > top k" true (child_k > top_k)
  | other -> Alcotest.failf "expected 2 rank nodes, got %d" (List.length other)

let suites =
  [
    ( "core.score_dist",
      [
        Alcotest.test_case "eq1 uniform" `Quick test_score_dist_eq1_uniform_case;
        Alcotest.test_case "eq1 triangular" `Quick test_score_dist_eq1_triangular;
        Alcotest.test_case "monotone in i" `Quick test_score_dist_monotone_in_i;
        Alcotest.test_case "pdf u2" `Quick test_score_dist_pdf_u2;
        Alcotest.test_case "validation" `Quick test_score_dist_validation;
      ] );
    ( "core.depth_model",
      [
        Alcotest.test_case "theorem 1" `Quick test_any_k_satisfies_theorem1;
        Alcotest.test_case "delta minimised" `Quick test_any_k_minimizes_delta;
        Alcotest.test_case "slab top-k depths" `Quick test_top_k_slab_depths;
        Alcotest.test_case "top-k >= any-k" `Quick test_top_k_dominates_any_k;
        Alcotest.test_case "worst case l=r=1" `Quick test_worst_case_reduces_to_uniform;
        Alcotest.test_case "average case l=r=1" `Quick test_average_case_reduces_to_sqrt2ks;
        Alcotest.test_case "average <= worst" `Quick test_average_below_worst;
        Alcotest.test_case "monotone in k" `Quick test_depths_monotone_in_k;
        Alcotest.test_case "selectivity effect" `Quick test_depths_decrease_with_selectivity;
        Alcotest.test_case "clamping" `Quick test_clamping;
        Alcotest.test_case "buffer bound" `Quick test_buffer_bound;
        Alcotest.test_case "validation" `Quick test_depth_validation;
        QCheck_alcotest.to_alcotest prop_theorem1_holds;
        QCheck_alcotest.to_alcotest prop_worst_case_symmetry;
      ] );
    ( "core.cost_model",
      [
        Alcotest.test_case "join cardinality" `Quick test_join_cardinality_estimate;
        Alcotest.test_case "scan pages" `Quick test_scan_cost_scales_with_pages;
        Alcotest.test_case "sort plan k-independent" `Quick test_sort_plan_cost_k_independent;
        Alcotest.test_case "rank plan grows with k" `Quick test_rank_plan_cost_grows_with_k;
        Alcotest.test_case "k* crossover" `Quick test_k_star_exists_or_rank_dominates;
        Alcotest.test_case "filter selectivity" `Quick test_filter_selectivity_histogram;
      ] );
    ( "core.propagate",
      [
        Alcotest.test_case "root k" `Quick test_propagate_assigns_root_k;
        Alcotest.test_case "hierarchy k grows" `Quick test_propagate_hierarchy_k_grows_downward;
      ] );
  ]
