(* Morsel-driven intra-query parallelism: the exchange operators (ordered
   gather, parallel top-N, partitioned hash build), the task pool, plan
   enumeration with exchanges, and — the load-bearing property — exact
   determinism: the same exchange plan returns the identical tuple sequence
   at every degree, with and without a domain pool. *)

open Relalg
module Plan = Core.Plan
module Cost_model = Core.Cost_model
module Parallel = Core.Parallel

let schema =
  Schema.of_columns
    [ Schema.column ~relation:"T" "v" Value.Tint ]

let tuple i = Tuple.make [ Value.Int i ]

let v tu = Value.to_int (Tuple.get tu 0)

(* [n] morsels, morsel [i] holding [width] consecutive ints from [i*width]. *)
let int_source ?(width = 7) n =
  {
    Exec.Exchange.src_schema = schema;
    src_prepare =
      (fun ~cancel:_ ->
        {
          Exec.Exchange.n_morsels = n;
          run_morsel = (fun i -> List.init width (fun j -> tuple ((i * width) + j)));
        });
  }

let with_pool domains f =
  let pool = Rkutil.Task_pool.create ~domains in
  Fun.protect ~finally:(fun () -> Rkutil.Task_pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Task pool *)

let test_pool_runs_jobs () =
  with_pool 3 (fun pool ->
      let counter = Atomic.make 0 in
      for _ = 1 to 100 do
        Alcotest.(check bool) "submitted" true
          (Rkutil.Task_pool.submit pool (fun () -> Atomic.incr counter))
      done;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get counter < 100 && Unix.gettimeofday () < deadline do
        Domain.cpu_relax ()
      done;
      Alcotest.(check int) "all jobs ran" 100 (Atomic.get counter))

let test_pool_shutdown_rejects () =
  let pool = Rkutil.Task_pool.create ~domains:2 in
  Rkutil.Task_pool.shutdown pool;
  Alcotest.(check bool) "submit after shutdown" false
    (Rkutil.Task_pool.submit pool (fun () -> ()))

let test_pool_zero_domains () =
  let pool = Rkutil.Task_pool.create ~domains:0 in
  Alcotest.(check bool) "zero-domain pool rejects" false
    (Rkutil.Task_pool.submit pool (fun () -> ()));
  Rkutil.Task_pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Ordered gather *)

let expected n width = List.init (n * width) Fun.id

let test_gather_preserves_order_no_pool () =
  List.iter
    (fun dop ->
      let out =
        Exec.Operator.to_list (Exec.Exchange.gather ~dop (int_source 11))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "dop=%d" dop)
        (expected 11 7) (List.map v out))
    [ 1; 2; 4; 8 ]

let test_gather_preserves_order_with_pool () =
  with_pool 4 (fun pool ->
      List.iter
        (fun dop ->
          (* Repeat: scheduling varies, output must not. *)
          for _ = 1 to 5 do
            let out =
              Exec.Operator.to_list
                (Exec.Exchange.gather ~pool ~dop (int_source 23))
            in
            Alcotest.(check (list int))
              (Printf.sprintf "dop=%d" dop)
              (expected 23 7) (List.map v out)
          done)
        [ 2; 4; 8 ])

let test_gather_empty_source () =
  with_pool 2 (fun pool ->
      let out =
        Exec.Operator.to_list (Exec.Exchange.gather ~pool ~dop:4 (int_source 0))
      in
      Alcotest.(check int) "no tuples" 0 (List.length out))

let test_gather_early_close_cancels () =
  (* A consumer that stops after a prefix must not hang, and close must
     join in-flight pumps. *)
  with_pool 4 (fun pool ->
      let op = Exec.Exchange.gather ~pool ~dop:4 (int_source 50) in
      let got = Exec.Operator.take op 5 in
      Alcotest.(check (list int)) "prefix" [ 0; 1; 2; 3; 4 ] (List.map v got))

exception Boom

let test_gather_propagates_failure () =
  with_pool 4 (fun pool ->
      let source =
        {
          Exec.Exchange.src_schema = schema;
          src_prepare =
            (fun ~cancel:_ ->
              {
                Exec.Exchange.n_morsels = 10;
                run_morsel =
                  (fun i -> if i = 7 then raise Boom else [ tuple i ]);
              });
        }
      in
      Alcotest.check_raises "worker failure reaches consumer" Boom (fun () ->
          ignore (Exec.Operator.to_list (Exec.Exchange.gather ~pool ~dop:4 source))))

let test_gather_restartable () =
  with_pool 2 (fun pool ->
      let op = Exec.Exchange.gather ~pool ~dop:2 (int_source 6) in
      let a = Exec.Operator.to_list op in
      let b = Exec.Operator.to_list op in
      Alcotest.(check (list int)) "same output twice" (List.map v a) (List.map v b))

(* ------------------------------------------------------------------ *)
(* Parallel top-N *)

let test_top_n_matches_serial () =
  (* Scores deliberately collide so the stable tie-break is exercised. *)
  let n = 13 and width = 7 in
  let score tu = float_of_int (v tu mod 10) in
  let serial =
    let all = List.concat (List.init n (fun i -> List.init width (fun j -> tuple ((i * width) + j)))) in
    let dec = List.map (fun tu -> (tu, score tu)) all in
    let sorted = List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) dec in
    List.filteri (fun i _ -> i < 12) (List.map fst sorted)
  in
  with_pool 4 (fun pool ->
      List.iter
        (fun dop ->
          let out =
            Exec.Operator.to_list
              (Exec.Exchange.top_n ~pool ~dop ~k:12 ~score (int_source ~width n))
          in
          Alcotest.(check (list int))
            (Printf.sprintf "top-12 at dop=%d" dop)
            (List.map v serial) (List.map v out))
        [ 1; 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* Partitioned hash build *)

let test_partitioned_build_matches_serial () =
  let n = 9 and width = 8 in
  let key tu = Value.Int (v tu mod 5) in
  let run i = List.init width (fun j -> tuple ((i * width) + j)) in
  (* Serial reference: chains in arrival order. *)
  let reference k =
    List.filter
      (fun tu -> Value.equal (key tu) k)
      (List.concat (List.init n run))
  in
  with_pool 4 (fun pool ->
      List.iter
        (fun dop ->
          let lookup =
            Exec.Exchange.partitioned_build ~pool ~dop ~partitions:4 ~key ~n
              ~run ~cancel:(Atomic.make false) ()
          in
          for kv = 0 to 5 do
            let k = Value.Int kv in
            Alcotest.(check (list int))
              (Printf.sprintf "key %d at dop=%d" kv dop)
              (List.map v (reference k))
              (List.map v (lookup k))
          done)
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* End-to-end: planning + execution *)

let setup_catalog ?(n = 600) ?(domain = 40) ?(seed = 11) () =
  let cat = Storage.Catalog.create ~pool_frames:64 () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + (31 * i)))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B" ];
  cat

let drain_query k =
  Core.Logical.make
    ~relations:
      [
        Core.Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
        Core.Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
      ]
    ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
    ~k ()

let optimize_parallel ?(dop = 4) cat query =
  let env =
    Cost_model.default_env
      ~k_min:(Option.value ~default:1 query.Core.Logical.k)
      ~dop cat query
  in
  Core.Optimizer.optimize ~env cat query

let rows_of res = res.Core.Executor.rows

let test_optimizer_places_exchange_for_drain () =
  let cat = setup_catalog () in
  (* k = n: the sort plan drains everything; the parallel spine wins. *)
  let planned = optimize_parallel cat (drain_query 600) in
  Alcotest.(check bool) "exchange placed" true
    (Parallel.has_exchange planned.Core.Optimizer.plan);
  Alcotest.(check int) "plan dop" 4 (Plan.dop planned.Core.Optimizer.plan);
  (* Placement is lint-clean. *)
  match
    Lint.Engine.errors
      (Lint.Engine.lint_planned planned)
  with
  | [] -> ()
  | dg :: _ -> Alcotest.failf "lint: %s" (Lint.Diag.to_string dg)

let test_exchange_plan_deterministic_across_degrees () =
  let cat = setup_catalog () in
  let planned = optimize_parallel cat (drain_query 600) in
  Alcotest.(check bool) "exchange placed" true
    (Parallel.has_exchange planned.Core.Optimizer.plan);
  let reference = rows_of (Core.Optimizer.execute ~degree:1 cat planned) in
  with_pool 4 (fun pool ->
      List.iter
        (fun degree ->
          let out =
            rows_of (Core.Optimizer.execute ~pool ~degree cat planned)
          in
          Alcotest.(check bool)
            (Printf.sprintf "identical rows at degree %d" degree)
            true
            (out = reference))
        [ 2; 4; 8 ])

let test_exchange_plan_matches_serial_plan () =
  let cat = setup_catalog () in
  let q = drain_query 600 in
  let par = optimize_parallel cat q in
  let ser = Core.Optimizer.optimize cat q in
  Alcotest.(check bool) "serial plan has no exchange" false
    (Parallel.has_exchange ser.Core.Optimizer.plan);
  let score_multiset res =
    List.sort compare (List.map snd res.Core.Executor.rows)
  in
  with_pool 4 (fun pool ->
      let p = Core.Optimizer.execute ~pool cat par in
      let s = Core.Optimizer.execute cat ser in
      Alcotest.(check int) "same row count" (List.length s.Core.Executor.rows)
        (List.length p.Core.Executor.rows);
      Alcotest.(check (list (float 1e-9))) "same score multiset"
        (score_multiset s) (score_multiset p))

let test_small_k_stays_serial () =
  (* Early-out regime: at small k on a table big enough that draining it
     costs more than a few ranked probes, the rank join wins and the
     chosen plan must not pay exchange startup or lose incremental
     semantics. (On tiny tables a parallel scan+sort can legitimately be
     cheaper — that is the k* regime flip, not a bug.) *)
  let cat = setup_catalog ~n:4000 ~domain:200 () in
  let planned = optimize_parallel cat (drain_query 10) in
  Alcotest.(check bool) "rank-aware plan" true
    (Plan.has_rank_join planned.Core.Optimizer.plan);
  Alcotest.(check bool) "no exchange in early-out plan" false
    (Parallel.has_exchange planned.Core.Optimizer.plan)

let test_analyze_renders_exchange () =
  let cat = setup_catalog ~n:200 () in
  let planned = optimize_parallel cat (drain_query 200) in
  if Parallel.has_exchange planned.Core.Optimizer.plan then
    with_pool 2 (fun pool ->
        let tree, _ = Core.Optimizer.execute_analyzed ~pool cat planned in
        let contains needle s =
          let nl = String.length needle and sl = String.length s in
          let rec at i = i + nl <= sl && (String.sub s i nl = needle || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool) "gather node rendered" true
          (contains "Gather" tree))

(* ------------------------------------------------------------------ *)
(* PL11 mutation tests *)

let lint_plan cat plan = Lint.Engine.errors (Lint.Engine.lint_plan cat plan)

let has_rule rule ds =
  List.exists (fun dg -> String.equal dg.Lint.Diag.rule rule) ds

let test_pl11_mutations () =
  let cat = setup_catalog ~n:60 () in
  let scan = Plan.Table_scan { table = "A" } in
  let good = Plan.Exchange { dop = 4; input = scan } in
  Alcotest.(check bool) "sound exchange is clean" true (lint_plan cat good = []);
  let serial_degree = Plan.Exchange { dop = 1; input = scan } in
  Alcotest.(check bool) "dop=1 flagged" true
    (has_rule "PL11-exchange" (lint_plan cat serial_degree));
  let over_sort =
    Plan.Exchange
      {
        dop = 4;
        input =
          Plan.Sort
            {
              order =
                {
                  Plan.expr = Expr.col ~relation:"A" "score";
                  direction = Core.Interesting_orders.Desc;
                };
              input = scan;
            };
      }
  in
  Alcotest.(check bool) "exchange over sort flagged" true
    (has_rule "PL11-exchange" (lint_plan cat over_sort));
  let nested = Plan.Exchange { dop = 4; input = good } in
  Alcotest.(check bool) "nested exchange flagged" true
    (has_rule "PL11-exchange" (lint_plan cat nested));
  let over_rank =
    Plan.Exchange
      {
        dop = 4;
        input =
          Plan.Join
            {
              algo = Plan.Hrjn;
              cond =
                {
                  Core.Logical.left_table = "A";
                  left_column = "key";
                  right_table = "B";
                  right_column = "key";
                };
              left = scan;
              right = Plan.Table_scan { table = "B" };
              left_score = Some (Expr.col ~relation:"A" "score");
              right_score = Some (Expr.col ~relation:"B" "score");
            };
      }
  in
  Alcotest.(check bool) "exchange over rank join flagged" true
    (has_rule "PL11-exchange" (lint_plan cat over_rank))

let test_pl11_dop_bit () =
  let cat = setup_catalog ~n:60 () in
  let query = drain_query 10 in
  let env = Cost_model.default_env ~dop:4 cat query in
  let sp =
    Core.Memo.subplan_of env
      (Plan.Exchange { dop = 4; input = Plan.Table_scan { table = "A" } })
  in
  Alcotest.(check bool) "stored bit clean" true
    (Lint.Engine.errors (Lint.Engine.lint_subplan env sp) = []);
  let corrupted = { sp with Core.Memo.dop = 7 } in
  Alcotest.(check bool) "corrupted bit flagged" true
    (has_rule "PL11-exchange"
       (Lint.Engine.errors (Lint.Engine.lint_subplan env corrupted)))

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool: runs jobs" `Quick test_pool_runs_jobs;
        Alcotest.test_case "pool: shutdown rejects" `Quick
          test_pool_shutdown_rejects;
        Alcotest.test_case "pool: zero domains" `Quick test_pool_zero_domains;
        Alcotest.test_case "gather: order, no pool" `Quick
          test_gather_preserves_order_no_pool;
        Alcotest.test_case "gather: order, with pool" `Quick
          test_gather_preserves_order_with_pool;
        Alcotest.test_case "gather: empty source" `Quick test_gather_empty_source;
        Alcotest.test_case "gather: early close cancels" `Quick
          test_gather_early_close_cancels;
        Alcotest.test_case "gather: failure propagates" `Quick
          test_gather_propagates_failure;
        Alcotest.test_case "gather: restartable" `Quick test_gather_restartable;
        Alcotest.test_case "top-n: matches serial" `Quick
          test_top_n_matches_serial;
        Alcotest.test_case "build: matches serial" `Quick
          test_partitioned_build_matches_serial;
        Alcotest.test_case "optimizer: drain query gets exchange" `Quick
          test_optimizer_places_exchange_for_drain;
        Alcotest.test_case "e2e: deterministic across degrees" `Quick
          test_exchange_plan_deterministic_across_degrees;
        Alcotest.test_case "e2e: matches serial plan" `Quick
          test_exchange_plan_matches_serial_plan;
        Alcotest.test_case "optimizer: small k stays serial" `Quick
          test_small_k_stays_serial;
        Alcotest.test_case "analyze: renders exchange" `Quick
          test_analyze_renders_exchange;
        Alcotest.test_case "PL11: placement mutations" `Quick test_pl11_mutations;
        Alcotest.test_case "PL11: dop property bit" `Quick test_pl11_dop_bit;
      ] );
  ]
