(* Tests for unclustered indexes and model-guided (ratio) polling — the
   pieces that make the paper's Figure 1 cost tradeoff reproducible. *)

open Relalg
open Storage

let two_col_schema =
  Schema.of_columns
    [ Schema.column "id" Value.Tint; Schema.column "score" Value.Tfloat ]

let setup ?(n = 200) () =
  let cat = Catalog.create ~pool_frames:8 ~tuples_per_page:10 () in
  let prng = Rkutil.Prng.create 17 in
  let tuples =
    List.init n (fun i -> Tuple.make [ Value.Int i; Value.Float (Rkutil.Prng.uniform prng) ])
  in
  ignore (Catalog.create_table cat "T" two_col_schema tuples);
  let ix =
    Catalog.create_index cat ~clustered:false ~name:"T_score" ~table:"T"
      ~key:(Expr.col ~relation:"T" "score") ()
  in
  (cat, ix, tuples)

let test_unclustered_scan_returns_base_tuples () =
  let cat, ix, tuples = setup () in
  let out = Exec.Operator.to_list (Exec.Scan.index_desc cat ix) in
  Alcotest.(check int) "all tuples" (List.length tuples) (List.length out);
  (* Every returned tuple is a real base tuple (2 columns, not a rid pair
     mistaken for data). *)
  List.iter
    (fun tu ->
      Alcotest.(check int) "arity" 2 (Tuple.arity tu);
      Alcotest.(check bool) "is a base tuple" true
        (List.exists (Tuple.equal tu) tuples))
    out

let test_unclustered_scan_sorted () =
  let cat, ix, _ = setup () in
  let out = Exec.Operator.scored_to_list (Exec.Scan.index_desc_scored cat ix) in
  Test_util.check_non_increasing "desc order" (List.map snd out)

let test_unclustered_lookup () =
  let cat, ix, tuples = setup () in
  let target = List.nth tuples 7 in
  let key = Tuple.get target 1 in
  let hits = Catalog.index_lookup cat ix key in
  Alcotest.(check bool) "found" true (List.exists (Tuple.equal target) hits)

let test_unclustered_scan_charges_heap_io () =
  (* With an 8-frame pool over a 20-page table, random fetches must miss. *)
  let cat, ix, _ = setup () in
  Catalog.reset_io cat;
  ignore (Exec.Operator.to_list (Exec.Scan.index_desc cat ix));
  let snap = Io_stats.snapshot (Catalog.io cat) in
  Alcotest.(check bool) "heap page reads happened" true
    (snap.Io_stats.page_reads > 20)

let test_clustered_scan_reads_no_heap_pages () =
  let cat = Catalog.create ~pool_frames:8 ~tuples_per_page:10 () in
  let prng = Rkutil.Prng.create 18 in
  let tuples =
    List.init 200 (fun i -> Tuple.make [ Value.Int i; Value.Float (Rkutil.Prng.uniform prng) ])
  in
  ignore (Catalog.create_table cat "T" two_col_schema tuples);
  let ix =
    Catalog.create_index cat ~name:"T_score" ~table:"T"
      ~key:(Expr.col ~relation:"T" "score") ()
  in
  Catalog.reset_io cat;
  ignore (Exec.Operator.to_list (Exec.Scan.index_desc cat ix));
  let snap = Io_stats.snapshot (Catalog.io cat) in
  Alcotest.(check int) "no heap reads" 0 snap.Io_stats.page_reads;
  Alcotest.(check bool) "index nodes read" true (snap.Io_stats.index_node_reads > 0)

let test_cost_model_prefers_clustered () =
  (* The same logical index scan must cost more when unclustered and the
     pool is small. *)
  let make clustered =
    let cat = Catalog.create ~pool_frames:8 ~tuples_per_page:10 () in
    let prng = Rkutil.Prng.create 19 in
    let tuples =
      List.init 500 (fun i ->
          Tuple.make [ Value.Int i; Value.Float (Rkutil.Prng.uniform prng) ])
    in
    ignore (Catalog.create_table cat "T" two_col_schema tuples);
    ignore
      (Catalog.create_index cat ~clustered ~name:"T_score" ~table:"T"
         ~key:(Expr.col ~relation:"T" "score") ());
    let q =
      Core.Logical.make
        ~relations:[ Core.Logical.base ~score:(Expr.col ~relation:"T" "score") "T" ]
        ~joins:[] ~k:10 ()
    in
    let env = Core.Cost_model.default_env ~k_min:10 cat q in
    let plan =
      Core.Plan.Index_scan
        { table = "T"; index = "T_score"; key = Expr.col ~relation:"T" "score"; desc = true }
    in
    (Core.Cost_model.estimate env plan).Core.Cost_model.total_cost
  in
  Alcotest.(check bool) "unclustered dearer" true (make false > make true)

(* --- ratio polling --- *)

let scored_stream rel =
  let sorted = Relation.sort_by ~desc:true (Expr.col "score") rel in
  Exec.Operator.scored_of_list (Relation.schema rel)
    (List.map
       (fun tu -> (tu, Value.to_float (Tuple.get tu 2)))
       (Relation.tuples sorted))

let rank_input rel =
  { Exec.Rank_join.stream = scored_stream rel; key = (fun tu -> Tuple.get tu 1) }

let test_ratio_polling_correct_and_respects_ratio () =
  let ra = Test_util.scored_relation "A" ~n:300 ~domain:10 ~seed:71 in
  let rb = Test_util.scored_relation "B" ~n:300 ~domain:10 ~seed:72 in
  let run polling =
    let stream, stats =
      Exec.Rank_join.hrjn ~polling ~combine:( +. ) ~left:(rank_input ra)
        ~right:(rank_input rb) ()
    in
    (Exec.Operator.scored_take stream 10, stats)
  in
  let baseline, _ = run Exec.Rank_join.Alternate in
  List.iter
    (fun ratio ->
      let results, stats = run (Exec.Rank_join.Ratio ratio) in
      Test_util.check_score_multiset
        (Printf.sprintf "ratio %.2f same top-10" ratio)
        (List.map snd baseline) (List.map snd results);
      (* The consumption ratio should be near the target (within the
         granularity the threshold stop allows). *)
      let actual =
        float_of_int (Exec.Exec_stats.left_depth stats)
        /. float_of_int (max 1 (Exec.Exec_stats.right_depth stats))
      in
      if (Exec.Exec_stats.left_depth stats) < 300 && (Exec.Exec_stats.right_depth stats) < 300
      then
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f respected (got %.2f)" ratio actual)
          true
          (actual <= ratio *. 1.5 +. 0.1))
    [ 0.25; 0.5; 1.0; 2.0 ]

let prop_ratio_polling_always_correct =
  QCheck.Test.make ~name:"hrjn ratio polling: any ratio gives correct top-k"
    ~count:40
    QCheck.(pair Test_util.small_rel_params (QCheck.float_range 0.1 4.0))
    (fun ((seed, n, domain), ratio) ->
      let ra = Test_util.scored_relation "A" ~n ~domain ~seed in
      let rb = Test_util.scored_relation "B" ~n ~domain ~seed:(seed + 500) in
      let stream, _ =
        Exec.Rank_join.hrjn
          ~polling:(Exec.Rank_join.Ratio ratio)
          ~combine:( +. ) ~left:(rank_input ra) ~right:(rank_input rb) ()
      in
      let results = Exec.Operator.scored_take stream 8 in
      let joined =
        Relation.join
          ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
          ra rb
      in
      let oracle =
        Relation.top_k
          ~score:Expr.(col ~relation:"A" "score" + col ~relation:"B" "score")
          ~k:8 joined
      in
      let e = Test_util.score_multiset (List.map snd oracle) in
      let a = Test_util.score_multiset (List.map snd results) in
      List.length e = List.length a
      && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) e a)

let test_executor_uses_hints () =
  (* Run the same plan with and without hints; both must agree on results. *)
  let cat = Catalog.create ~pool_frames:32 () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (80 + i))
           ~name ~n:400 ~key_domain:40 ()))
    [ "A"; "B" ];
  let q =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
          Core.Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
        ]
      ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:10 ()
  in
  let env = Core.Cost_model.default_env ~k_min:10 cat q in
  let ix t =
    (Option.get
       (Catalog.find_index_on_expr cat ~table:t (Expr.col ~relation:t "score")))
      .Catalog.ix_name
  in
  let iscan t =
    Core.Plan.Index_scan
      { table = t; index = ix t; key = Expr.col ~relation:t "score"; desc = true }
  in
  let plan =
    Core.Plan.Top_k
      {
        k = 10;
        input =
          Core.Plan.Join
            {
              algo = Core.Plan.Hrjn;
              cond =
                { Core.Logical.left_table = "A"; left_column = "key";
                  right_table = "B"; right_column = "key" };
              left = iscan "A";
              right = iscan "B";
              left_score = Some (Expr.col ~relation:"A" "score");
              right_score = Some (Expr.col ~relation:"B" "score");
            };
      }
  in
  let bare = Core.Executor.run cat plan in
  let hints = Core.Propagate.run env ~k:10 plan in
  let hinted = Core.Executor.run ~hints cat plan in
  Test_util.check_score_multiset "hinted = unhinted"
    (List.map snd bare.Core.Executor.rows)
    (List.map snd hinted.Core.Executor.rows)

let test_selectivity_estimate_uses_int_range () =
  (* 500 keys drawn from a domain of 100000: the distinct count alone would
     say s = 1/500; the range-aware estimator should say ~1/100000. *)
  let cat = Catalog.create () in
  let prng = Rkutil.Prng.create 90 in
  let mk () =
    List.init 500 (fun i ->
        Tuple.make
          [ Value.Int (Rkutil.Prng.int prng 100_000); Value.Float (float_of_int i) ])
  in
  let schema =
    Schema.of_columns
      [ Schema.column "key" Value.Tint; Schema.column "score" Value.Tfloat ]
  in
  ignore (Catalog.create_table cat "L" schema (mk ()));
  ignore (Catalog.create_table cat "R" schema (mk ()));
  let s = Catalog.estimate_join_selectivity cat ~left:("L", "key") ~right:("R", "key") in
  Alcotest.(check bool) "close to 1e-5" true (s < 5e-5 && s > 5e-6)

let suites =
  [
    ( "storage.unclustered",
      [
        Alcotest.test_case "scan resolves tuples" `Quick
          test_unclustered_scan_returns_base_tuples;
        Alcotest.test_case "scan sorted" `Quick test_unclustered_scan_sorted;
        Alcotest.test_case "lookup" `Quick test_unclustered_lookup;
        Alcotest.test_case "charges heap io" `Quick test_unclustered_scan_charges_heap_io;
        Alcotest.test_case "clustered reads no heap" `Quick
          test_clustered_scan_reads_no_heap_pages;
        Alcotest.test_case "cost model aware" `Quick test_cost_model_prefers_clustered;
        Alcotest.test_case "selectivity via int range" `Quick
          test_selectivity_estimate_uses_int_range;
      ] );
    ( "exec.ratio_polling",
      [
        Alcotest.test_case "correct + respects ratio" `Quick
          test_ratio_polling_correct_and_respects_ratio;
        Alcotest.test_case "executor hints" `Quick test_executor_uses_hints;
        QCheck_alcotest.to_alcotest prop_ratio_polling_always_correct;
      ] );
  ]
