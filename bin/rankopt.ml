(* rankopt: command-line front end for the rank-aware query engine.

   Generate a synthetic catalog and run top-k SQL against it:

     dune exec bin/rankopt.exe -- query \
       --table A:5000:200 --table B:5000:200 \
       "SELECT A.id, B.id FROM A, B WHERE A.key = B.key \
        ORDER BY 0.3*A.score + 0.7*B.score DESC LIMIT 5"

   Other commands: explain (plan only), repl (interactive). *)

open Cmdliner

type table_spec = { tname : string; rows : int; domain : int }

let parse_table_spec s =
  match String.split_on_char ':' s with
  | [ tname; rows; domain ] -> (
      match int_of_string_opt rows, int_of_string_opt domain with
      | Some rows, Some domain when rows > 0 && domain > 0 ->
          Ok { tname; rows; domain }
      | _ -> Error (`Msg "expected NAME:ROWS:KEYDOMAIN with positive integers"))
  | _ -> Error (`Msg "expected NAME:ROWS:KEYDOMAIN")

let table_spec_conv =
  Arg.conv
    ( parse_table_spec,
      fun fmt t -> Format.fprintf fmt "%s:%d:%d" t.tname t.rows t.domain )

let tables_arg =
  let doc =
    "Synthetic table to create, as NAME:ROWS:KEYDOMAIN. Columns are (id, \
     key, score) with a descending score index and a key index; the join \
     selectivity between two tables is 1/KEYDOMAIN. Repeatable."
  in
  Arg.(
    value
    & opt_all table_spec_conv
        [
          { tname = "A"; rows = 5000; domain = 200 };
          { tname = "B"; rows = 5000; domain = 200 };
        ]
    & info [ "table"; "t" ] ~docv:"SPEC" ~doc)

let seed_arg =
  let doc = "Random seed for data generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let pool_arg =
  let doc = "Buffer pool size in pages." in
  Arg.(value & opt int 256 & info [ "pool" ] ~docv:"FRAMES" ~doc)

let verbose_arg =
  let doc = "Enable optimizer debug logging." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let traditional_arg =
  let doc = "Disable rank-aware optimization (join-then-sort plans only)." in
  Arg.(value & flag & info [ "traditional" ] ~doc)

let from_arg =
  let doc = "Load the catalog from a directory saved with --save instead of generating tables." in
  Arg.(value & opt (some dir) None & info [ "from" ] ~docv:"DIR" ~doc)

let save_arg =
  let doc = "After building the catalog, persist it to this directory." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"DIR" ~doc)

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let build_catalog ?from_dir ?save_dir specs seed pool_frames =
  let catalog =
    match from_dir with
    | Some dir -> Storage.Persist.load ~pool_frames ~dir ()
    | None ->
        let catalog = Storage.Catalog.create ~pool_frames () in
        List.iteri
          (fun i spec ->
            ignore
              (Workload.Generator.load_scored_table catalog
                 (Rkutil.Prng.create (seed + (97 * i)))
                 ~name:spec.tname ~n:spec.rows ~key_domain:spec.domain ()))
          specs;
        catalog
  in
  (match save_dir with
  | Some dir -> Storage.Persist.save catalog ~dir
  | None -> ());
  catalog

let config_of traditional =
  if traditional then { Core.Enumerator.rank_aware = false; first_rows = false }
  else Core.Enumerator.default_config

let print_answer (ans : Sqlfront.Sql.answer) =
  Printf.printf "%s\n" (String.concat " | " ans.Sqlfront.Sql.columns);
  List.iteri
    (fun i row ->
      let score =
        match List.nth_opt ans.Sqlfront.Sql.scores i with
        | Some s -> Printf.sprintf "   [score %.6f]" s
        | None -> ""
      in
      Printf.printf "%s%s\n" (Relalg.Tuple.to_string row) score)
    ans.Sqlfront.Sql.rows;
  Printf.printf "(%d rows; plan: %s)\n"
    (List.length ans.Sqlfront.Sql.rows)
    (Core.Plan.describe ans.Sqlfront.Sql.planned.Core.Optimizer.plan)

let run_sql catalog config sql =
  match Sqlfront.Sql.query ~config catalog sql with
  | Ok ans ->
      print_answer ans;
      `Ok ()
  | Error e -> `Error (false, e)

let query_cmd =
  let run verbose tables seed pool traditional from_dir save_dir sql =
    setup_logs verbose;
    let catalog = build_catalog ?from_dir ?save_dir tables seed pool in
    run_sql catalog (config_of traditional) sql
  in
  let doc = "Generate synthetic tables (or --from a saved catalog) and execute a top-k SQL query." in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ tables_arg $ seed_arg $ pool_arg
       $ traditional_arg $ from_arg $ save_arg $ sql_arg))

let explain_cmd =
  let run tables seed pool traditional from_dir sql =
    let catalog = build_catalog ?from_dir tables seed pool in
    match Sqlfront.Sql.explain ~config:(config_of traditional) catalog sql with
    | Ok text ->
        print_string text;
        `Ok ()
    | Error e -> `Error (false, e)
  in
  let doc = "Show the optimizer's chosen plan for a query without running it." in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      ret
        (const run $ tables_arg $ seed_arg $ pool_arg $ traditional_arg
       $ from_arg $ sql_arg))

let analyze_cmd =
  let run verbose tables seed pool traditional from_dir sql =
    setup_logs verbose;
    let catalog = build_catalog ?from_dir tables seed pool in
    match Sqlfront.Sql.analyze ~config:(config_of traditional) catalog sql with
    | Ok text ->
        print_string text;
        `Ok ()
    | Error e -> `Error (false, e)
  in
  let doc =
    "Execute a query under per-operator instrumentation and print the \
     annotated plan: observed input depths next to the depth model's \
     predictions, and actual page I/O next to the cost model's estimate."
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ tables_arg $ seed_arg $ pool_arg
       $ traditional_arg $ from_arg $ sql_arg))

let repl_cmd =
  let run tables seed pool traditional from_dir =
    let catalog = build_catalog ?from_dir tables seed pool in
    let config = config_of traditional in
    Printf.printf
      "rankopt repl — %s loaded; terminate statements with a newline, \\q quits.\n"
      (String.concat ", "
         (List.map (fun t -> Printf.sprintf "%s(%d)" t.tname t.rows) tables));
    let rec loop () =
      print_string "sql> ";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line when String.trim line = "\\q" -> ()
      | Some line when String.trim line = "" -> loop ()
      | Some line ->
          (match String.trim line with
          | l
            when String.length l >= 8
                 && String.uppercase_ascii (String.sub l 0 8) = "EXPLAIN " -> (
              let sql = String.sub l 8 (String.length l - 8) in
              match Sqlfront.Sql.explain ~config catalog sql with
              | Ok text -> print_string text
              | Error e -> Printf.printf "error: %s\n" e)
          | l
            when String.length l >= 8
                 && String.uppercase_ascii (String.sub l 0 8) = "ANALYZE " -> (
              let sql = String.sub l 8 (String.length l - 8) in
              match Sqlfront.Sql.analyze ~config catalog sql with
              | Ok text -> print_string text
              | Error e -> Printf.printf "error: %s\n" e)
          | sql -> (
              match Sqlfront.Sql.execute ~config catalog sql with
              | Ok (Sqlfront.Sql.Rows ans) -> print_answer ans
              | Ok (Sqlfront.Sql.Affected n) -> Printf.printf "%d row(s) affected\n" n
              | Error e -> Printf.printf "error: %s\n" e));
          loop ()
    in
    loop ();
    `Ok ()
  in
  let doc =
    "Interactive SQL prompt over generated tables: SELECT/WITH queries, \
     INSERT INTO ... VALUES, DELETE FROM, and EXPLAIN/ANALYZE prefixes."
  in
  Cmd.v
    (Cmd.info "repl" ~doc)
    Term.(
      ret (const run $ tables_arg $ seed_arg $ pool_arg $ traditional_arg $ from_arg))

(* -- serve / client: the concurrent query service ----------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path to listen/connect on." in
  Arg.(
    value
    & opt string "/tmp/rankopt.sock"
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Listen/connect on TCP at this port instead of a Unix socket." in
  Arg.(value & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "TCP host (with --port)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let endpoint_of socket port host =
  match port with
  | Some p -> Server.Listener.Tcp (host, p)
  | None -> Server.Listener.Unix_socket socket

let serve_cmd =
  let run verbose tables seed pool from_dir socket port host workers queue
      cache timeout dop shards partition =
    setup_logs verbose;
    let catalog = build_catalog ?from_dir tables seed pool in
    let config =
      {
        Server.Service.workers;
        queue_capacity = queue;
        cache_capacity = cache;
        default_timeout_s = timeout;
        dop;
      }
    in
    let endpoint = endpoint_of socket port host in
    if shards >= 2 then begin
      let cluster = Shard.Cluster.start ~config ?spec:partition ~n:shards catalog in
      let frontend = Shard.Frontend.start cluster endpoint in
      let part = Shard.Coordinator.part (Shard.Cluster.coordinator cluster) in
      Format.printf
        "rankopt serve: coordinating %d shard(s) on %a (%s partitioning)@."
        (Shard.Cluster.n_shards cluster)
        Server.Listener.pp_endpoint endpoint
        (Shard.Partition.describe part);
      Shard.Frontend.wait frontend;
      Shard.Cluster.stop cluster;
      Format.printf "rankopt serve: shut down@.";
      `Ok ()
    end
    else begin
      let listener = Server.Listener.start ~config endpoint catalog in
      Format.printf "rankopt serve: listening on %a (%d worker domain(s))@."
        Server.Listener.pp_endpoint endpoint workers;
      Server.Listener.wait listener;
      Format.printf "rankopt serve: shut down@.";
      `Ok ()
    end
  in
  let workers_arg =
    let doc = "Worker domains executing queries." in
    Arg.(value & opt int 4 & info [ "workers"; "w" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Job-queue capacity; excess statements are shed." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Plan-cache capacity in templates." in
    Arg.(value & opt int 128 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Default per-statement deadline, seconds." in
    Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let dop_arg =
    let doc =
      "Intra-query parallel degree: with N >= 2 the optimizer may place \
       exchange operators whose morsel pumps share the worker pool. 1 \
       keeps all plans serial."
    in
    Arg.(value & opt int 1 & info [ "dop" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc =
      "Coordinator mode: partition the catalog across N in-process engine \
       shards (each its own service behind a private socket) and serve \
       through the rank-aware scatter/gather coordinator. Ranked \
       statements are pushed to the shards with a per-shard bound k' and \
       merged with threshold-style early termination; replies carry \
       scattered=1 and per-shard observed depths. SHARD LIST / SHARD ADD \
       become live."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let partition_arg =
    let doc =
      "Partitioning spec for --shards: 'hash' (stable hash of each \
       table's key column), 'hash:COL', or 'range:COL' (equi-depth \
       score ranges)."
    in
    Arg.(
      value & opt (some string) None & info [ "partition" ] ~docv:"SPEC" ~doc)
  in
  let doc =
    "Run the multi-session query service: a line protocol (PREPARE / \
     EXECUTE k / QUERY / EXPLAIN / STATS / SHUTDOWN) over a Unix or TCP \
     socket, executing on a pool of worker domains behind a rank-aware \
     (k-interval) plan cache. With --shards N, run as a distributed \
     top-k coordinator over N partitioned engine shards instead."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ tables_arg $ seed_arg $ pool_arg $ from_arg
       $ socket_arg $ port_arg $ host_arg $ workers_arg $ queue_arg $ cache_arg
       $ timeout_arg $ dop_arg $ shards_arg $ partition_arg))

let client_cmd =
  let run socket port host commands =
    let endpoint = endpoint_of socket port host in
    match Server.Client.connect endpoint with
    | exception Unix.Unix_error (e, _, _) ->
        `Error
          ( false,
            Format.asprintf "cannot connect to %a: %s" Server.Listener.pp_endpoint
              endpoint (Unix.error_message e) )
    | client ->
        let send line =
          match Server.Client.request client line with
          | Error e ->
              Printf.printf "transport error: %s\n" e;
              false
          | Ok resp ->
              List.iter print_endline (Server.Protocol.render resp);
              resp.Server.Protocol.ok
        in
        let ok =
          match commands with
          | _ :: _ -> List.for_all send commands
          | [] ->
              (* Script mode: one command per stdin line. *)
              let rec loop acc =
                match In_channel.input_line stdin with
                | None -> acc
                | Some line when String.trim line = "" -> loop acc
                | Some line -> loop (send line && acc)
              in
              loop true
        in
        Server.Client.close client;
        if ok then `Ok () else `Error (false, "server returned an error")
  in
  let commands_arg =
    let doc =
      "Protocol command(s) to send (e.g. \"QUERY SELECT ...\"); reads one \
       command per stdin line when omitted."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"COMMAND" ~doc)
  in
  let doc = "Send protocol commands to a running rankopt server." in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(ret (const run $ socket_arg $ port_arg $ host_arg $ commands_arg))

let fuzz_cmd =
  let run seed cases server_mode enum_mode rank_mode vector_mode degree shard =
    let t0 = Unix.gettimeofday () in
    let progress i =
      if cases > 20 && i > 0 && i mod 50 = 0 then
        Printf.eprintf "rankcheck: %d/%d cases...\n%!" i cases
    in
    let mode, outcome =
      match shard with
      | Some n when n >= 2 ->
          ( Printf.sprintf " (shard mode, %d shards)" n,
            Check.Rankcheck.run_shard ~progress ~seed ~cases ~shards:n () )
      | Some n ->
          ( "",
            {
              Check.Rankcheck.o_cases = 0;
              o_plans = 0;
              o_failures =
                [
                  {
                    Check.Rankcheck.f_seed = seed;
                    f_reason =
                      Printf.sprintf "--shard %d: shard count must be >= 2" n;
                    f_plan = None;
                    f_case = Check.Rankcheck.gen_case seed;
                    f_replay =
                      Printf.sprintf "rankopt fuzz --shard 2 --seed %d" seed;
                  };
                ];
            } )
      | None -> (
      match degree with
      | Some d when d >= 2 ->
          ( Printf.sprintf " (degree %d)" d,
            Check.Rankcheck.run_degree ~progress ~seed ~cases ~degree:d () )
      | Some d ->
          ( "",
            {
              Check.Rankcheck.o_cases = 0;
              o_plans = 0;
              o_failures =
                [
                  {
                    Check.Rankcheck.f_seed = seed;
                    f_reason =
                      Printf.sprintf "--degree %d: degree must be >= 2" d;
                    f_plan = None;
                    f_case = Check.Rankcheck.gen_case seed;
                    f_replay =
                      Printf.sprintf "rankopt fuzz --degree 2 --seed %d" seed;
                  };
                ];
            } )
      | None ->
          if vector_mode then
            ( " (vector mode)",
              Check.Rankcheck.run_vector ~progress ~seed ~cases () )
          else if rank_mode then
            (" (rank mode)", Check.Rankcheck.run_rank ~progress ~seed ~cases ())
          else if enum_mode then
            (" (enum mode)", Check.Rankcheck.run_enum ~progress ~seed ~cases ())
          else if server_mode then
            (" (server mode)", Check.Rankcheck.run_server ~progress ~seed ~cases ())
          else ("", Check.Rankcheck.run ~progress ~seed ~cases ()))
    in
    let dt = Unix.gettimeofday () -. t0 in
    List.iter
      (fun f -> Format.printf "%a@.@." Check.Rankcheck.pp_failure f)
      outcome.Check.Rankcheck.o_failures;
    Printf.printf
      "rankcheck%s: %d cases (seeds %d..%d), %d %s checked, %d failure(s) \
       [%.1fs]\n"
      mode outcome.Check.Rankcheck.o_cases seed
      (seed + cases - 1)
      outcome.Check.Rankcheck.o_plans
      (if shard <> None then "sharded statements"
       else if vector_mode && degree = None then "vectorized plan pairs"
       else if rank_mode && degree = None then "window executions"
       else if enum_mode && degree = None then "fetch prefixes"
       else if server_mode && degree = None then "server executions"
       else if degree <> None then "degree executions"
       else "plans")
      (List.length outcome.Check.Rankcheck.o_failures)
      dt;
    if outcome.Check.Rankcheck.o_failures = [] then `Ok ()
    else `Error (false, "rankcheck found divergences (replay commands above)")
  in
  let cases_arg =
    let doc = "Number of consecutive seeds to check." in
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let server_arg =
    let doc =
      "Replay each generated query through a live in-process server \
       (PREPARE with LIMIT ?, then EXECUTE twice at two k values, \
       asserting plan-cache hits) against direct execution, instead of \
       enumerating plans."
    in
    Arg.(value & flag & info [ "server" ] ~doc)
  in
  let enum_arg =
    let doc =
      "Ranked-enumeration sweep: PREPARE each case against an in-process \
       service, EXECUTE at its k, then FETCH NEXT in varied batch sizes \
       until exhaustion, requiring every prefix to be tuple-exact \
       (including ties and NaN drops) against a full ranked-list oracle."
    in
    Arg.(value & flag & info [ "enum" ] ~doc)
  in
  let rank_arg =
    let doc =
      "By-rank window sweep: execute both physical variants of each \
       generated rank() BETWEEN window (counted order-statistic descent \
       and drain-sort-slice) plus the full SQL path against a \
       sort-everything oracle, requiring tuple-exact windows (ties, NaN \
       drops, clamping included)."
    in
    Arg.(value & flag & info [ "rank" ] ~doc)
  in
  let vector_arg =
    let doc =
      "Batched-execution sweep: execute every MEMO-retained plan of each \
       case twice — tuple-at-a-time and with the vectorized spines enabled \
       (the default executor mode) — requiring bit-identical rows, scores \
       and order plus identical rank-join depth and emitted counters \
       across the two runs."
    in
    Arg.(value & flag & info [ "vector" ] ~doc)
  in
  let degree_arg =
    let doc =
      "Parallel-determinism sweep: plan each case with intra-query \
       parallelism enabled at the given degree, execute the chosen plan \
       at degree overrides 1/2/N/2N on a shared domain pool, and require \
       bit-identical output at every degree (plus a score-multiset \
       cross-check against an independently planned serial statement)."
    in
    Arg.(value & opt (some int) None & info [ "degree" ] ~docv:"N" ~doc)
  in
  let shard_arg =
    let doc =
      "Distributed-coordinator sweep: run each generated top-k join both \
       on a single node and through an in-process cluster of N engine \
       shards hash-partitioned on the join key (scatter with a per-shard \
       bound, threshold-style gather merge), requiring the single-node \
       score sequence and tuple-exact rows (boundary ties may resolve to \
       any member of the k-th-score group); a routed INSERT through the \
       coordinator then re-checks the query against the mutated data."
    in
    Arg.(value & opt (some int) None & info [ "shard" ] ~docv:"N" ~doc)
  in
  let doc =
    "Differential fuzzing: for each seed, generate random tables and a \
     random top-k query, compare every plan the optimizer can emit against \
     a naive sort-based oracle, and check rank-join depth bounds. Failures \
     are shrunk and print a replay command. With --server, replay through \
     the query service instead; with --enum, sweep cursor-style ranked \
     enumeration against a full-list oracle; with --rank, sweep by-rank \
     windows against a sort-everything oracle; with --vector, sweep \
     vectorized vs tuple-at-a-time execution of every retained plan; with \
     --degree, sweep parallel-execution determinism; with --shard, sweep \
     single-node vs sharded-coordinator equivalence."
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      ret
        (const run $ seed_arg $ cases_arg $ server_arg $ enum_arg $ rank_arg
       $ vector_arg $ degree_arg $ shard_arg))

(* -- lint: the planlint static analyzer --------------------------------- *)

(* Statements in a .sql file are separated by ';'; '--' comments stripped. *)
let split_statements text =
  let strip_comment line =
    let n = String.length line in
    let rec dash i =
      if i + 1 >= n then line
      else if line.[i] = '-' && line.[i + 1] = '-' then String.sub line 0 i
      else dash (i + 1)
    in
    dash 0
  in
  String.split_on_char '\n' text
  |> List.map strip_comment |> String.concat "\n" |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let read_file path = In_channel.with_open_text path In_channel.input_all

let sql_files_of_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sql")
  |> List.sort String.compare
  |> List.map (Filename.concat dir)

(* Lint one statement: parse → normalize to the cache template → bind and
   optimize with emit-time linting on (memo subplans included) → full
   catalog over the finished statement. *)
let lint_statement catalog config sql =
  Lint.Engine.Emit.reset ();
  Lint.Engine.Emit.enable ();
  let result =
    match Sqlfront.Sql.template_of_sql sql with
    | Error e -> Error ("parse: " ^ e)
    | Ok tpl -> (
        match Sqlfront.Sql.instantiate tpl ?k:None () with
        | Error e -> Error ("instantiate: " ^ e)
        | Ok ast -> (
            match Sqlfront.Sql.prepare_ast ~config catalog ast with
            | Error e -> Error ("prepare: " ^ e)
            | Ok prep ->
                let p = prep.Sqlfront.Sql.planned in
                let diags =
                  Lint.Engine.Emit.diagnostics () @ Lint.Engine.lint_planned p
                in
                Ok
                  ( Lint.Diag.sort diags,
                    1 + Lint.Engine.Emit.linted (),
                    Core.Plan.describe p.Core.Optimizer.plan )))
  in
  Lint.Engine.Emit.disable ();
  result

let lint_cmd =
  let run verbose tables seed pool traditional from_dir files dirs fuzz_seed
      fuzz_cases json sqls =
    setup_logs verbose;
    match fuzz_seed with
    | Some fseed ->
        (* Fuzz sweep: lint every retained plan of every generated case. *)
        let progress i =
          if (not json) && fuzz_cases > 20 && i > 0 && i mod 200 = 0 then
            Printf.eprintf "lint: %d/%d cases...\n%!" i fuzz_cases
        in
        let outcome =
          Check.Rankcheck.run_lint ~progress ~seed:fseed ~cases:fuzz_cases ()
        in
        let nfail = List.length outcome.Check.Rankcheck.o_failures in
        if json then
          Printf.printf
            "{\"lint\": \"fuzz\", \"seed\": %d, \"cases\": %d, \"plans\": %d, \
             \"failures\": %d}\n"
            fseed outcome.Check.Rankcheck.o_cases
            outcome.Check.Rankcheck.o_plans nfail
        else begin
          List.iter
            (fun f -> Format.printf "%a@.@." Check.Rankcheck.pp_failure f)
            outcome.Check.Rankcheck.o_failures;
          Printf.printf
            "planlint fuzz sweep: %d cases (seeds %d..%d), %d plans linted, \
             %d failure(s)\n"
            outcome.Check.Rankcheck.o_cases fseed
            (fseed + fuzz_cases - 1)
            outcome.Check.Rankcheck.o_plans nfail
        end;
        if nfail = 0 then `Ok ()
        else `Error (false, "planlint reported diagnostics (see above)")
    | None -> (
        let from_files =
          List.concat_map (fun f -> split_statements (read_file f)) files
        in
        let from_dirs =
          List.concat_map
            (fun d ->
              List.concat_map
                (fun f -> split_statements (read_file f))
                (sql_files_of_dir d))
            dirs
        in
        match sqls @ from_files @ from_dirs with
        | [] ->
            `Error
              (true, "no SQL to lint (pass statements, --file or --dir, or use --fuzz-seed)")
        | statements ->
            let catalog = build_catalog ?from_dir tables seed pool in
            let config = config_of traditional in
            let all_diags = ref [] in
            let broken = ref 0 in
            let plans = ref 0 in
            List.iter
              (fun sql ->
                match lint_statement catalog config sql with
                | Error e ->
                    incr broken;
                    Printf.eprintf "rankopt lint: %s\n  in: %s\n" e sql
                | Ok (diags, linted, plan) ->
                    plans := !plans + linted;
                    all_diags := !all_diags @ diags;
                    if not json then
                      if diags = [] then
                        Printf.printf "ok: %s\n  plan %s (%d plan(s) linted)\n"
                          sql plan linted
                      else begin
                        Printf.printf "%s\n" sql;
                        List.iter
                          (fun d ->
                            Printf.printf "  %s\n" (Lint.Diag.to_string d))
                          diags
                      end)
              statements;
            let errs = Lint.Engine.errors !all_diags in
            if json then print_endline (Lint.Diag.list_to_json !all_diags)
            else
              Printf.printf
                "planlint: %d statement(s), %d plan(s) linted, %d \
                 diagnostic(s) (%d error(s))\n"
                (List.length statements) !plans
                (List.length !all_diags)
                (List.length errs);
            if !broken > 0 then
              `Error (false, "some statements failed to parse or plan")
            else if errs <> [] then
              `Error (false, "planlint reported errors")
            else `Ok ())
  in
  let files_arg =
    let doc = "Lint every ';'-separated statement in this file. Repeatable." in
    Arg.(value & opt_all file [] & info [ "file"; "f" ] ~docv:"FILE" ~doc)
  in
  let dirs_arg =
    let doc = "Lint every *.sql file in this directory. Repeatable." in
    Arg.(value & opt_all dir [] & info [ "dir"; "d" ] ~docv:"DIR" ~doc)
  in
  let fuzz_seed_arg =
    let doc =
      "Instead of SQL inputs, sweep the rankcheck fuzz corpus starting at \
       this seed: every MEMO-retained plan of every generated case is \
       linted (nothing is executed)."
    in
    Arg.(value & opt (some int) None & info [ "fuzz-seed" ] ~docv:"SEED" ~doc)
  in
  let fuzz_cases_arg =
    let doc = "Number of fuzz cases to sweep (with --fuzz-seed)." in
    Arg.(value & opt int 100 & info [ "fuzz-cases" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit machine-readable JSON diagnostics instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let sqls_arg =
    let doc = "SQL statement(s) to lint." in
    Arg.(value & pos_all string [] & info [] ~docv:"SQL" ~doc)
  in
  let doc =
    "Statically analyze plans with the planlint rule catalog (PL01..PL10): \
     schema/type soundness, order and pipelining properties, logical-to- \
     physical filter preservation, k-propagation and depth-bound sanity, \
     cost monotonicity, memo hygiene and top-k shape. Lints the optimizer's \
     chosen plan and (in emit mode) every MEMO-retained subplan; exits \
     nonzero on any error-severity diagnostic."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ tables_arg $ seed_arg $ pool_arg
       $ traditional_arg $ from_arg $ files_arg $ dirs_arg $ fuzz_seed_arg
       $ fuzz_cases_arg $ json_arg $ sqls_arg))

(* -- sanitize: the lockcheck concurrency-discipline analyzer ------------ *)

(* A 4-domain hammer over the sharded buffer pool: concurrent faults,
   hits, dirtying and flushes exercise the shard latches and the
   page-fault blocking marker. *)
let sanitize_hammer ~seed =
  let io = Storage.Io_stats.create () in
  let pool = Storage.Buffer_pool.create ~frames:8 io in
  let pages = 32 in
  let ids =
    Array.init pages (fun _ ->
        Storage.Page.id (Storage.Buffer_pool.alloc_page pool ~capacity:4))
  in
  Storage.Buffer_pool.flush pool;
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let prng = Rkutil.Prng.create (seed + d) in
            for _ = 1 to 2_000 do
              let id = ids.(Rkutil.Prng.int prng pages) in
              ignore (Storage.Buffer_pool.get pool id);
              if Rkutil.Prng.int prng 4 = 0 then
                Storage.Buffer_pool.mark_dirty pool id
            done))
  in
  List.iter Domain.join ds;
  Storage.Buffer_pool.flush pool

(* A socket serve mix: concurrent client threads over a live listener
   running cached top-k, cursor FETCH/CLOSE interleavings and DML, ended
   by a protocol SHUTDOWN (the graceful-drain path). Returns the number
   of malformed/unexpected replies. *)
let sanitize_serve ~seed =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rankopt-sanitize-%d.sock" (Unix.getpid ()))
  in
  let cat = Storage.Catalog.create () in
  ignore
    (Workload.Generator.load_scored_table cat
       (Rkutil.Prng.create seed)
       ~name:"A" ~n:300 ~key_domain:20 ());
  ignore
    (Workload.Generator.load_scored_table cat
       (Rkutil.Prng.create (seed + 1))
       ~name:"B" ~n:300 ~key_domain:20 ());
  let ep = Server.Listener.Unix_socket path in
  let config =
    { Server.Service.default_config with workers = 2; dop = 2 }
  in
  let srv = Server.Listener.start ~config ep cat in
  let errors = Atomic.make 0 in
  let client tid =
    let c = Server.Client.connect ep in
    let req line =
      match Server.Client.request c line with
      | Error _ -> Atomic.incr errors
      | Ok r ->
          if
            (not r.Server.Protocol.ok)
            && not
                 (List.mem r.Server.Protocol.code
                    [ "UNKNOWN_CURSOR"; "UNKNOWN_PREPARED"; "CURSOR_STALE" ])
          then Atomic.incr errors
    in
    req
      (Printf.sprintf
         "PREPARE q%d SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER \
          BY 0.5*A.score + 0.5*B.score DESC LIMIT ?"
         tid);
    let prng = Rkutil.Prng.create (seed + 40 + tid) in
    for i = 1 to 30 do
      match Rkutil.Prng.int prng 6 with
      | 0 -> req (Printf.sprintf "EXECUTE q%d 5" tid)
      | 1 -> req (Printf.sprintf "FETCH q%d NEXT 3" tid)
      | 2 -> req (Printf.sprintf "CLOSE q%d" tid)
      | 3 -> req "QUERY SELECT A.id FROM A ORDER BY A.score DESC LIMIT 4"
      | 4 ->
          req
            (Printf.sprintf "QUERY INSERT INTO B VALUES (%d, %d, 0.25)"
               (9000 + (100 * tid) + i)
               (Rkutil.Prng.int prng 20))
      | _ -> req "STATS"
    done;
    Server.Client.close c
  in
  let threads = List.init 4 (fun i -> Thread.create client i) in
  List.iter Thread.join threads;
  let c = Server.Client.connect ep in
  (match Server.Client.request c "SHUTDOWN" with
  | Ok r -> if not r.Server.Protocol.ok then Atomic.incr errors
  | Error _ -> Atomic.incr errors);
  Server.Client.close c;
  Server.Listener.wait srv;
  (try Sys.remove path with Sys_error _ -> ());
  Atomic.get errors

let sanitize_cmd =
  let run seed cases shards json =
    let t0 = Unix.gettimeofday () in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    let sweep name outcome =
      if outcome.Check.Rankcheck.o_failures <> [] then begin
        List.iter
          (fun f -> Format.eprintf "%a@.@." Check.Rankcheck.pp_failure f)
          outcome.Check.Rankcheck.o_failures;
        fail "%s: %d divergence(s)" name
          (List.length outcome.Check.Rankcheck.o_failures)
      end
    in
    let (), su, diags =
      Sanitize.Engine.checked (fun () ->
          sanitize_hammer ~seed;
          let serve_errors = sanitize_serve ~seed in
          if serve_errors > 0 then
            fail "serve mix: %d malformed replies" serve_errors;
          sweep "fuzz --server" (Check.Rankcheck.run_server ~seed ~cases ());
          sweep "fuzz --degree 2"
            (Check.Rankcheck.run_degree ~seed ~cases ~degree:2 ());
          sweep
            (Printf.sprintf "fuzz --shard %d" shards)
            (Check.Rankcheck.run_shard ~seed
               ~cases:(max 1 (cases / 4))
               ~shards ()))
    in
    if su.Sanitize.Trace.su_events = 0 then
      fail "instrumentation recorded no events (hooks not installed?)";
    let dt = Unix.gettimeofday () -. t0 in
    if json then
      Printf.printf
        "{\"sanitize\": {\"seed\": %d, \"cases\": %d, \"threads\": %d, \
         \"events\": %d, \"sites\": %d, \"edges\": %d, \"workload_failures\": \
         %d, \"diags\": %s}}\n"
        seed cases su.Sanitize.Trace.su_threads su.Sanitize.Trace.su_events
        (List.length su.Sanitize.Trace.su_sites)
        (List.length su.Sanitize.Trace.su_edges)
        (List.length !failures)
        (Lint.Diag.list_to_json diags)
    else begin
      List.iter (fun d -> print_endline (Lint.Diag.to_string d)) diags;
      List.iter (fun f -> Printf.printf "workload failure: %s\n" f) !failures;
      Printf.printf
        "lockcheck: hammer + serve + fuzz sweeps under instrumentation — %d \
         threads, %d events, %d sites, %d lock-order edges, %d diagnostic(s) \
         [%.1fs]\n"
        su.Sanitize.Trace.su_threads su.Sanitize.Trace.su_events
        (List.length su.Sanitize.Trace.su_sites)
        (List.length su.Sanitize.Trace.su_edges)
        (List.length diags) dt
    end;
    if diags = [] && !failures = [] then `Ok ()
    else `Error (false, "lockcheck reported diagnostics (see above)")
  in
  let cases_arg =
    let doc = "Fuzz cases per sweep (the shard sweep runs a quarter)." in
    Arg.(value & opt int 25 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Shard count for the coordinator sweep." in
    Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit one machine-readable JSON object instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let doc =
    "Replay concurrency-heavy workloads (buffer-pool domain hammer, socket \
     serve mix with graceful SHUTDOWN, fuzz --server/--degree/--shard \
     slices) with every latch instrumented, and audit the traces against \
     the declared concurrency discipline: lock-order-graph acyclicity and \
     declared ranks (LK01/LK02), blocking-under-latch (LK03), guarded-state \
     access (LK04), read->write upgrades (LK05), leaks at quiesce points \
     (LK06), release pairing (LK07) and hold-time outliers (LK08). Exits \
     nonzero on any diagnostic or workload divergence."
  in
  Cmd.v
    (Cmd.info "sanitize" ~doc)
    Term.(ret (const run $ seed_arg $ cases_arg $ shards_arg $ json_arg))

let main_cmd =
  let doc = "rank-aware top-k query engine (SIGMOD 2004 reproduction)" in
  let info = Cmd.info "rankopt" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      query_cmd; explain_cmd; analyze_cmd; repl_cmd; serve_cmd; client_cmd;
      fuzz_cmd; lint_cmd; sanitize_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
