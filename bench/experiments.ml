(* One function per table/figure of the paper's evaluation. Each prints the
   same rows/series the paper plots; EXPERIMENTS.md records the comparison
   against the paper's reported shapes. *)

open Relalg
open Bench_util

(* ------------------------------------------------------------------ *)
(* Figure 1: estimated I/O cost of the sort plan vs the rank-join plan
   as join selectivity varies (k fixed). Measured I/O is printed next to
   the estimates as a sanity column (not part of the paper's figure). *)

let fig1 () =
  section
    "Figure 1 - Estimated I/O cost for two ranking plans vs join selectivity\n\
     (n = 5000 per input, k = 50; sort plan = hash-join + external sort,\n\
     rank-join plan = HRJN over descending score indexes)";
  let k = 50 in
  row "%12s  %14s  %14s  %10s  %12s  %12s\n" "selectivity" "sort est." "rank est."
    "winner" "sort meas." "rank meas.";
  List.iter
    (fun domain ->
      let s = Workload.Generator.selectivity_of_domain domain in
      let cat = two_table_catalog ~n:5000 ~domain ~seed:11 () in
      let query = topk_query ~k [ "A"; "B" ] in
      let env = Core.Cost_model.default_env ~k_min:k cat query in
      let rank = hrjn_plan cat and sort = sort_plan cat in
      let rank_est = Core.Cost_model.estimate env rank in
      let sort_est = Core.Cost_model.estimate env sort in
      let rank_cost = rank_est.Core.Cost_model.cost_at (float_of_int k) in
      let sort_cost = sort_est.Core.Cost_model.total_cost in
      let measure plan =
        Storage.Catalog.reset_io cat;
        let r = Core.Executor.run cat (Core.Plan.Top_k { k; input = plan }) in
        Storage.Io_stats.total_io r.Core.Executor.io
      in
      let sort_meas = measure sort and rank_meas = measure rank in
      row "%12.5f  %14.1f  %14.1f  %10s  %12d  %12d\n" s sort_cost rank_cost
        (if rank_cost < sort_cost then "rank-join" else "sort")
        sort_meas rank_meas)
    [ 1000000; 200000; 50000; 10000; 5000; 2000; 1000; 500; 200; 100 ];
  row
    "\nExpected shape (paper): sort plan cheaper at low selectivity, rank-join\n\
     cheaper at high selectivity, with one crossover.\n"

(* ------------------------------------------------------------------ *)
(* Figure 2: number of retained plans for the 3-way join query without
   and with an ORDER BY, under the traditional optimizer. *)

let fig2_query cat ~order_by =
  ignore cat;
  let base t =
    if order_by && String.equal t "A" then
      (* ORDER BY A.score: single ranked relation *)
      Core.Logical.base ~score:(score_of t) ~weight:1.0 t
    else Core.Logical.base t
  in
  Core.Logical.make
    ~relations:[ base "A"; base "B"; base "C" ]
    ~joins:
      [ Core.Logical.equijoin ("A", "key") ("B", "key");
        Core.Logical.equijoin ("B", "key") ("C", "key") ]
    ?k:(if order_by then Some 1000000 else None)
    ()

let count_plans cat query config k_min =
  let env = Core.Cost_model.default_env ~k_min cat query in
  let result = Core.Enumerator.run ~config env in
  result.Core.Enumerator.stats.Core.Enumerator.retained

let fig2 () =
  section
    "Figure 2 - Number of retained plans: 3-way join query without vs with\n\
     ORDER BY (traditional optimizer; paper reports 12 vs 15)";
  let cat = three_table_catalog ~n:1000 ~domain:50 ~seed:21 () in
  let traditional = { Core.Enumerator.rank_aware = false; first_rows = false } in
  let without = count_plans cat (fig2_query cat ~order_by:false) traditional 1 in
  let with_ob = count_plans cat (fig2_query cat ~order_by:true) traditional 1 in
  row "%-34s %10s %10s\n" "" "no ORDER BY" "ORDER BY";
  row "%-34s %10d %10d\n" "retained plans (ours)" without with_ob;
  row "%-34s %10d %10d\n" "retained plans (paper)" 12 15;
  row
    "\nExpected shape: adding ORDER BY strictly increases retained plans,\n\
     because plans carrying the new interesting order survive pruning.\n\
     got: %d -> %d (%s)\n"
    without with_ob
    (if with_ob > without then "OK" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Figure 3 + Table 1: Q2 under traditional vs rank-aware enumeration. *)

let q2_catalog () =
  let cat = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 7 in
  let schema =
    Schema.of_columns
      [ Schema.column "c1" Value.Tfloat; Schema.column "c2" Value.Tint ]
  in
  List.iter
    (fun name ->
      let tuples =
        List.init 1000 (fun _ ->
            [| Value.Float (float_of_int (Rkutil.Prng.int prng 50));
               Value.Int (Rkutil.Prng.int prng 50) |])
      in
      ignore (Storage.Catalog.create_table cat name schema tuples);
      ignore
        (Storage.Catalog.create_index cat ~name:(name ^ "_c1") ~table:name
           ~key:(Expr.col ~relation:name "c1") ());
      ignore
        (Storage.Catalog.create_index cat ~name:(name ^ "_c2") ~table:name
           ~key:(Expr.col ~relation:name "c2") ()))
    [ "A"; "B"; "C" ];
  cat

let q2 () =
  Core.Logical.make
    ~relations:
      [
        Core.Logical.base ~score:(Expr.col ~relation:"A" "c1") ~weight:0.3 "A";
        Core.Logical.base ~score:(Expr.col ~relation:"B" "c1") ~weight:0.3 "B";
        Core.Logical.base ~score:(Expr.col ~relation:"C" "c1") ~weight:0.3 "C";
      ]
    ~joins:
      [ Core.Logical.equijoin ("A", "c2") ("B", "c1");
        Core.Logical.equijoin ("B", "c2") ("C", "c2") ]
    ~k:5 ()

let fig3 () =
  section
    "Figure 3 - Number of retained plans for Q2: traditional vs rank-aware\n\
     enumeration (paper reports 12 vs 17)";
  let cat = q2_catalog () in
  let query = q2 () in
  let t = count_plans cat query { Core.Enumerator.rank_aware = false; first_rows = false } 5 in
  let r = count_plans cat query Core.Enumerator.default_config 5 in
  row "%-34s %10s %10s\n" "" "traditional" "rank-aware";
  row "%-34s %10d %10d\n" "retained plans (ours)" t r;
  row "%-34s %10d %10d\n" "retained plans (paper)" 12 17;
  row
    "\nExpected shape: rank-awareness strictly increases retained plans.\n\
     got: %d -> %d (%s)\n"
    t r
    (if r > t then "OK" else "MISMATCH")

let table1 () =
  section "Table 1 - Interesting order expressions in Query Q2";
  let query = q2 () in
  row "%-44s %s\n" "Interesting Order Expression" "Reason";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (o : Core.Interesting_orders.interesting_order) ->
      let text = Expr.to_string o.Core.Interesting_orders.expr in
      if not (Hashtbl.mem seen text) then begin
        Hashtbl.add seen text ();
        row "%-44s %s\n" text
          (Core.Interesting_orders.reason_name o.Core.Interesting_orders.reason)
      end)
    (Core.Interesting_orders.derive query)

(* ------------------------------------------------------------------ *)
(* Figure 4: depth propagation through a rank-join pipeline. *)

let fig4 () =
  section
    "Figure 4 - Propagation of k through a pipeline of rank-joins\n\
     (k = 100 at the top; the paper's example propagates 100 -> 580 -> 783)";
  let cat = three_table_catalog ~n:10000 ~domain:1000 ~seed:31 () in
  let query = topk_query ~k:100 [ "A"; "B"; "C" ] in
  let env = Core.Cost_model.default_env ~k_min:100 cat query in
  let plan = Core.Plan.Top_k { k = 100; input = plan_p cat } in
  let ann = Core.Propagate.run env ~k:100 plan in
  print_string (Format.asprintf "%a" Core.Propagate.pp ann);
  (* Execute and report the actual depths for comparison. *)
  let result = Core.Executor.run ~hints:ann cat plan in
  row "\nMeasured depths after execution:\n";
  List.iter
    (fun rn ->
      row "  %-40s dL=%d dR=%d\n" rn.Core.Executor.label
        (Exec.Exec_stats.left_depth rn.Core.Executor.stats)
        (Exec.Exec_stats.right_depth rn.Core.Executor.stats))
    result.Core.Executor.rank_nodes

(* ------------------------------------------------------------------ *)
(* Figure 6: effect of k on the rank-join plan cost; crossover k*. *)

let fig6 () =
  section
    "Figure 6 - Effect of k on rank-join plan cost vs (k-independent)\n\
     sort plan cost; crossover k*";
  let cat = two_table_catalog ~n:5000 ~domain:2000 ~seed:41 () in
  let query = topk_query ~k:1 [ "A"; "B" ] in
  let env = Core.Cost_model.default_env ~k_min:1 cat query in
  let rank = hrjn_plan cat and sort = sort_plan cat in
  let rank_est = Core.Cost_model.estimate env rank in
  let sort_est = Core.Cost_model.estimate env sort in
  row "%10s  %14s  %14s\n" "k" "rank-join est." "sort est.";
  List.iter
    (fun k ->
      row "%10d  %14.1f  %14.1f\n" k
        (rank_est.Core.Cost_model.cost_at (float_of_int k))
        sort_est.Core.Cost_model.total_cost)
    [ 1; 5; 10; 25; 50; 100; 200; 400; 800; 1600; 3200; 6400; 12800 ];
  (match Core.Cost_model.k_star env ~rank_plan:rank ~sort_plan:sort with
  | Some k_star -> row "\nCrossover k* = %.0f (paper's example: k* = 176)\n" k_star
  | None -> row "\nRank plan cheaper for every feasible k (k* > n_a)\n");
  row
    "Expected shape: rank-join cost grows with k; the sort plan is flat;\n\
     they cross at one k*.\n"

(* ------------------------------------------------------------------ *)
(* Figures 13/14 plumbing: execute Plan P and compare estimated depths
   with measured ones at both rank-join nodes. *)

type depth_obs = {
  k : int;
  s : float;
  (* top operator (joins (A⋈B) with C): d1/d2 in the paper's notation *)
  top_actual : float * float;
  top_anyk : float * float;
  top_topk : float * float;
  (* child operator (joins A with B): d5/d6 *)
  child_actual : float * float;
  child_anyk : float * float;
  child_topk : float * float;
  child_buffer_actual : int;
  child_buffer_bound_measured : float;
  child_buffer_bound_estimated : float;
}

let observe_plan_p ?(depth_mode = `Worst) cat ~k =
  let query = topk_query ~k [ "A"; "B"; "C" ] in
  let env = Core.Cost_model.default_env ~depth_mode ~k_min:k cat query in
  let p = plan_p cat in
  let plan = Core.Plan.Top_k { k; input = p } in
  (* Estimates: top-k depths via Propagate (which recursively assigns k),
     any-k depths with the same required counts. *)
  let ann = Core.Propagate.run env ~k plan in
  let nodes = Core.Propagate.rank_join_annotations ann in
  let top_node, top_req, top_d, child_node, child_req, child_d =
    match nodes with
    | [ (n1, r1, d1); (n2, r2, d2) ] -> (n1, r1, d1, n2, r2, d2)
    | _ -> failwith "expected two rank-join nodes"
  in
  let anyk node req =
    match node with
    | Core.Plan.Join { cond; left; right; _ } ->
        let d = Core.Cost_model.any_k_depths_for env ~k:req ~cond ~left ~right in
        (d.Core.Depth_model.d_left, d.Core.Depth_model.d_right)
    | _ -> failwith "not a join"
  in
  let s =
    match top_node with
    | Core.Plan.Join { cond; _ } -> Core.Cost_model.join_selectivity env cond
    | _ -> 0.0
  in
  (* Execute and measure; the operator polls in the model's estimated depth
     ratio, as the optimizer-integrated executor does. *)
  let result = Core.Executor.run ~hints:ann cat plan in
  let child_stats, top_stats =
    match result.Core.Executor.rank_nodes with
    | [ a; b ] ->
        (* compile pushes the deeper node first *)
        (a.Core.Executor.stats, b.Core.Executor.stats)
    | _ -> failwith "expected two rank nodes in execution"
  in
  let child_dl = float_of_int (Exec.Exec_stats.left_depth child_stats) in
  let child_dr = float_of_int (Exec.Exec_stats.right_depth child_stats) in
  {
    k;
    s;
    top_actual =
      ( float_of_int (Exec.Exec_stats.left_depth top_stats),
        float_of_int (Exec.Exec_stats.right_depth top_stats) );
    top_anyk = anyk top_node top_req;
    top_topk = (top_d.Core.Depth_model.d_left, top_d.Core.Depth_model.d_right);
    child_actual = (child_dl, child_dr);
    child_anyk = anyk child_node child_req;
    child_topk = (child_d.Core.Depth_model.d_left, child_d.Core.Depth_model.d_right);
    child_buffer_actual = (Exec.Exec_stats.buffer_max child_stats);
    child_buffer_bound_measured = child_dl *. child_dr *. s;
    child_buffer_bound_estimated =
      child_d.Core.Depth_model.d_left *. child_d.Core.Depth_model.d_right *. s;
  }

let print_depth_table label obs pick =
  row "\n%s\n" label;
  row "%8s  %10s %10s  %10s %10s  %10s %10s  %7s\n" "k" "actual dL" "actual dR"
    "anyk dL" "anyk dR" "topk dL" "topk dR" "err%%";
  List.iter
    (fun o ->
      let (al, ar), (cl, cr), (tl, tr) = pick o in
      let err =
        0.5 *. (pct_error ~actual:al ~estimate:tl +. pct_error ~actual:ar ~estimate:tr)
      in
      row "%8d  %10.0f %10.0f  %10.0f %10.0f  %10.0f %10.0f  %6.1f%%\n" o.k al ar
        cl cr tl tr err)
    obs

let fig13 () =
  section
    "Figure 13 - Actual vs estimated input cardinality (depth) of the two\n\
     rank-join operators in Plan P, for different values of k\n\
     (3 inputs, n = 10000, selectivity = 1/1000)";
  let cat = three_table_catalog ~n:10000 ~domain:1000 ~seed:51 () in
  let obs = List.map (fun k -> observe_plan_p cat ~k) [ 5; 10; 20; 50; 100; 200; 400 ] in
  print_depth_table
    "(a) top rank-join operator: d1, d2 (paper: estimation error < 25-30%)" obs
    (fun o -> (o.top_actual, o.top_anyk, o.top_topk));
  print_depth_table
    "(b) child rank-join operator: d5, d6" obs
    (fun o -> (o.child_actual, o.child_anyk, o.child_topk));
  row
    "\nExpected shape: Any-k estimate is a lower bound; measured depth lies\n\
     between Any-k and Top-k estimates; error bounded (~30%%).\n"

let fig14 () =
  section
    "Figure 14 - Actual vs estimated depths of Plan P for different join\n\
     selectivities (k = 50, n = 10000)";
  let obs =
    List.map
      (fun domain ->
        let cat = three_table_catalog ~n:10000 ~domain ~seed:61 () in
        observe_plan_p cat ~k:50)
      [ 5000; 2000; 1000; 500; 200; 100 ]
  in
  row "\n(a) top rank-join operator: d1, d2\n";
  row "%12s  %10s %10s  %10s %10s  %10s %10s\n" "selectivity" "actual dL"
    "actual dR" "anyk dL" "anyk dR" "topk dL" "topk dR";
  List.iter
    (fun o ->
      let al, ar = o.top_actual and cl, cr = o.top_anyk and tl, tr = o.top_topk in
      row "%12.5f  %10.0f %10.0f  %10.0f %10.0f  %10.0f %10.0f\n" o.s al ar cl cr
        tl tr)
    obs;
  row "\n(b) child rank-join operator: d5, d6\n";
  row "%12s  %10s %10s  %10s %10s  %10s %10s\n" "selectivity" "actual dL"
    "actual dR" "anyk dL" "anyk dR" "topk dL" "topk dR";
  List.iter
    (fun o ->
      let al, ar = o.child_actual and cl, cr = o.child_anyk and tl, tr = o.child_topk in
      row "%12.5f  %10.0f %10.0f  %10.0f %10.0f  %10.0f %10.0f\n" o.s al ar cl cr
        tl tr)
    obs;
  row
    "\nExpected shape: lower selectivity requires deeper inputs; estimates\n\
     track the measurement within ~30%%.\n"

let fig15 () =
  section
    "Figure 15 - Rank-join buffer size: measured vs upper bounds\n\
     (child rank-join of Plan P; bound = dL * dR * s)";
  let cat = three_table_catalog ~n:10000 ~domain:1000 ~seed:71 () in
  let obs = List.map (fun k -> observe_plan_p cat ~k) [ 5; 10; 20; 50; 100; 200; 400 ] in
  row "%8s  %14s  %18s  %18s\n" "k" "measured" "bound (meas. d)" "bound (est. d)";
  List.iter
    (fun o ->
      row "%8d  %14d  %18.0f  %18.0f\n" o.k o.child_buffer_actual
        o.child_buffer_bound_measured o.child_buffer_bound_estimated)
    obs;
  row
    "\nExpected shape: measured buffer below both upper bounds; the gap grows\n\
     with k (results are reported progressively before the join completes).\n"

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out, and the filter/restart
   baseline from the paper's related work. *)

let ablate_polling () =
  section
    "Ablation - HRJN polling strategy (Plan P, k = 50, n = 10000, s = 1e-3)\n\
     total input tuples consumed under each strategy";
  let cat = three_table_catalog ~n:10000 ~domain:1000 ~seed:91 () in
  let k = 50 in
  let query = topk_query ~k [ "A"; "B"; "C" ] in
  let env = Core.Cost_model.default_env ~k_min:k cat query in
  let p = plan_p cat in
  let plan = Core.Plan.Top_k { k; input = p } in
  let ann = Core.Propagate.run env ~k plan in
  row "%-28s %12s %12s %14s\n" "strategy" "top dL+dR" "child dL+dR" "grand total";
  let total stats =
    (Exec.Exec_stats.left_depth stats) + (Exec.Exec_stats.right_depth stats)
  in
  let report name result =
    match result.Core.Executor.rank_nodes with
    | [ child; top ] ->
        let t = total top.Core.Executor.stats
        and c = total child.Core.Executor.stats in
        row "%-28s %12d %12d %14d\n" name t c (t + c)
    | _ -> row "%-28s (unexpected plan shape)\n" name
  in
  (* Alternate / adaptive via a bare run (no hints); ratio via hints. *)
  report "alternate (no hints)" (Core.Executor.run cat plan);
  report "model-ratio (hints)" (Core.Executor.run ~hints:ann cat plan);
  row
    "\nFinding: ratio polling steers the top operator onto the model's\n\
     asymmetric trajectory (making depths predictable within Fig. 13's error\n\
     band) at the cost of slightly more total consumption than alternation.\n"

let ablate_depth_mode () =
  section
    "Ablation - depth model closed form: average-case vs worst-case vs actual\n\
     (child rank-join of Plan P, n = 10000, s = 1e-3)";
  let cat = three_table_catalog ~n:10000 ~domain:1000 ~seed:92 () in
  row "%8s  %10s  %12s  %12s\n" "k" "actual" "average est." "worst est.";
  List.iter
    (fun k ->
      let worst = observe_plan_p ~depth_mode:`Worst cat ~k in
      let avg = observe_plan_p ~depth_mode:`Average cat ~k in
      let actual = fst worst.child_actual in
      row "%8d  %10.0f  %12.0f  %12.0f\n" k actual (fst avg.child_topk)
        (fst worst.child_topk))
    [ 5; 20; 50; 200 ];
  row
    "\nExpected: the worst-case form tracks the measured depth (the operator\n\
     stops on a certification bound); the average-case form undershoots.\n"

let ablate_rank_awareness () =
  section
    "Ablation - measured execution I/O of the optimizer's chosen plan:\n\
     traditional vs rank-aware optimizer (n = 5000, k = 10)";
  row "%12s  %16s  %16s  %24s\n" "selectivity" "traditional I/O" "rank-aware I/O"
    "rank-aware plan";
  List.iter
    (fun domain ->
      let run config =
        let cat = two_table_catalog ~n:5000 ~domain ~seed:93 () in
        let query = topk_query ~k:10 [ "A"; "B" ] in
        let planned = Core.Optimizer.optimize ~config cat query in
        Storage.Catalog.reset_io cat;
        let result = Core.Optimizer.execute cat planned in
        (Storage.Io_stats.total_io result.Core.Executor.io, planned)
      in
      let t_io, _ = run { Core.Enumerator.rank_aware = false; first_rows = false } in
      let r_io, r_planned = run Core.Enumerator.default_config in
      row "%12.5f  %16d  %16d  %24s\n"
        (Workload.Generator.selectivity_of_domain domain)
        t_io r_io
        (Core.Plan.describe r_planned.Core.Optimizer.plan))
    [ 100000; 2000; 500; 100 ];
  row
    "\nExpected: at very low selectivity both optimizers pick (near-)sort\n\
     plans; at moderate-to-high selectivity the rank-aware optimizer's plan\n\
     does orders of magnitude less I/O.\n"

let baseline_filter_restart () =
  section
    "Baseline - filter/restart (related work, Section 6) vs the rank-join\n\
     plan: measured I/O and restarts (n = 5000, s = 1/200)";
  let k_values = [ 1; 5; 10; 50; 100 ] in
  row "%8s  %14s  %10s  %14s\n" "k" "f/r I/O" "restarts" "rank-join I/O";
  List.iter
    (fun k ->
      let cat = two_table_catalog ~n:5000 ~domain:200 ~seed:94 () in
      let query = topk_query ~k [ "A"; "B" ] in
      match Core.Filter_restart.top_k cat query with
      | Error e -> row "%8d  filter/restart failed: %s\n" k e
      | Ok (_, stats) ->
          let fr_io = List.fold_left ( + ) 0 stats.Core.Filter_restart.attempts_io in
          let cat2 = two_table_catalog ~n:5000 ~domain:200 ~seed:94 () in
          let planned = Core.Optimizer.optimize cat2 query in
          Storage.Catalog.reset_io cat2;
          let result = Core.Optimizer.execute cat2 planned in
          let rj_io = Storage.Io_stats.total_io result.Core.Executor.io in
          row "%8d  %14d  %10d  %14d\n" k fr_io stats.Core.Filter_restart.restarts rj_io)
    k_values;
  row
    "\nExpected: filter/restart pays full scans per attempt (plus wasted\n\
     restarts); the rank-join plan's I/O scales with the needed depth only.\n"

(* N-ary flat rank-join vs the binary HRJN pipeline (extension beyond the
   paper: the direction its operator line later explored). *)
let ablate_nary () =
  section
    "Ablation - flat N-ary HRJN vs binary HRJN pipeline\n\
     (3 inputs joined on a shared key, n = 10000, s = 1e-3)";
  let cat = three_table_catalog ~n:10000 ~domain:1000 ~seed:95 () in
  let scored t =
    let ix =
      Option.get
        (Storage.Catalog.find_index_on_expr cat ~table:t (score_of t))
    in
    Exec.Scan.index_desc_scored cat ix
  in
  let key_of t =
    let info = Storage.Catalog.table cat t in
    let idx =
      Relalg.Schema.index_of_exn info.Storage.Catalog.tb_schema ~relation:t "key"
    in
    fun tu -> Relalg.Tuple.get tu idx
  in
  row "%8s  %16s  %16s\n" "k" "nary total depth" "pipeline total";
  List.iter
    (fun k ->
      (* Flat. *)
      let stream, nstats =
        Exec.Rank_join_nary.hrjn_nary
          ~inputs:
            (List.map
               (fun t -> { Exec.Rank_join_nary.stream = scored t; key = key_of t })
               [ "A"; "B"; "C" ])
          ()
      in
      ignore (Exec.Operator.scored_take stream k);
      let nary_total =
        Array.fold_left ( + ) 0 (Exec.Exec_stats.depths nstats)
      in
      (* Binary pipeline via the executor (alternate polling). *)
      let plan = Core.Plan.Top_k { k; input = plan_p cat } in
      let result = Core.Executor.run cat plan in
      let pipe_total =
        List.fold_left
          (fun acc rn ->
            acc
            + (Exec.Exec_stats.left_depth rn.Core.Executor.stats)
            + (Exec.Exec_stats.right_depth rn.Core.Executor.stats))
          0 result.Core.Executor.rank_nodes
      in
      row "%8d  %16d  %16d\n" k nary_total pipe_total)
    [ 5; 20; 50; 200 ];
  row
    "\nExpected: the flat operator consumes fewer base tuples overall (no\n\
     intermediate-k inflation through the pipeline), at the price of larger\n\
     in-flight combination state.\n"

(* Histogram-slab (weight-aware) depth estimation vs execution, for a
   weighted two-way ranking (extension validation). *)
let ablate_slabs () =
  section
    "Ablation - weight-aware (histogram-slab) depth estimation\n\
     (2 inputs, n = 4000, s = 1/400, k = 10; weights swept)";
  row "%14s  %10s %10s  %12s %12s\n" "weights" "est dL" "est dR" "actual dL" "actual dR";
  List.iter
    (fun (wa, wb) ->
      let cat = two_table_catalog ~n:4000 ~domain:400 ~seed:96 ~pool_frames:512 () in
      let query = topk_query ~weights:[ ("A", wa); ("B", wb) ] ~k:10 [ "A"; "B" ] in
      let env = Core.Cost_model.default_env ~k_min:10 cat query in
      let plan =
        Core.Plan.Join
          {
            algo = Core.Plan.Hrjn;
            cond = cond ~left:"A" ~right:"B";
            left = index_scan_desc cat "A";
            right = index_scan_desc cat "B";
            left_score = Some (Relalg.Expr.Mul (Relalg.Expr.cfloat wa, score_of "A"));
            right_score = Some (Relalg.Expr.Mul (Relalg.Expr.cfloat wb, score_of "B"));
          }
      in
      let d =
        match plan with
        | Core.Plan.Join { cond; left; right; _ } ->
            Core.Cost_model.rank_join_depths env plan ~k:10.0 ~cond ~left ~right
        | _ -> assert false
      in
      let topk = Core.Plan.Top_k { k = 10; input = plan } in
      let ann = Core.Propagate.run env ~k:10 topk in
      let result = Core.Executor.run ~hints:ann cat topk in
      match result.Core.Executor.rank_nodes with
      | [ rn ] ->
          row "%6.1f / %5.1f  %10.0f %10.0f  %12d %12d\n" wa wb
            d.Core.Depth_model.d_left d.Core.Depth_model.d_right
            (Exec.Exec_stats.left_depth rn.Core.Executor.stats)
            (Exec.Exec_stats.right_depth rn.Core.Executor.stats)
      | _ -> row "unexpected plan shape\n")
    [ (0.5, 0.5); (0.7, 0.3); (0.9, 0.1) ];
  row
    "\nExpected: skewed weights skew both the estimated and the executed\n\
     consumption toward the low-weight input (finer discrimination needed\n\
     there), which a weight-blind uniform model cannot predict.\n"

(* ------------------------------------------------------------------ *)
(* Per-operator profile: the metrics registry serialised as JSON rows. *)

let profile () =
  section
    "Profile - per-operator execution metrics (BENCH JSON)\n\
     (one JSON object per operator: depths, emitted, buffer, attributed I/O)";
  let cat = three_table_catalog ~n:5000 ~domain:500 ~seed:77 () in
  let query = topk_query ~k:25 [ "A"; "B"; "C" ] in
  let env = Core.Cost_model.default_env ~k_min:25 cat query in
  let plan = Core.Plan.Top_k { k = 25; input = plan_p cat } in
  let ann = Core.Propagate.run env ~k:25 plan in
  let metrics = Exec.Metrics.create (Storage.Catalog.io cat) in
  let result = Core.Executor.run ~hints:ann ~metrics cat plan in
  row "rows returned: %d\n" (List.length result.Core.Executor.rows);
  List.iter
    (fun node -> row "BENCH %s\n" (Exec.Metrics.node_to_json node))
    (Exec.Metrics.nodes metrics);
  (match result.Core.Executor.profile with
  | Some p -> row "\nAnnotated tree:\n%s" (Core.Analyze.render ~env ~hints:ann p)
  | None -> ())
