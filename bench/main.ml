(* Experiment harness: regenerates every table and figure of the paper's
   evaluation. Run all experiments with

     dune exec bench/main.exe

   or a subset, e.g.

     dune exec bench/main.exe -- fig1 fig13 micro *)

let experiments =
  [
    ("fig1", Experiments.fig1);
    ("fig2", Experiments.fig2);
    ("fig3", Experiments.fig3);
    ("table1", Experiments.table1);
    ("fig4", Experiments.fig4);
    ("fig6", Experiments.fig6);
    ("fig13", Experiments.fig13);
    ("fig14", Experiments.fig14);
    ("fig15", Experiments.fig15);
    ("ablate-polling", Experiments.ablate_polling);
    ("ablate-depthmode", Experiments.ablate_depth_mode);
    ("ablate-rankaware", Experiments.ablate_rank_awareness);
    ("ablate-nary", Experiments.ablate_nary);
    ("ablate-slabs", Experiments.ablate_slabs);
    ("baseline-fr", Experiments.baseline_filter_restart);
    ("profile", Experiments.profile);
    ("micro", Micro.run);
    ("serve", Serve_bench.run);
    ("lint", Lint_bench.run);
    ("perf", fun () -> Perf.run ());
    ("perf-smoke", fun () -> Perf.run ~smoke:true ());
    ("anyk", fun () -> Anyk_bench.run ());
    ("anyk-smoke", fun () -> Anyk_bench.run ~smoke:true ());
    ("leaderboard", fun () -> Leaderboard_bench.run ());
    ("leaderboard-smoke", fun () -> Leaderboard_bench.run ~smoke:true ());
    ("shard", fun () -> Shard_bench.run ());
    ("shard-smoke", fun () -> Shard_bench.run ~smoke:true ());
    ("sanitize", fun () -> Sanitize_bench.run ());
    ("sanitize-smoke", fun () -> Sanitize_bench.run ~smoke:true ());
    ("vector", fun () -> Vector_bench.run ());
    ("vector-smoke", fun () -> Vector_bench.run ~smoke:true ());
  ]

let usage () =
  Printf.printf "usage: main.exe [experiment ...]\navailable experiments:\n";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | [ "--help" ] | [ "-h" ] | [ "help" ] -> usage ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.printf "unknown experiment %s\n" name;
              usage ();
              exit 1)
        names
