(* Lockcheck instrumentation overhead on the serve mix.

   Runs Serve_bench's closed-loop client/worker workload twice over the
   same catalog — hooks uninstalled (production configuration: every latch
   op is one ref read and a branch) and hooks installed (full per-thread
   acquire/release tracing with the online LK rules) — and reports the
   relative slowdown. The sanitize CI gate targets <= 10% so the
   instrumented replay stays cheap enough to run on every merge.

   The instrumented side must also report zero diagnostics: the bench
   doubles as a discipline sweep over the serve path. Appends one JSON row
   to BENCH_RANKOPT.json (smoke mode prints without appending). *)

let bench_file = "BENCH_RANKOPT.json"

let run ?(smoke = false) () =
  Bench_util.section "sanitize: lockcheck instrumentation overhead (serve mix)";
  let catalog = Bench_util.two_table_catalog ~n:5000 ~domain:200 ~seed:42 () in
  let n = if smoke then 400 else 2000 in
  let reps = if smoke then 1 else 5 in
  (* Same configuration as [Serve_bench.run] so the overhead row is an
     apples-to-apples companion of the serve throughput row. *)
  let workers = 4 and clients = 4 in
  (* Warm the buffer pool and the code paths once, uninstrumented. *)
  ignore (Serve_bench.run_service catalog ~workers ~clients n);
  let errors = ref 0 in
  let plain () =
    let dt, _, _, errs = Serve_bench.run_service catalog ~workers ~clients n in
    errors := !errors + errs;
    dt
  in
  let events = ref 0 and diags = ref [] in
  let traced () =
    let dt, su, ds =
      Sanitize.Engine.checked (fun () ->
          let dt, _, _, errs =
            Serve_bench.run_service catalog ~workers ~clients n
          in
          errors := !errors + errs;
          dt)
    in
    events := su.Sanitize.Trace.su_events;
    diags := !diags @ ds;
    dt
  in
  (* Interleave the two sides rep by rep and take each side's best: load
     drift on a shared container spans seconds, so back-to-back pairs see
     the same conditions where sequential blocks would not. *)
  let off_s = ref infinity and on_s = ref infinity in
  for _ = 1 to reps do
    off_s := Float.min !off_s (plain ());
    on_s := Float.min !on_s (traced ())
  done;
  let off_s = !off_s and on_s = !on_s in
  let overhead = (on_s -. off_s) /. off_s in
  List.iter
    (fun d -> print_endline ("  " ^ Lint.Diag.to_string d))
    !diags;
  Bench_util.row "%-28s %12s %12s\n" "" "hooks off" "hooks on";
  Bench_util.row "%-28s %11.4fs %11.4fs\n" "serve mix wall time" off_s on_s;
  Bench_util.row "%-28s %12s %11.1f%%\n" "overhead" "" (100.0 *. overhead);
  Bench_util.row "%-28s %12s %12d\n" "events traced" "" !events;
  Bench_util.row "%-28s %12s %12d\n" "diagnostics" "" (List.length !diags);
  let row =
    Printf.sprintf
      "{\"bench\":\"sanitize\",\"statements\":%d,\"workers\":%d,\
       \"clients\":%d,\"cores\":%d,\"off_s\":%.4f,\"on_s\":%.4f,\
       \"overhead\":%.4f,\"events\":%d,\"diags\":%d,\"errors\":%d}"
      n workers clients
      (Domain.recommended_domain_count ())
      off_s on_s overhead !events (List.length !diags) !errors
  in
  print_endline row;
  if not smoke then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_file in
    output_string oc row;
    output_char oc '\n';
    close_out oc;
    Printf.printf "(1 row appended to %s)\n" bench_file
  end
