(* Leaderboard workload: hot by-rank pages and rank-of-value probes over a
   single scored table, interleaved with score updates.

   Two questions the order-statistic index exists to answer:

   - scaling: a "page i..j of the leaderboard" window served by counted
     B+-tree descent is O(log n + page) while the drain-sort-slice
     fallback re-sorts the whole table per request — per-window latency
     for the descent should stay near-flat as n grows while the fallback
     grows superlinearly;
   - the mixed serving loop: window queries through the full SQL path
     (plan cache included), RANK-style probes, and UPDATEs that bump the
     table's stats epoch and force re-optimization of cached windows.

   Appends one JSON row to BENCH_RANKOPT.json recording both the indexed
   and sorted per-window timings at every n (smoke mode prints without
   appending, so `make ci` stays clean-tree). *)

let bench_file = "BENCH_RANKOPT.json"

let wall f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

let ok_or what = function
  | Ok r -> r
  | Error e -> failwith (what ^ ": " ^ Server.Service.error_message e)

let page = 20

let window_sql lo hi =
  Printf.sprintf
    "SELECT L.id, L.score FROM L WHERE rank() BETWEEN %d AND %d ORDER BY \
     L.score DESC"
    lo hi

let build_catalog ~n ~seed =
  let cat = Storage.Catalog.create ~pool_frames:256 () in
  ignore
    (Workload.Generator.load_scored_table cat
       (Rkutil.Prng.create seed)
       ~name:"L" ~n ~key_domain:(max 1 (n / 10)) ());
  cat

let score = Relalg.Expr.col ~relation:"L" "score"

(* Average per-window seconds for both physical variants over the same
   random windows, executed directly so the comparison is pure operator
   cost (no parse/bind noise). Returns (indexed_s, sorted_s). *)
let measure_windows cat ~n ~windows prng =
  let run plan =
    (Core.Executor.run cat plan : Core.Executor.run_result).Core.Executor.rows
  in
  let indexed = ref 0.0 and sorted = ref 0.0 in
  for _ = 1 to windows do
    let lo = 1 + Rkutil.Prng.int prng (max 1 (n - page)) in
    let hi = lo + page - 1 in
    let by_rank =
      Core.Plan.Rank_index_scan
        { table = "L"; index = Some "L_score"; score; lo; hi; dense = false }
    in
    let by_sort =
      Core.Plan.Rank_index_scan
        { table = "L"; index = None; score; lo; hi; dense = false }
    in
    let ti, rows_i = wall (fun () -> run by_rank) in
    let ts, rows_s = wall (fun () -> run by_sort) in
    if List.length rows_i <> List.length rows_s then
      failwith "leaderboard bench: variants disagree on window cardinality";
    indexed := !indexed +. ti;
    sorted := !sorted +. ts
  done;
  (!indexed /. float_of_int windows, !sorted /. float_of_int windows)

(* Mixed serving loop through a live service: 60% window pages, 20% rank
   probes, 20% score updates. Returns (ops/s, reoptimized count). *)
let serving_mix ~n ~ops prng cat =
  let config = { Server.Service.default_config with workers = 2 } in
  let svc = Server.Service.create ~config cat in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
  let sess = Server.Service.open_session svc in
  let reopt = ref 0 in
  let dt, () =
    wall (fun () ->
        for _ = 1 to ops do
          match Rkutil.Prng.int prng 5 with
          | 0 | 1 | 2 ->
              (* A hot page near the top — the cacheable fast path. *)
              let lo = 1 + Rkutil.Prng.int prng 5 in
              let reply =
                ok_or "window"
                  (Server.Service.query sess (window_sql lo (lo + page - 1)))
              in
              if reply.Server.Service.reoptimized then incr reopt
          | 3 ->
              ignore
                (ok_or "probe"
                   (Server.Service.rank_probe sess ~table:"L" ~column:"score"
                      (Rkutil.Prng.uniform prng))
                  : int option * int)
          | _ ->
              let id = Rkutil.Prng.int prng n in
              let v = Rkutil.Prng.uniform prng in
              ignore
                (ok_or "update"
                   (Server.Service.query sess
                      (Printf.sprintf "UPDATE L SET score = %f WHERE id = %d"
                         v id))
                  : Server.Service.reply)
        done)
  in
  (float_of_int ops /. dt, !reopt)

let run ?(smoke = false) () =
  Bench_util.section
    "leaderboard: by-rank index descent vs drain-sort-slice";
  let sizes = if smoke then [ 1000; 4000 ] else [ 4000; 16000; 64000 ] in
  let windows = if smoke then 10 else 40 in
  let prng = Rkutil.Prng.create 11 in
  (* Sanity: the optimizer's own arbitration must pick the counted descent
     on an indexed table. *)
  let chosen =
    let cat = build_catalog ~n:2000 ~seed:3 in
    match Sqlfront.Sql.query cat (window_sql 5 24) with
    | Ok a -> Core.Plan.describe a.Sqlfront.Sql.planned.Core.Optimizer.plan
    | Error e -> failwith ("leaderboard bench plan probe: " ^ e)
  in
  Bench_util.row "optimizer chooses: %s\n" chosen;
  Bench_util.row "%-10s %16s %16s %10s\n" "n" "indexed_ms" "sorted_ms"
    "speedup";
  let per_size =
    List.map
      (fun n ->
        let cat = build_catalog ~n ~seed:(41 + n) in
        (* Warm the pool so both variants measure compute, not cold I/O. *)
        ignore (Core.Executor.run cat (Core.Plan.Table_scan { table = "L" }));
        let indexed_s, sorted_s = measure_windows cat ~n ~windows prng in
        Bench_util.row "%-10d %15.4f %15.4f %9.1fx\n" n (1000.0 *. indexed_s)
          (1000.0 *. sorted_s)
          (sorted_s /. Float.max 1e-9 indexed_s);
        (n, indexed_s, sorted_s))
      sizes
  in
  (* Sub-linearity check: as n grows by g, the sorted side should scale
     at least with g while the descent stays near-flat. *)
  (let n0, i0, s0 = List.hd per_size in
   let n1, i1, s1 = List.nth per_size (List.length per_size - 1) in
   let growth r a b = b /. Float.max 1e-9 a |> fun x -> (r, x) in
   let _, gi = growth "indexed" i0 i1 and _, gs = growth "sorted" s0 s1 in
   Bench_util.row
     "n grew %.0fx: indexed per-window cost grew %.1fx, sorted grew %.1fx%s\n"
     (float_of_int n1 /. float_of_int n0)
     gi gs
     (if gi < gs then "" else "  [INDEXED NOT SUB-LINEAR]"));
  let mix_n = List.hd (List.rev sizes) in
  let mix_ops = if smoke then 40 else 400 in
  let mix_cat = build_catalog ~n:mix_n ~seed:97 in
  let ops_s, reopt = serving_mix ~n:mix_n ~ops:mix_ops prng mix_cat in
  Bench_util.row
    "serving mix (n=%d, %d ops: 60%% pages / 20%% probes / 20%% updates): \
     %.0f ops/s, %d reoptimizations after epoch bumps\n"
    mix_n mix_ops ops_s reopt;
  let row =
    let per_size_json =
      String.concat ","
        (List.map
           (fun (n, i, s) ->
             Printf.sprintf
               "{\"n\":%d,\"indexed_ms\":%.4f,\"sorted_ms\":%.4f}" n
               (1000.0 *. i) (1000.0 *. s))
           per_size)
    in
    Printf.sprintf
      "{\"bench\":\"leaderboard\",\"page\":%d,\"windows\":%d,\
       \"sizes\":[%s],\"mix_n\":%d,\"mix_ops\":%d,\"mix_ops_per_s\":%.1f,\
       \"mix_reoptimized\":%d,\"plan\":\"%s\"}"
      page windows per_size_json mix_n mix_ops ops_s reopt chosen
  in
  print_endline row;
  if not smoke then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_file in
    output_string oc row;
    output_char oc '\n';
    close_out oc;
    Printf.printf "(1 row appended to %s)\n" bench_file
  end
