(* Perf baselines on disk.

   Measures serial vs parallel wall time for the fig1-style drain query
   (join + sort + top-k over everything — the regime exchanges exist for),
   guards the early-out regime (small k: the optimizer must keep the plan
   serial and pay no overhead), and records compact serve/lint wall times.
   Each measurement appends one JSON row (one object per line) to
   BENCH_RANKOPT.json so successive PRs accumulate a perf trajectory.

   Smoke mode (`make bench-smoke`, the `perf-smoke` experiment) runs a
   reduced-size subset in a few seconds and prints the rows without
   appending — CI runs it and must leave the working tree clean.

   Parallel speedup scales with physical cores: the `cores` field records
   [Domain.recommended_domain_count ()] so a row from a single-core CI
   container (speedup ~1.0) is not mistaken for a regression against a
   multicore workstation row. *)

let bench_file = "BENCH_RANKOPT.json"

let wall f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

(* Best-of-N: robust against one-off scheduler noise without bechamel's
   startup cost; the drain query runs long enough to dominate timer
   resolution. *)
let time_best ?(repeats = 3) f =
  let rec go best left =
    if left = 0 then best
    else
      let dt, _ = wall f in
      go (Float.min best dt) (left - 1)
  in
  go Float.infinity repeats

let emit ~append rows =
  List.iter print_endline rows;
  if append then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_file in
    List.iter
      (fun r ->
        output_string oc r;
        output_char oc '\n')
      rows;
    close_out oc;
    Printf.printf "(%d row(s) appended to %s)\n" (List.length rows) bench_file
  end

let cores () = Domain.recommended_domain_count ()

let with_pool domains f =
  let pool = Rkutil.Task_pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Rkutil.Task_pool.shutdown pool)
    (fun () -> f pool)

let score_multiset (res : Core.Executor.run_result) =
  List.sort compare (List.map snd res.Core.Executor.rows)

(* The fig1-style drain query in the sort-plan regime: a selective join
   (low 1/domain selectivity) makes the rank-join's early-out useless, so
   scan + hash join + sort over everything wins. Serial is the canonical
   [Top_k (Sort (Hash ...))]; parallel is its exchange form — the exact
   plan the fuse_topk rewrite emits — measured plan-against-plan so the
   row isolates executor scaling from plan choice (which the earlyout row
   and the optimizer tests cover). *)
let drain_rows ~smoke () =
  Bench_util.section "perf: drain query, serial vs parallel";
  let n = if smoke then 6000 else 16000 in
  let domain = 8 * n in
  let repeats = if smoke then 2 else 3 in
  let cat = Bench_util.two_table_catalog ~n ~pool_frames:256 ~domain ~seed:7 () in
  let k = n / 8 in
  let serial_plan = Core.Plan.Top_k { k; input = Bench_util.sort_plan cat } in
  let query = Bench_util.topk_query ~k [ "A"; "B" ] in
  let placed =
    let env = Core.Cost_model.default_env ~k_min:k ~dop:4 cat query in
    Core.Parallel.has_exchange
      (Core.Optimizer.optimize ~env cat query).Core.Optimizer.plan
  in
  let serial_res = Core.Executor.run cat serial_plan in
  let serial_dt =
    time_best ~repeats (fun () -> ignore (Core.Executor.run cat serial_plan))
  in
  Bench_util.row "%-34s %10.3fs  (%s%s)\n" "serial" serial_dt
    (Core.Plan.describe serial_plan)
    (if placed then "; optimizer places an exchange at dop=4"
     else "; optimizer did NOT place an exchange at dop=4");
  let degrees = if smoke then [ 2; 4 ] else [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun d ->
        let par_plan = Core.Plan.Exchange { dop = d; input = serial_plan } in
        let dt, ok =
          with_pool d (fun pool ->
              let res = Core.Executor.run ~pool cat par_plan in
              let ok = score_multiset res = score_multiset serial_res in
              ( time_best ~repeats (fun () ->
                    ignore (Core.Executor.run ~pool cat par_plan)),
                ok ))
        in
        let speedup = serial_dt /. dt in
        Bench_util.row "%-34s %10.3fs  %5.2fx%s\n"
          (Printf.sprintf "parallel dop=%d" d)
          dt speedup
          (if ok then "" else "  [SCORES DIVERGE]");
        Printf.sprintf
          "{\"bench\":\"drain\",\"n\":%d,\"k\":%d,\"dop\":%d,\"cores\":%d,\
           \"exchange_planned\":%b,\"serial_s\":%.4f,\"parallel_s\":%.4f,\
           \"speedup\":%.3f,\"correct\":%b}"
          n k d (cores ()) placed serial_dt dt speedup ok)
      degrees
  in
  rows

(* Early-out guard: at small k the rank-join plan must stay serial under a
   parallel-enabled cost model, and planning with dop>1 must not slow the
   query down (the exchange-startup charge and the k* rule arbitrate). *)
let earlyout_rows ~smoke () =
  Bench_util.section "perf: early-out top-k stays serial";
  let n = if smoke then 4000 else 12000 in
  let domain = 50 in
  let repeats = if smoke then 3 else 5 in
  let cat = Bench_util.two_table_catalog ~n ~pool_frames:64 ~domain ~seed:7 () in
  let k = 10 in
  let query = Bench_util.topk_query ~k [ "A"; "B" ] in
  let serial = Core.Optimizer.optimize cat query in
  let env = Core.Cost_model.default_env ~k_min:k ~dop:4 cat query in
  let par_planned = Core.Optimizer.optimize ~env cat query in
  let kept_serial =
    not (Core.Parallel.has_exchange par_planned.Core.Optimizer.plan)
  in
  let serial_dt =
    time_best ~repeats (fun () -> ignore (Core.Optimizer.execute cat serial))
  in
  let par_dt =
    with_pool 4 (fun pool ->
        time_best ~repeats (fun () ->
            ignore (Core.Optimizer.execute ~pool cat par_planned)))
  in
  Bench_util.row "%-34s %10.4fs  (%s)\n" "serial plan" serial_dt
    (Core.Plan.describe serial.Core.Optimizer.plan);
  Bench_util.row "%-34s %10.4fs  plan %s\n" "planned with dop=4" par_dt
    (if kept_serial then "stayed serial" else "grew an exchange");
  [
    Printf.sprintf
      "{\"bench\":\"earlyout\",\"n\":%d,\"k\":%d,\"cores\":%d,\
       \"kept_serial\":%b,\"serial_s\":%.5f,\"dop4_s\":%.5f,\
       \"overhead\":%.4f}"
      n k (cores ()) kept_serial serial_dt par_dt
      ((par_dt -. serial_dt) /. serial_dt);
  ]

(* Compact serve/lint rows: wall time of a fixed statement burst through
   the service (reusing the serve bench's load generator) and of a fixed
   planlint sweep — enough signal for a trajectory without the full
   bench runs. *)
let serve_row ~smoke () =
  Bench_util.section "perf: service statement burst";
  let catalog = Bench_util.two_table_catalog ~n:2000 ~domain:100 ~seed:42 () in
  let stmts = if smoke then 300 else 1500 in
  ignore (Serve_bench.run_serial catalog 30) (* warm pool + caches *);
  let serial_dt = Serve_bench.run_serial catalog stmts in
  let service_dt, _, _, errors =
    Serve_bench.run_service catalog ~workers:2 ~clients:2 stmts
  in
  Bench_util.row "serial %.3fs; service(2w/2c) %.3fs; errors %d\n" serial_dt
    service_dt errors;
  [
    Printf.sprintf
      "{\"bench\":\"serve\",\"statements\":%d,\"cores\":%d,\
       \"serial_s\":%.4f,\"service_s\":%.4f,\"errors\":%d}"
      stmts (cores ()) serial_dt service_dt errors;
  ]

let lint_row ~smoke () =
  Bench_util.section "perf: planlint sweep";
  let cases = if smoke then 40 else 200 in
  let dt, outcome =
    wall (fun () -> Check.Rankcheck.run_lint ~seed:0 ~cases ())
  in
  Bench_util.row "%d cases, %d plans linted in %.3fs\n"
    outcome.Check.Rankcheck.o_cases outcome.Check.Rankcheck.o_plans dt;
  [
    Printf.sprintf
      "{\"bench\":\"lint\",\"cases\":%d,\"plans\":%d,\"wall_s\":%.4f,\
       \"failures\":%d}"
      outcome.Check.Rankcheck.o_cases outcome.Check.Rankcheck.o_plans dt
      (List.length outcome.Check.Rankcheck.o_failures);
  ]

let run ?(smoke = false) () =
  let rows =
    drain_rows ~smoke ()
    @ earlyout_rows ~smoke ()
    @ serve_row ~smoke ()
    @ lint_row ~smoke ()
  in
  Bench_util.section
    (if smoke then "perf rows (smoke: not appended)"
     else "perf rows appended to " ^ bench_file);
  emit ~append:(not smoke) rows
