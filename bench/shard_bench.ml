(* Distributed top-k: coordinator scatter/gather vs single-node execution.

   The early-out regime the sharded coordinator exists for: a ranked join
   over tables hash-co-partitioned on the join key, answered by scattering
   a bounded per-shard subquery (k' = k under hash partitioning — any one
   shard could hold every winner) and merging the shard streams with a
   threshold-style bound. The coordinator pulls batches of roughly k/N + 8
   rows per shard and never fetches again from a shard whose stream upper
   bound has fallen out of the merge race, so the per-shard observed depth
   stays near k/N while the pushed bound — the full drain a naive gather
   would pay — is k on every shard.

   Reported:
   - single-node wall time for the same statement over an identical
     (unpartitioned) catalog — the no-cluster baseline;
   - coordinator wall time (Unix-socket links, WIRE HEX rows) with the
     scatter plan warm in the cache;
   - per-shard observed depth vs the pushed k' bound, and the total rows
     pulled vs the shards*k a drain-every-shard gather would fetch.

   Correctness gate: the merged score sequence must match the single-node
   answer to within float association jitter. Appends one JSON row to
   BENCH_RANKOPT.json (smoke mode prints without appending, so `make ci`
   stays clean-tree). *)

let bench_file = "BENCH_RANKOPT.json"

let sql_of_k k =
  Printf.sprintf
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.5*A.score + \
     0.5*B.score DESC LIMIT %d"
    k

let ok_or what = function
  | Ok r -> r
  | Error e -> failwith (what ^ ": " ^ Server.Service.error_message e)

let scores_close a b =
  Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let run ?(smoke = false) () =
  Bench_util.section "shard: distributed top-k scatter/gather early-out";
  let n = if smoke then 2000 else 16000 in
  let shards = 4 in
  let k = if smoke then 20 else 100 in
  let iters = if smoke then 3 else 20 in
  let domain = 200 in
  let sql = sql_of_k k in
  (* Two catalogs built from the same seeds: one becomes the cluster's
     mirror (and is fanned out to the shards), the other stays whole for
     the single-node baseline. *)
  let mirror = Bench_util.two_table_catalog ~n ~domain ~seed:42 () in
  let whole = Bench_util.two_table_catalog ~n ~domain ~seed:42 () in
  (* Warm the whole-catalog side, then time it. *)
  let single_ans =
    match Sqlfront.Sql.query whole sql with
    | Ok a -> a
    | Error e -> failwith ("shard bench single-node: " ^ e)
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    match Sqlfront.Sql.query whole sql with
    | Ok _ -> ()
    | Error e -> failwith ("shard bench single-node: " ^ e)
  done;
  let single_s = (Unix.gettimeofday () -. t0) /. float_of_int iters in
  let config = { Server.Service.default_config with workers = 1 } in
  let cluster = Shard.Cluster.start ~config ~n:shards mirror in
  Fun.protect ~finally:(fun () -> Shard.Cluster.stop cluster) @@ fun () ->
  let coord = Shard.Cluster.coordinator cluster in
  let ses = Shard.Coordinator.open_session coord in
  Fun.protect ~finally:(fun () -> Shard.Coordinator.close_session ses)
  @@ fun () ->
  (* Warm the scatter-plan cache, then time the steady state. *)
  let reply = ok_or "coordinator query" (Shard.Coordinator.query ses sql) in
  if not reply.Shard.Coordinator.scattered then
    failwith "shard bench: statement was not scattered";
  let t0 = Unix.gettimeofday () in
  let last = ref reply in
  for _ = 1 to iters do
    last := ok_or "coordinator query" (Shard.Coordinator.query ses sql)
  done;
  let coord_s = (Unix.gettimeofday () -. t0) /. float_of_int iters in
  let reply = !last in
  let depths = reply.Shard.Coordinator.depths in
  let depth_sum = Array.fold_left ( + ) 0 depths in
  let depth_max = Array.fold_left max 0 depths in
  let naive_pull = shards * k in
  let early_out = depth_max < k && depth_sum < naive_pull in
  let correct =
    List.length reply.Shard.Coordinator.scores = List.length single_ans.scores
    && List.for_all2 scores_close reply.Shard.Coordinator.scores
         single_ans.scores
  in
  Bench_util.row "%-28s %12s %12s\n" "" "single-node" "coordinator";
  Bench_util.row "%-28s %11.4fs %11.4fs\n" "statement wall time" single_s
    coord_s;
  Array.iteri
    (fun i d ->
      Bench_util.row "%-28s %12s %7d / %d\n"
        (Printf.sprintf "shard %d observed depth" i)
        "" d k)
    depths;
  Bench_util.row
    "total rows pulled %d of %d a full per-shard drain would fetch%s%s\n"
    depth_sum naive_pull
    (if early_out then "" else "  [NO EARLY-OUT]")
    (if correct then "" else "  [SCORES DIVERGE]");
  let row =
    Printf.sprintf
      "{\"bench\":\"shard\",\"n\":%d,\"k\":%d,\"shards\":%d,\"cores\":%d,\
       \"scattered\":true,\"depths\":[%s],\"depth_sum\":%d,\"depth_max\":%d,\
       \"pushed_k\":%d,\"naive_pull\":%d,\"early_out\":%b,\
       \"single_s\":%.4f,\"coord_s\":%.4f,\"correct\":%b}"
      n k shards
      (Domain.recommended_domain_count ())
      (String.concat ","
         (Array.to_list (Array.map string_of_int depths)))
      depth_sum depth_max k naive_pull early_out single_s coord_s correct
  in
  print_endline row;
  if not smoke then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_file in
    output_string oc row;
    output_char oc '\n';
    close_out oc;
    Printf.printf "(1 row appended to %s)\n" bench_file
  end
