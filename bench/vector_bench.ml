(* Vectorized-execution trajectory: ns/tuple for the scan-filter-top-k
   drain — the plan shape the batched spine exists for — executed
   tuple-at-a-time ([~vectorized:false], the pre-batching interpreter) and
   batch-at-a-time (the default), at n in {16k, 64k}. The two runs are
   checked row-identical before timing, so a speedup row can never hide a
   semantics change. Appends one JSON row per size to BENCH_RANKOPT.json
   (smoke mode prints a reduced subset without appending). *)

open Relalg

let score_a = Expr.col ~relation:"A" "score"

let drain_plan ~k =
  Core.Plan.Top_k
    {
      k;
      input =
        Core.Plan.Sort
          {
            order =
              { Core.Plan.expr = score_a;
                direction = Core.Interesting_orders.Desc };
            input =
              Core.Plan.Filter
                {
                  (* ~80% selectivity: the filter kernel does real work but
                     the drain stays scan-dominated *)
                  pred = Expr.(Cmp (Ge, score_a, cfloat 0.2));
                  input = Core.Plan.Table_scan { table = "A" };
                };
          };
    }

let rows_identical a b =
  List.length a = List.length b
  && List.for_all2
       (fun (t1, s1) (t2, s2) -> Tuple.equal t1 t2 && Float.compare s1 s2 = 0)
       a b

let run ?(smoke = false) () =
  Bench_util.section
    "vector: scan-filter-top-k drain, vectorized vs tuple-at-a-time";
  let sizes = if smoke then [ 16_000 ] else [ 16_000; 64_000 ] in
  let repeats = if smoke then 3 else 5 in
  let rows =
    List.map
      (fun n ->
        let cat = Storage.Catalog.create ~pool_frames:512 () in
        ignore
          (Workload.Generator.load_scored_table cat (Rkutil.Prng.create 7)
             ~name:"A" ~n ~key_domain:(n / 8) ());
        let k = 100 in
        let plan = drain_plan ~k in
        let serial_res = Core.Executor.run ~vectorized:false cat plan in
        let vec_res = Core.Executor.run ~vectorized:true cat plan in
        let ok =
          rows_identical serial_res.Core.Executor.rows
            vec_res.Core.Executor.rows
        in
        let serial_dt =
          Perf.time_best ~repeats (fun () ->
              ignore (Core.Executor.run ~vectorized:false cat plan))
        in
        let vec_dt =
          Perf.time_best ~repeats (fun () ->
              ignore (Core.Executor.run ~vectorized:true cat plan))
        in
        let per_tuple dt = dt /. float_of_int n *. 1e9 in
        let speedup = serial_dt /. vec_dt in
        Bench_util.row
          "n=%-6d  tuple-at-a-time %8.1f ns/tuple   vectorized %8.1f \
           ns/tuple   %5.2fx%s\n"
          n (per_tuple serial_dt) (per_tuple vec_dt) speedup
          (if ok then "" else "  [ROWS DIVERGE]");
        Printf.sprintf
          "{\"bench\":\"vector\",\"n\":%d,\"k\":%d,\"cores\":%d,\
           \"serial_ns_per_tuple\":%.1f,\"vector_ns_per_tuple\":%.1f,\
           \"serial_s\":%.5f,\"vector_s\":%.5f,\"speedup\":%.3f,\
           \"correct\":%b}"
          n k (Perf.cores ()) (per_tuple serial_dt) (per_tuple vec_dt)
          serial_dt vec_dt speedup ok)
      sizes
  in
  Bench_util.section
    (if smoke then "vector rows (smoke: not appended)"
     else "vector rows appended to " ^ Perf.bench_file);
  Perf.emit ~append:(not smoke) rows
