(* Any-k cursor continuation vs re-planned top-k re-execution.

   The incremental-fetch regime the cursor work exists for: a client keeps
   asking for "the next [batch] answers" of a ranked join. With a cursor,
   EXECUTE pays the any-k build once and every FETCH NEXT resumes the
   suspended enumeration; without one, the client must re-submit the query
   with a larger LIMIT each round, paying parse + optimize + a from-scratch
   execution of the rank-join at the new k every time.

   Reported per checkpoint k (cumulative answers delivered):
   - cursor_cum:  EXECUTE(batch) + all FETCH NEXT batches up to k;
   - replan_cum:  sum of one-shot runs at batch, 2*batch, ..., k — what a
     cursor-less incremental client actually pays;
   - replan_one:  a single one-shot run at k — the floor a cursor-less
     client could reach with perfect foresight of k.

   The crossover fields record the first checkpoint where the cursor's
   cumulative cost drops below each baseline (0 = never). Appends one JSON
   row to BENCH_RANKOPT.json (smoke mode prints without appending, so
   `make ci` stays clean-tree). *)

let bench_file = "BENCH_RANKOPT.json"

let wall f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

let sql =
  "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.5*A.score + \
   0.5*B.score DESC LIMIT ?"

let substitute_k sql k =
  String.concat (string_of_int k) (String.split_on_char '?' sql)

let ok_or what = function
  | Ok r -> r
  | Error e -> failwith (what ^ ": " ^ Server.Service.error_message e)

let run ?(smoke = false) () =
  Bench_util.section "anyk: cursor FETCH NEXT vs re-planned top-k";
  let n = if smoke then 4000 else 12000 in
  let domain = 50 in
  let batch = 20 in
  let steps = if smoke then 8 else 32 in
  let k_max = batch * steps in
  let catalog =
    Bench_util.two_table_catalog ~n ~pool_frames:256 ~domain ~seed:7 ()
  in
  (* Warm the buffer pool so both sides measure compute, not cold I/O. *)
  ignore (Sqlfront.Sql.query catalog (substitute_k sql k_max));
  let eligible, replan_desc =
    let ( let* ) r f = match r with Ok x -> f x | Error e -> Error e in
    let probe =
      let* tpl = Sqlfront.Sql.template_of_sql sql in
      let* ast = Sqlfront.Sql.instantiate tpl ~k:batch () in
      Sqlfront.Sql.prepare_ast catalog ast
    in
    match probe with
    | Ok p ->
        ( Sqlfront.Sql.cursor_eligible p,
          Core.Plan.describe p.Sqlfront.Sql.planned.Core.Optimizer.plan )
    | Error e -> failwith ("anyk bench prepare: " ^ e)
  in
  let config = { Server.Service.default_config with workers = 2 } in
  let svc = Server.Service.create ~config catalog in
  Fun.protect ~finally:(fun () -> Server.Service.shutdown svc) @@ fun () ->
  let sess = Server.Service.open_session svc in
  ignore
    (ok_or "prepare" (Server.Service.prepare sess ~name:"q" sql)
      : Sqlfront.Sql.template);
  (* Cursor side: one EXECUTE, then FETCH NEXT per checkpoint. *)
  let cursor_scores = ref [] in
  let note reply =
    cursor_scores := List.rev_append reply.Server.Service.scores !cursor_scores
  in
  let exec_s, first =
    wall (fun () ->
        ok_or "execute" (Server.Service.execute_prepared sess ~k:batch "q"))
  in
  note first;
  let cursor_cum = Array.make (steps + 1) 0.0 in
  cursor_cum.(1) <- exec_s;
  for i = 2 to steps do
    let dt, reply =
      wall (fun () ->
          ok_or "fetch" (Server.Service.fetch sess ~name:"q" batch))
    in
    note reply;
    cursor_cum.(i) <- cursor_cum.(i - 1) +. dt
  done;
  ignore (Server.Service.close_cursor sess "q");
  (* Re-plan side: a fresh parse + optimize + execute per checkpoint. *)
  let replan_one = Array.make (steps + 1) 0.0 in
  let replan_cum = Array.make (steps + 1) 0.0 in
  let oneshot_scores = ref [] in
  for i = 1 to steps do
    let k = batch * i in
    let dt, ans =
      wall (fun () ->
          match Sqlfront.Sql.query catalog (substitute_k sql k) with
          | Ok a -> a
          | Error e -> failwith ("anyk bench replan: " ^ e))
    in
    replan_one.(i) <- dt;
    replan_cum.(i) <- replan_cum.(i - 1) +. dt;
    if i = steps then oneshot_scores := ans.Sqlfront.Sql.scores
  done;
  (* The cursor's concatenated stream must carry exactly the scores of a
     one-shot run at k_max (tuple-level identity is the test suite's job). *)
  let correct =
    let sort = List.sort Float.compare in
    List.equal Float.equal
      (sort (List.rev !cursor_scores))
      (sort !oneshot_scores)
  in
  let crossover arr =
    let rec go i =
      if i > steps then 0
      else if cursor_cum.(i) < arr.(i) then batch * i
      else go (i + 1)
    in
    go 1
  in
  let cross_cum = crossover replan_cum in
  let cross_one = crossover replan_one in
  let fetch_avg_ms =
    1000.0 *. (cursor_cum.(steps) -. exec_s) /. float_of_int (steps - 1)
  in
  Bench_util.row "replanned plan: %s%s\n" replan_desc
    (if eligible then "; statement is cursor-eligible (any-k)"
     else "; statement is NOT cursor-eligible");
  Bench_util.row "%-10s %14s %14s %14s\n" "k" "cursor_cum" "replan_cum"
    "replan_one";
  let stride = if smoke then 1 else 4 in
  for i = 1 to steps do
    if i = 1 || i = steps || i mod stride = 0 then
      Bench_util.row "%-10d %13.4fs %13.4fs %13.4fs\n" (batch * i)
        cursor_cum.(i) replan_cum.(i) replan_one.(i)
  done;
  Bench_util.row
    "execute(batch=%d) %.4fs; fetch avg %.3fms/batch; crossover vs \
     cumulative re-plan at k=%d, vs one-shot re-plan at k=%d%s\n"
    batch exec_s fetch_avg_ms cross_cum cross_one
    (if correct then "" else "  [SCORES DIVERGE]");
  let row =
    Printf.sprintf
      "{\"bench\":\"anyk\",\"n\":%d,\"domain\":%d,\"batch\":%d,\"k_max\":%d,\
       \"cores\":%d,\"eligible\":%b,\"exec_s\":%.5f,\"fetch_avg_ms\":%.4f,\
       \"cursor_cum_s\":%.5f,\"replan_cum_s\":%.5f,\"replan_one_s\":%.5f,\
       \"crossover_cum_k\":%d,\"crossover_one_k\":%d,\"correct\":%b}"
      n domain batch k_max
      (Domain.recommended_domain_count ())
      eligible exec_s fetch_avg_ms cursor_cum.(steps) replan_cum.(steps)
      replan_one.(steps) cross_cum cross_one correct
  in
  print_endline row;
  if not smoke then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_file in
    output_string oc row;
    output_char oc '\n';
    close_out oc;
    Printf.printf "(1 row appended to %s)\n" bench_file
  end
