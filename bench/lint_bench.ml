(* Throughput of the planlint static analyzer.

   Two measurements on a fixed statement mix:

   - lint rate: the full rule catalog ([Lint.Engine.lint_planned] —
     schema, order, pipelining, filter preservation, k-propagation,
     depth bounds, cost monotonicity, top-k shape) over each optimized
     statement, reported as plans linted per second;

   - emit-mode overhead: optimizing the same mix with the emit-time lint
     hooks enabled (every MEMO-retained subplan checked as it is stored)
     versus disabled — the relative cost of running the optimizer under
     debug assertions.

   Emits a single JSON row for CI tracking. *)

let statements =
  [
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.5*A.score + \
     0.5*B.score DESC LIMIT 10";
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.3*A.score + \
     0.7*B.score DESC LIMIT 25";
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key AND A.score >= 0.2 \
     ORDER BY 0.8*A.score + 0.2*B.score DESC LIMIT 5";
    "SELECT A.id FROM A ORDER BY A.score DESC LIMIT 20";
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key AND B.score >= 0.5";
  ]

let prepare catalog sql =
  match Sqlfront.Sql.template_of_sql sql with
  | Error e -> failwith ("lint bench parse: " ^ e)
  | Ok tpl -> (
      match Sqlfront.Sql.instantiate tpl () with
      | Error e -> failwith ("lint bench instantiate: " ^ e)
      | Ok ast -> (
          match Sqlfront.Sql.prepare_ast catalog ast with
          | Error e -> failwith ("lint bench prepare: " ^ e)
          | Ok p -> p.Sqlfront.Sql.planned))

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

let run () =
  Bench_util.section "lint: planlint static analyzer throughput";
  let catalog = Bench_util.two_table_catalog ~n:5000 ~domain:200 ~seed:42 () in
  let planned = List.map (prepare catalog) statements in
  (* Lint rate: full catalog per optimized statement. *)
  let rounds = 400 in
  let diags = ref 0 in
  let lint_dt, () =
    time (fun () ->
        for _ = 1 to rounds do
          List.iter
            (fun p -> diags := !diags + List.length (Lint.Engine.lint_planned p))
            planned
        done)
  in
  let plans = rounds * List.length planned in
  let lint_per_s = float_of_int plans /. lint_dt in
  (* Emit-mode overhead: re-optimize the mix with hooks off, then on. *)
  let opt_rounds = 30 in
  let optimize_all () =
    List.iter (fun sql -> ignore (prepare catalog sql)) statements
  in
  let plain_dt, () =
    time (fun () ->
        for _ = 1 to opt_rounds do
          optimize_all ()
        done)
  in
  Lint.Engine.Emit.reset ();
  Lint.Engine.Emit.enable ();
  let emit_dt, () =
    time (fun () ->
        for _ = 1 to opt_rounds do
          optimize_all ()
        done)
  in
  let memo_linted = Lint.Engine.Emit.linted () in
  let emit_diags = List.length (Lint.Engine.Emit.diagnostics ()) in
  Lint.Engine.Emit.disable ();
  let overhead = if plain_dt > 0.0 then emit_dt /. plain_dt else 1.0 in
  Bench_util.row "%-36s %12.0f\n" "full-catalog lint (plans/s)" lint_per_s;
  Bench_util.row "%-36s %12.2f\n" "emit-mode optimize overhead (x)" overhead;
  Bench_util.row "%-36s %12d\n" "memo subplans linted (emit mode)" memo_linted;
  Bench_util.row "%-36s %12d\n" "diagnostics" (!diags + emit_diags);
  Bench_util.row
    "{\"bench\":\"lint\",\"statements\":%d,\"plans_linted\":%d,\
     \"lint_per_s\":%.1f,\"opt_s\":%.4f,\"opt_emit_s\":%.4f,\
     \"emit_overhead\":%.3f,\"memo_plans_linted\":%d,\"diagnostics\":%d}\n"
    (List.length statements) plans lint_per_s plain_dt emit_dt overhead
    memo_linted (!diags + emit_diags)
