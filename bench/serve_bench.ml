(* Closed-loop load generator for the query service.

   Drives a fixed statement mix two ways and reports a JSON row:

   - serial: one thread calling [Sql.query] per statement — every
     statement pays parse + bind + optimize + execute;
   - service: N client threads over an in-process [Server.Service] with
     its worker-domain pool and k-interval plan cache — after the first
     execution of each template only the k rebind and execution remain.

   The statement mix cycles a handful of templates across k values inside
   each plan's validity interval, the regime the cache is built for
   (dashboard-style repeated top-k queries). On a single-core container
   the speedup is almost entirely the cache skipping re-optimization;
   worker domains add parallelism on multicore hosts. *)

let templates =
  [|
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.5*A.score + \
     0.5*B.score DESC LIMIT ?";
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.3*A.score + \
     0.7*B.score DESC LIMIT ?";
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.8*A.score + \
     0.2*B.score DESC LIMIT ?";
    "SELECT A.id FROM A ORDER BY A.score DESC LIMIT ?";
    "SELECT B.id FROM B ORDER BY B.score DESC LIMIT ?";
  |]

let ks = [| 5; 10; 8; 20; 12; 15 |]

let statement i =
  (i mod Array.length templates, ks.(i mod Array.length ks))

let substitute_k sql k =
  String.concat (string_of_int k) (String.split_on_char '?' sql)

let run_serial catalog n =
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let tpl, k = statement i in
    match Sqlfront.Sql.query catalog (substitute_k templates.(tpl) k) with
    | Ok _ -> ()
    | Error e -> failwith ("serve bench serial: " ^ e)
  done;
  Unix.gettimeofday () -. t0

let run_service catalog ~workers ~clients n =
  let config =
    {
      Server.Service.default_config with
      workers;
      queue_capacity = 2 * clients;
    }
  in
  let svc = Server.Service.create ~config catalog in
  let per_client = n / clients in
  let errors = Atomic.make 0 in
  let client_thread c =
    let session = Server.Service.open_session svc in
    Array.iteri
      (fun i sql ->
        match Server.Service.prepare session ~name:(string_of_int i) sql with
        | Ok _ -> ()
        | Error _ -> Atomic.incr errors)
      templates;
    for i = 0 to per_client - 1 do
      let tpl, k = statement ((c * per_client) + i) in
      match
        Server.Service.execute_prepared session ~k (string_of_int tpl)
      with
      | Ok _ -> ()
      | Error _ -> Atomic.incr errors
    done;
    Server.Service.close_session session
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun c -> Thread.create client_thread c) in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  let cache = Server.Service.cache_stats svc in
  let metrics = Server.Service.server_metrics svc in
  Server.Service.shutdown svc;
  (dt, cache, metrics, Atomic.get errors)

let run () =
  Bench_util.section "serve: concurrent query service vs serial execution";
  let catalog = Bench_util.two_table_catalog ~n:5000 ~domain:200 ~seed:42 () in
  let n = 2000 and workers = 4 and clients = 4 in
  (* Warm the buffer pool so both sides measure compute, not cold I/O. *)
  ignore (run_serial catalog (Array.length templates * Array.length ks));
  let serial_dt = run_serial catalog n in
  let service_dt, cache, metrics, errors =
    run_service catalog ~workers ~clients n
  in
  let serial_qps = float_of_int n /. serial_dt in
  let service_qps = float_of_int n /. service_dt in
  let hit_rate = Server.Plan_cache.hit_rate cache in
  Bench_util.row "%-28s %12s %12s\n" "" "serial" "service";
  Bench_util.row "%-28s %12.0f %12.0f\n" "throughput (stmt/s)" serial_qps
    service_qps;
  Bench_util.row "%-28s %12s %12.2f\n" "speedup" "" (service_qps /. serial_qps);
  Bench_util.row "%-28s %12s %12.3f\n" "plan-cache hit rate" "" hit_rate;
  Bench_util.row "%-28s %12s %12d\n" "re-optimize on rebind" ""
    cache.Server.Plan_cache.reopt_rebinds;
  Bench_util.row "%-28s %12s %12.3f/%.3f\n" "p50/p95 latency (ms)" ""
    metrics.Server.Metrics.p50_ms metrics.Server.Metrics.p95_ms;
  Bench_util.row
    "{\"bench\":\"serve\",\"statements\":%d,\"workers\":%d,\"clients\":%d,\
     \"cores\":%d,\"serial_qps\":%.1f,\"service_qps\":%.1f,\"speedup\":%.2f,\
     \"cache_hit_rate\":%.4f,\"cache_hits\":%d,\"cache_misses\":%d,\
     \"reopt_rebinds\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"errors\":%d}\n"
    n workers clients
    (Domain.recommended_domain_count ())
    serial_qps service_qps
    (service_qps /. serial_qps)
    hit_rate cache.Server.Plan_cache.hits cache.Server.Plan_cache.misses
    cache.Server.Plan_cache.reopt_rebinds metrics.Server.Metrics.p50_ms
    metrics.Server.Metrics.p95_ms errors
