#!/bin/sh
# Smoke test for `rankopt serve`: start a server on a private Unix socket,
# drive a scripted client session through the line protocol (prepare, bind
# k twice so the second execution must hit the plan cache, one-shot query,
# stats), then shut the server down and check it exits.
set -eu

RANKOPT=${RANKOPT:-_build/default/bin/rankopt.exe}
SOCK=$(mktemp -u /tmp/rankopt-smoke-XXXXXX.sock)
LOG=$(mktemp /tmp/rankopt-smoke-XXXXXX.log)
OUT=$(mktemp /tmp/rankopt-smoke-XXXXXX.out)

cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -f "$SOCK" "$LOG" "$OUT"
}
trap cleanup EXIT INT TERM

"$RANKOPT" serve --socket "$SOCK" --workers 2 \
    --table A:1000:100 --table B:1000:100 >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear.
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

"$RANKOPT" client --socket "$SOCK" >"$OUT" <<'EOF'
PING
PREPARE top SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.4*A.score + 0.6*B.score DESC LIMIT ?
EXECUTE top 5
EXECUTE top 5
QUERY SELECT A.id FROM A ORDER BY A.score DESC LIMIT 3
STATS
STATS SESSION
EOF

"$RANKOPT" client --socket "$SOCK" SHUTDOWN >>"$OUT"

# The server must exit on SHUTDOWN (bounded wait).
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: server still running after SHUTDOWN" >&2
        exit 1
    fi
    sleep 0.1
done
SERVER_PID=

fail() {
    echo "serve-smoke: $1" >&2
    echo "--- session transcript:" >&2
    cat "$OUT" >&2
    echo "--- server log:" >&2
    cat "$LOG" >&2
    exit 1
}

grep -q "pong=1" "$OUT" || fail "no PING reply"
grep -q "prepared=top" "$OUT" || fail "PREPARE failed"
grep -q "rows=5 cached=0" "$OUT" || fail "first EXECUTE should miss the plan cache"
grep -q "rows=5 cached=1" "$OUT" || fail "second EXECUTE should hit the plan cache"
grep -q "rows=3" "$OUT" || fail "one-shot QUERY failed"
grep -q "^cache_hits=" "$OUT" || fail "STATS missing cache counters"
grep -q "^prepared=1" "$OUT" || fail "STATS SESSION missing prepared count"
grep -q "shutdown=1" "$OUT" || fail "SHUTDOWN not acknowledged"
if grep -q "^ERR" "$OUT"; then fail "session contained an ERR reply"; fi

echo "serve-smoke: OK"
