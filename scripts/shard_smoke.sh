#!/bin/sh
# Smoke test for the sharded coordinator: start `rankopt serve --shards 2`
# on a private Unix socket, drive a scripted client session through the
# line protocol — a scattered top-k join (per-shard depths reported), a
# rank window, SHARD LIST, a routed INSERT followed by a re-query that
# must surface the new row first, and SHARD ADD (repartition + epoch
# bump) followed by a three-way scatter — then shut the cluster down.
set -eu

RANKOPT=${RANKOPT:-_build/default/bin/rankopt.exe}
SOCK=$(mktemp -u /tmp/rankopt-shard-XXXXXX.sock)
LOG=$(mktemp /tmp/rankopt-shard-XXXXXX.log)
OUT=$(mktemp /tmp/rankopt-shard-XXXXXX.out)

cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -f "$SOCK" "$LOG" "$OUT"
}
trap cleanup EXIT INT TERM

"$RANKOPT" serve --socket "$SOCK" --shards 2 --workers 1 \
    --table A:1000:100 --table B:1000:100 >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the coordinator socket to appear.
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "shard-smoke: coordinator did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

"$RANKOPT" client --socket "$SOCK" >"$OUT" <<'EOF'
PING
QUERY SELECT A.id, B.id FROM A, B WHERE A.key = B.key ORDER BY 0.5*A.score + 0.5*B.score DESC LIMIT 5
QUERY SELECT A.id, rank() FROM A WHERE rank() BETWEEN 4 AND 11 ORDER BY A.score DESC
SHARD LIST
QUERY INSERT INTO A VALUES (99001, 7, 99.5)
QUERY SELECT A.id, A.score FROM A ORDER BY A.score DESC LIMIT 3
SHARD ADD auto
QUERY SELECT A.id, A.score FROM A ORDER BY A.score DESC LIMIT 3
STATS
EOF

"$RANKOPT" client --socket "$SOCK" SHUTDOWN >>"$OUT"

# The coordinator must exit on SHUTDOWN (bounded wait).
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "shard-smoke: coordinator still running after SHUTDOWN" >&2
        exit 1
    fi
    sleep 0.1
done
SERVER_PID=

fail() {
    echo "shard-smoke: $1" >&2
    echo "--- session transcript:" >&2
    cat "$OUT" >&2
    echo "--- server log:" >&2
    cat "$LOG" >&2
    exit 1
}

grep -q "coordinating 2 shard" "$LOG" || fail "serve did not report shard mode"
grep -q "pong=1" "$OUT" || fail "no PING reply"
# The top-k join must scatter and report a per-shard depth vector.
grep -q "rows=5 scattered=1" "$OUT" || fail "top-k join was not scattered"
grep -Eq "depths=[0-9]+,[0-9]+" "$OUT" || fail "no per-shard depths reported"
# The rank window (ranks 4..11) scatters too.
grep -q "rows=8 scattered=1" "$OUT" || fail "rank window was not scattered"
# SHARD LIST names both shards with per-table row counts.
grep -q "^shard 0 .*A=" "$OUT" || fail "SHARD LIST missing shard 0"
grep -q "^shard 1 .*A=" "$OUT" || fail "SHARD LIST missing shard 1"
# Routed DML: applied to the mirror and the owning shard...
grep -q "affected=1" "$OUT" || fail "routed INSERT not applied"
# ...and the scattered re-query sees the unbeatable new row first.
grep -q "^99001" "$OUT" || fail "re-query after INSERT missed the new row"
# SHARD ADD repartitions to three shards and bumps the epoch...
grep -q "shards=3 part_epoch=" "$OUT" || fail "SHARD ADD did not repartition"
# ...after which scatters fan out over three streams.
grep -Eq "depths=[0-9]+,[0-9]+,[0-9]+" "$OUT" \
    || fail "no three-way scatter after SHARD ADD"
grep -q "^shards=3" "$OUT" || fail "STATS missing cluster shard count"
grep -q "shutdown=1" "$OUT" || fail "SHUTDOWN not acknowledged"
if grep -q "^ERR" "$OUT"; then fail "session contained an ERR reply"; fi

echo "shard-smoke: OK"
