.PHONY: all build test bench bench-perf bench-anyk bench-leaderboard bench-shard bench-sanitize bench-vector bench-smoke fuzz lint sanitize serve-smoke shard-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Differential fuzzing: SEED consecutive case seeds, every optimizer plan
# vs a naive oracle (see lib/check/). A fixed-seed slice of the same
# harness runs as part of `make test` / `make ci`; this target is the
# open-ended sweep, e.g.:  make fuzz CASES=10000
# Any failure prints a one-line replay command verbatim
# (`rankopt fuzz --seed N --cases 1`) plus a shrunk counterexample.
SEED ?= 42
CASES ?= 1000
fuzz: build
	dune exec bin/rankopt.exe -- fuzz --seed $(SEED) --cases $(CASES)

bench:
	dune exec bench/main.exe

# Perf trajectory: serial-vs-parallel wall time for the drain-heavy query,
# the early-out guard, and compact serve/lint rows. Appends one JSON row
# per measurement to BENCH_RANKOPT.json (commit the rows you want to keep;
# every row records `cores` so single-core CI numbers aren't read as
# regressions against multicore rows).
bench-perf: build
	dune exec bench/main.exe -- perf

# Any-k cursor continuation vs re-planned top-k at growing k: per-fetch
# delay and the crossover where EXECUTE + FETCH NEXT beats re-submitting
# the query with a larger LIMIT. Appends one JSON row to BENCH_RANKOPT.json.
bench-anyk: build
	dune exec bench/main.exe -- anyk

# Leaderboard workload over the order-statistic rank index: by-rank page
# latency (counted descent vs drain-sort-slice) across table sizes, plus
# a mixed serving loop of pages / RANK probes / score UPDATEs through the
# live service. Appends one JSON row to BENCH_RANKOPT.json.
bench-leaderboard: build
	dune exec bench/main.exe -- leaderboard

# Distributed top-k over an in-process shard cluster: coordinator
# scatter/gather wall time vs single-node, plus per-shard observed depth
# against the pushed k' bound (threshold-style early termination must pull
# strictly fewer rows than draining every shard to k'). Appends one JSON
# row to BENCH_RANKOPT.json.
bench-shard: build
	dune exec bench/main.exe -- shard

# Lockcheck instrumentation overhead on the serve mix: the same workload
# with hooks uninstalled vs installed (interleaved best-of-5), reporting
# the relative slowdown and asserting zero diagnostics. Appends one JSON
# row to BENCH_RANKOPT.json.
bench-sanitize: build
	dune exec bench/main.exe -- sanitize

# Vectorized-execution trajectory: ns/tuple for the scan-filter-top-k
# drain, batch-at-a-time vs tuple-at-a-time, at n in {16k, 64k}, with the
# two runs checked row-identical before timing. Appends one JSON row per
# size to BENCH_RANKOPT.json.
bench-vector: build
	dune exec bench/main.exe -- vector

# Reduced-size subset (<30s): prints the rows but does NOT append, so
# `make ci` stays clean-tree.
bench-smoke: build
	dune exec bench/main.exe -- perf-smoke anyk-smoke leaderboard-smoke \
	  shard-smoke sanitize-smoke vector-smoke

# Static plan analysis (planlint): run the rule catalog (PL01..PL15) over
# the example query corpus and over a fixed slice of the fuzz corpus,
# linting the optimizer's chosen plan and every MEMO-retained subplan.
# Exits nonzero on any error-severity diagnostic. Open-ended sweeps:
#   make lint LINT_SEED=0 LINT_CASES=6000
LINT_SEED ?= 0
LINT_CASES ?= 300
lint: build
	dune exec bin/rankopt.exe -- lint \
	  --table A:2000:100 --table B:2000:100 --table C:2000:100 \
	  --dir examples/queries
	dune exec bin/rankopt.exe -- lint --fuzz-seed $(LINT_SEED) \
	  --fuzz-cases $(LINT_CASES)

# Concurrency-discipline sweep (lockcheck): replay the hammer / serve /
# fuzz workloads with the Latch instrumentation installed and check the
# LK01..LK08 rules (lock-order cycles and rank inversions, blocking under
# a Short latch, guard bypass, read->write upgrade, leaks at quiesce
# points, release pairing, hold-time outliers). Exits nonzero on any
# diagnostic. Open-ended sweeps:  make sanitize SAN_SEED=7 SAN_CASES=200
SAN_SEED ?= 42
SAN_CASES ?= 25
sanitize: build
	dune exec bin/rankopt.exe -- sanitize --seed $(SAN_SEED) \
	  --cases $(SAN_CASES)

# End-to-end smoke test of the query service: start `rankopt serve` on a
# private Unix socket, run a scripted client session (prepare / bind k /
# execute / stats / shutdown) and assert on the protocol replies,
# including that the second execution is served from the plan cache.
serve-smoke: build
	sh scripts/serve_smoke.sh

# End-to-end smoke test of the sharded coordinator: `rankopt serve
# --shards 2`, a scripted client session (scattered top-k with per-shard
# depths, rank window, SHARD LIST, routed INSERT + re-query, SHARD ADD
# repartition) and assertions on the protocol replies.
shard-smoke: build
	sh scripts/shard_smoke.sh

# What CI runs: a full build + test pass, the static plan lint, the
# fixed-seed concurrency-discipline sweep, the server and
# shard-coordinator smoke tests, the perf smoke subset, a short 2-domain
# degree-sweep hammer (parallel execution must match serial exactly), a
# short sharded differential sweep (scattered execution must match
# single-node tuple-exactly) and a vectorized-execution sweep (batched
# plans must match tuple-at-a-time bit-exactly, depth counters included),
# then verify the working tree is clean (catches build artifacts or
# generated files accidentally committed, and formatter/codegen drift).
ci: build test lint sanitize serve-smoke shard-smoke bench-smoke
	dune exec bin/rankopt.exe -- fuzz --degree 2 --seed 0 --cases 200
	dune exec bin/rankopt.exe -- fuzz --shard 4 --seed 0 --cases 50
	dune exec bin/rankopt.exe -- fuzz --vector --seed 0 --cases 400
	@status=$$(git status --porcelain); \
	if [ -n "$$status" ]; then \
	  echo "ci: working tree not clean after build+test:"; \
	  echo "$$status"; \
	  exit 1; \
	fi
	@echo "ci: OK"

clean:
	dune clean
