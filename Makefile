.PHONY: all build test bench fuzz serve-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

# Differential fuzzing: SEED consecutive case seeds, every optimizer plan
# vs a naive oracle (see lib/check/). A fixed-seed slice of the same
# harness runs as part of `make test` / `make ci`; this target is the
# open-ended sweep, e.g.:  make fuzz CASES=10000
# Any failure prints a one-line replay command verbatim
# (`rankopt fuzz --seed N --cases 1`) plus a shrunk counterexample.
SEED ?= 42
CASES ?= 1000
fuzz: build
	dune exec bin/rankopt.exe -- fuzz --seed $(SEED) --cases $(CASES)

bench:
	dune exec bench/main.exe

# End-to-end smoke test of the query service: start `rankopt serve` on a
# private Unix socket, run a scripted client session (prepare / bind k /
# execute / stats / shutdown) and assert on the protocol replies,
# including that the second execution is served from the plan cache.
serve-smoke: build
	sh scripts/serve_smoke.sh

# What CI runs: a full build + test pass and the server smoke test, then
# verify the working tree is clean (catches build artifacts or generated
# files accidentally committed, and formatter/codegen drift).
ci: build test serve-smoke
	@status=$$(git status --porcelain); \
	if [ -n "$$status" ]; then \
	  echo "ci: working tree not clean after build+test:"; \
	  echo "$$status"; \
	  exit 1; \
	fi
	@echo "ci: OK"

clean:
	dune clean
