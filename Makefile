.PHONY: all build test bench ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# What CI runs: a full build + test pass, then verify the working tree is
# clean (catches build artifacts or generated files accidentally committed,
# and formatter/codegen drift).
ci: build test
	@status=$$(git status --porcelain); \
	if [ -n "$$status" ]; then \
	  echo "ci: working tree not clean after build+test:"; \
	  echo "$$status"; \
	  exit 1; \
	fi
	@echo "ci: OK"

clean:
	dune clean
