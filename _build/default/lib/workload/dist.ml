type t =
  | Uniform of { lo : float; hi : float }
  | Gaussian of { mean : float; sd : float }
  | Zipf of { n : int; alpha : float }
  | Sum_uniform of { j : int }

let sample prng = function
  | Uniform { lo; hi } -> lo +. Rkutil.Prng.float prng (hi -. lo)
  | Gaussian { mean; sd } ->
      let z = Rkutil.Prng.gaussian prng in
      mean +. (sd *. Rkutil.Mathx.clamp ~lo:(-4.0) ~hi:4.0 z)
  | Zipf { n; alpha } ->
      let rank = 1 + Rkutil.Prng.int prng (max 1 n) in
      1.0 /. (float_of_int rank ** alpha)
  | Sum_uniform { j } ->
      let acc = ref 0.0 in
      for _ = 1 to max 1 j do
        acc := !acc +. Rkutil.Prng.uniform prng
      done;
      !acc

let mean = function
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Gaussian { mean; _ } -> mean
  | Zipf { n; alpha } ->
      let acc = ref 0.0 in
      for r = 1 to max 1 n do
        acc := !acc +. (1.0 /. (float_of_int r ** alpha))
      done;
      !acc /. float_of_int (max 1 n)
  | Sum_uniform { j } -> float_of_int (max 1 j) /. 2.0

let support = function
  | Uniform { lo; hi } -> (lo, hi)
  | Gaussian { mean; sd } -> (mean -. (4.0 *. sd), mean +. (4.0 *. sd))
  | Zipf { n; alpha } -> (1.0 /. (float_of_int (max 1 n) ** alpha), 1.0)
  | Sum_uniform { j } -> (0.0, float_of_int (max 1 j))
