(** The paper's experimental scenario (Section 5), simulated.

    A video library stores objects (shots / snapshots); visual features —
    ColorHist, ColorLayout, Texture, Edges — are extracted into one relation
    per feature, each with a high-dimensional index simulated by a B+-tree on
    the similarity score. A multi-feature query ranks objects on a weighted
    combination of per-feature similarities; relations join on the object
    id. *)

val default_features : string list
(** ["ColorHist"; "ColorLayout"; "Texture"; "Edges"]. *)

type t = {
  catalog : Storage.Catalog.t;
  features : string list;  (** Table names, one per feature. *)
  n_objects : int;
}

val build :
  ?features:string list ->
  ?score_dist:Dist.t ->
  ?correlation:float ->
  seed:int ->
  n_objects:int ->
  unit ->
  t
(** Each feature table has columns [oid] and [score], a score index (sorted
    access) and an oid index (random access / INL probes). [correlation]
    in [\[0,1\]] blends per-feature scores with a shared per-object quality
    component (0 = independent features, the model's assumption). *)

val feature_table : t -> string -> Storage.Catalog.table_info
(** @raise Not_found for an unknown feature. *)

val similarity_query_score : t -> weights:(string * float) list -> Relalg.Expr.t
(** The combined scoring expression [Σ wᵢ · featureᵢ.score]. *)
