open Relalg

let default_features = [ "ColorHist"; "ColorLayout"; "Texture"; "Edges" ]

type t = {
  catalog : Storage.Catalog.t;
  features : string list;
  n_objects : int;
}

let build ?(features = default_features)
    ?(score_dist = Dist.Uniform { lo = 0.0; hi = 1.0 }) ?(correlation = 0.0)
    ~seed ~n_objects () =
  let prng = Rkutil.Prng.create seed in
  let catalog = Storage.Catalog.create () in
  let quality = Array.init n_objects (fun _ -> Rkutil.Prng.uniform prng) in
  let corr = Rkutil.Mathx.clamp ~lo:0.0 ~hi:1.0 correlation in
  List.iter
    (fun feature ->
      let schema =
        Schema.of_columns
          [ Schema.column "oid" Value.Tint; Schema.column "score" Value.Tfloat ]
      in
      let tuples =
        List.init n_objects (fun oid ->
            let independent = Dist.sample prng score_dist in
            let s = (corr *. quality.(oid)) +. ((1.0 -. corr) *. independent) in
            [| Value.Int oid; Value.Float s |])
      in
      ignore (Storage.Catalog.create_table catalog feature schema tuples);
      ignore
        (Storage.Catalog.create_index catalog ~clustered:false
           ~name:(feature ^ "_score") ~table:feature
           ~key:(Expr.col ~relation:feature "score") ());
      ignore
        (Storage.Catalog.create_index catalog ~name:(feature ^ "_oid")
           ~table:feature
           ~key:(Expr.col ~relation:feature "oid") ()))
    features;
  { catalog; features; n_objects }

let feature_table t feature = Storage.Catalog.table t.catalog feature

let similarity_query_score t ~weights =
  List.iter
    (fun (f, _) ->
      if not (List.mem f t.features) then
        invalid_arg ("Video.similarity_query_score: unknown feature " ^ f))
    weights;
  Expr.weighted_sum
    (List.map (fun (f, w) -> (w, Expr.col ~relation:f "score")) weights)
