open Relalg

type column_spec =
  | Serial of string
  | Key of { name : string; domain : int }
  | Score of { name : string; dist : Dist.t }

let column_of_spec = function
  | Serial name -> Schema.column name Value.Tint
  | Key { name; _ } -> Schema.column name Value.Tint
  | Score { name; _ } -> Schema.column name Value.Tfloat

let relation prng ~n specs =
  let schema = Schema.of_columns (List.map column_of_spec specs) in
  let tuples =
    List.init n (fun i ->
        Array.of_list
          (List.map
             (function
               | Serial _ -> Value.Int i
               | Key { domain; _ } -> Value.Int (Rkutil.Prng.int prng (max 1 domain))
               | Score { dist; _ } -> Value.Float (Dist.sample prng dist))
             specs))
  in
  (schema, tuples)

let scored_table prng ~n ~key_domain ?(score_dist = Dist.Uniform { lo = 0.0; hi = 1.0 })
    () =
  relation prng ~n
    [
      Serial "id";
      Key { name = "key"; domain = key_domain };
      Score { name = "score"; dist = score_dist };
    ]

let selectivity_of_domain d = 1.0 /. float_of_int (max 1 d)

let domain_of_selectivity s =
  if s <= 0.0 then max_int
  else max 1 (int_of_float (Float.round (1.0 /. s)))

let load_scored_table catalog prng ~name ~n ~key_domain ?score_dist
    ?(with_indexes = true) () =
  let schema, tuples = scored_table prng ~n ~key_domain ?score_dist () in
  ignore (Storage.Catalog.create_table catalog name schema tuples);
  if with_indexes then begin
    (* The ranked access path is unclustered, as the paper's
       high-dimensional feature indexes are: sorted access costs one random
       heap page per tuple (modulo pool caching). *)
    ignore
      (Storage.Catalog.create_index catalog ~clustered:false
         ~name:(name ^ "_score") ~table:name
         ~key:(Expr.col ~relation:name "score") ());
    ignore
      (Storage.Catalog.create_index catalog ~name:(name ^ "_key") ~table:name
         ~key:(Expr.col ~relation:name "key") ())
  end;
  Storage.Catalog.table catalog name
