(** Score distributions for synthetic workloads.

    The estimation model assumes per-input scores from a uniform
    distribution, and sums of uniforms ([u_j], Section 4.3) higher in a join
    hierarchy; the generators below let benchmarks both match and violate
    those assumptions (gaussian, zipf) to probe robustness. *)

type t =
  | Uniform of { lo : float; hi : float }
  | Gaussian of { mean : float; sd : float }
      (** Clamped to [mean ± 4 sd]. *)
  | Zipf of { n : int; alpha : float }
      (** Scores 1/rank^alpha over [n] ranks, scaled to (0, 1]. *)
  | Sum_uniform of { j : int }
      (** Sum of [j] independent uniforms on [0,1): the u_j of Equation 1. *)

val sample : Rkutil.Prng.t -> t -> float

val mean : t -> float
(** Analytic mean (used by tests). *)

val support : t -> float * float
(** (lo, hi) bounds of possible samples. *)
