lib/workload/dist.ml: Rkutil
