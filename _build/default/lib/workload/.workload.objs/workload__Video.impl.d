lib/workload/video.ml: Array Dist Expr List Relalg Rkutil Schema Storage Value
