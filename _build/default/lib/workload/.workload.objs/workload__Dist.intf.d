lib/workload/dist.mli: Rkutil
