lib/workload/video.mli: Dist Relalg Storage
