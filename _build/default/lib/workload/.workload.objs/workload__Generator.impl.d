lib/workload/generator.ml: Array Dist Expr Float List Relalg Rkutil Schema Storage Value
