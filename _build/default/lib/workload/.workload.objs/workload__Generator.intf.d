lib/workload/generator.mli: Dist Relalg Rkutil Schema Storage Tuple
