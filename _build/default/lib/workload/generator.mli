(** Synthetic relation generators with controllable join selectivity.

    Join keys are drawn uniformly from an integer domain of size [D]; an
    equi-join between two such columns has selectivity 1/D in expectation, so
    the benchmarks sweep selectivity by sweeping the domain (Figures 1
    and 14). *)

open Relalg

type column_spec =
  | Serial of string  (** 0, 1, 2, ... — a unique id. *)
  | Key of { name : string; domain : int }  (** Uniform join key. *)
  | Score of { name : string; dist : Dist.t }

val relation :
  Rkutil.Prng.t -> n:int -> column_spec list -> Schema.t * Tuple.t list

val scored_table :
  Rkutil.Prng.t ->
  n:int ->
  key_domain:int ->
  ?score_dist:Dist.t ->
  unit ->
  Schema.t * Tuple.t list
(** The workhorse shape: columns [id] (serial), [key] (join key) and
    [score] (default uniform on [\[0,1)]). *)

val selectivity_of_domain : int -> float
(** Expected equi-join selectivity between two keys over the same domain. *)

val domain_of_selectivity : float -> int
(** Inverse of {!selectivity_of_domain} (rounded, at least 1). *)

val load_scored_table :
  Storage.Catalog.t ->
  Rkutil.Prng.t ->
  name:string ->
  n:int ->
  key_domain:int ->
  ?score_dist:Dist.t ->
  ?with_indexes:bool ->
  unit ->
  Storage.Catalog.table_info
(** Create the table in a catalog; with [with_indexes] (default true), build
    a B+-tree on [score] (the ranked access path) and one on [key]
    (for index-nested-loops probes). The score index is named
    ["<name>_score"], the key index ["<name>_key"]. *)
