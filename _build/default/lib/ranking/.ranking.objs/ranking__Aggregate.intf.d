lib/ranking/aggregate.mli: Relalg Scoring Source
