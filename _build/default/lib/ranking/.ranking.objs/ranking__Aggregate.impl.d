lib/ranking/aggregate.ml: Array Float Hashtbl List Option Relalg Rkutil Scoring Source
