lib/ranking/index_sources.mli: Catalog Source Storage
