lib/ranking/index_sources.ml: Aggregate Array Btree Catalog Expr Heap_file List Relalg Schema Scoring Source Storage Tuple Value
