lib/ranking/source.ml: Array Float Hashtbl List
