lib/ranking/source.mli:
