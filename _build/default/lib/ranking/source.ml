type object_id = int

type t = {
  sorted : (object_id * float) array;
  by_id : (object_id, float) Hashtbl.t;
  mutable sorted_accesses : int;
  mutable random_accesses : int;
}

let of_scores entries =
  let by_id = Hashtbl.create (List.length entries) in
  List.iter
    (fun (oid, score) ->
      if Hashtbl.mem by_id oid then
        invalid_arg "Source.of_scores: duplicate object id";
      Hashtbl.add by_id oid score)
    entries;
  let sorted = Array.of_list entries in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) sorted;
  { sorted; by_id; sorted_accesses = 0; random_accesses = 0 }

let size t = Array.length t.sorted

let sorted_access t i =
  if i < 0 || i >= Array.length t.sorted then None
  else begin
    t.sorted_accesses <- t.sorted_accesses + 1;
    Some t.sorted.(i)
  end

let random_access t oid =
  t.random_accesses <- t.random_accesses + 1;
  Hashtbl.find_opt t.by_id oid

let reset_counters t =
  t.sorted_accesses <- 0;
  t.random_accesses <- 0

let sorted_accesses t = t.sorted_accesses

let random_accesses t = t.random_accesses

let top_score t =
  if Array.length t.sorted = 0 then neg_infinity else snd t.sorted.(0)

let score_at t i = snd t.sorted.(i)
