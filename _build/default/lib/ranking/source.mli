(** Ranked sources for top-k {e selection} (rank aggregation, Section 2.1).

    Each source ranks the same universe of objects on one criterion. A source
    supports {e sorted access} (next object in descending score order) and
    optionally {e random access} (probe the score of a given object) — the
    access-type split that classifies the aggregation algorithms (TA needs
    both, NRA only sorted access). Access counts are recorded so algorithm
    cost (sorted + random accesses) can be compared. *)

type object_id = int

type t

val of_scores : (object_id * float) list -> t
(** Build a source from (object, score) pairs; the sorted order is derived.
    Object ids must be unique within a source. *)

val size : t -> int

val sorted_access : t -> int -> (object_id * float) option
(** [sorted_access src i] is the i-th (0-based) best entry; records one
    sorted access. *)

val random_access : t -> object_id -> float option
(** Probe an object's score; records one random access. *)

val reset_counters : t -> unit

val sorted_accesses : t -> int

val random_accesses : t -> int

val top_score : t -> float
(** Best score; [neg_infinity] when empty (no access charged). *)

val score_at : t -> int -> float
(** Score at a rank position, without charging an access (used by tests). *)
