open Relalg

let take_best k scored =
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) scored
  in
  List.filteri (fun i _ -> i < k) sorted

let naive ~combine ~k sources =
  let m = Array.length sources in
  let ids = Hashtbl.create 256 in
  Array.iter
    (fun src ->
      for i = 0 to Source.size src - 1 do
        match Source.sorted_access src i with
        | Some (oid, _) -> Hashtbl.replace ids oid ()
        | None -> ()
      done)
    sources;
  let scored =
    Hashtbl.fold
      (fun oid () acc ->
        let scores =
          Array.init m (fun j ->
              Option.value ~default:0.0 (Source.random_access sources.(j) oid))
        in
        (oid, Scoring.combine combine scores) :: acc)
      ids []
  in
  take_best k scored

let fagin ~combine ~k sources =
  let m = Array.length sources in
  let seen_in : (Source.object_id, int) Hashtbl.t = Hashtbl.create 256 in
  (* Count of sources each object has appeared in under sorted access. *)
  let complete = ref 0 in
  let depth = ref 0 in
  let max_depth = Array.fold_left (fun acc s -> max acc (Source.size s)) 0 sources in
  while !complete < k && !depth < max_depth do
    Array.iter
      (fun src ->
        match Source.sorted_access src !depth with
        | None -> ()
        | Some (oid, _) ->
            let c = 1 + Option.value ~default:0 (Hashtbl.find_opt seen_in oid) in
            Hashtbl.replace seen_in oid c;
            if c = m then incr complete)
      sources;
    incr depth
  done;
  let scored =
    Hashtbl.fold
      (fun oid _ acc ->
        let scores =
          Array.init m (fun j ->
              Option.value ~default:0.0 (Source.random_access sources.(j) oid))
        in
        (oid, Scoring.combine combine scores) :: acc)
      seen_in []
  in
  take_best k scored

let ta ~combine ~k sources =
  let m = Array.length sources in
  let last = Array.make m infinity in
  let exact : (Source.object_id, float) Hashtbl.t = Hashtbl.create 256 in
  (* Min-heap of the current best k (object, score). *)
  let heap = Rkutil.Heap.create ~cmp:(fun (_, a) (_, b) -> Float.compare a b) in
  let kth_score () =
    if Rkutil.Heap.length heap < k then neg_infinity
    else match Rkutil.Heap.peek heap with Some (_, s) -> s | None -> neg_infinity
  in
  let offer oid score =
    if not (Hashtbl.mem exact oid) then begin
      Hashtbl.add exact oid score;
      if Rkutil.Heap.length heap < k then Rkutil.Heap.push heap (oid, score)
      else if score > kth_score () then begin
        ignore (Rkutil.Heap.pop heap);
        Rkutil.Heap.push heap (oid, score)
      end
    end
  in
  let depth = ref 0 in
  let max_depth = Array.fold_left (fun acc s -> max acc (Source.size s)) 0 sources in
  let stop = ref false in
  while (not !stop) && !depth < max_depth do
    Array.iteri
      (fun j src ->
        match Source.sorted_access src !depth with
        | None -> last.(j) <- neg_infinity
        | Some (oid, s) ->
            last.(j) <- s;
            if not (Hashtbl.mem exact oid) then begin
              let scores =
                Array.init m (fun j' ->
                    if j' = j then s
                    else
                      Option.value ~default:0.0
                        (Source.random_access sources.(j') oid))
              in
              offer oid (Scoring.combine combine scores)
            end)
      sources;
    incr depth;
    let threshold =
      Scoring.combine combine
        (Array.map (fun l -> if l = infinity then 0.0 else Float.max l 0.0) last)
    in
    if Rkutil.Heap.length heap >= k && kth_score () >= threshold then stop := true
  done;
  take_best k (List.map (fun (oid, s) -> (oid, s)) (Rkutil.Heap.to_list heap))

type nra_entry = {
  mutable known : float array;  (* -1 encodes "not seen in this source" *)
  mutable seen_mask : int;
}

let nra ~combine ~k sources =
  let m = Array.length sources in
  let entries : (Source.object_id, nra_entry) Hashtbl.t = Hashtbl.create 256 in
  let last = Array.make m infinity in
  let lower e =
    Scoring.combine combine
      (Array.map (fun s -> if s < 0.0 then 0.0 else s) e.known)
  in
  let upper e =
    Scoring.combine combine
      (Array.mapi
         (fun j s ->
           if s >= 0.0 then s
           else if last.(j) = infinity then infinity
           else Float.max last.(j) 0.0)
         e.known)
  in
  let depth = ref 0 in
  let max_depth = Array.fold_left (fun acc s -> max acc (Source.size s)) 0 sources in
  let stop = ref false in
  while (not !stop) && !depth < max_depth do
    Array.iteri
      (fun j src ->
        match Source.sorted_access src !depth with
        | None -> last.(j) <- neg_infinity
        | Some (oid, s) ->
            last.(j) <- s;
            let e =
              match Hashtbl.find_opt entries oid with
              | Some e -> e
              | None ->
                  let e = { known = Array.make m (-1.0); seen_mask = 0 } in
                  Hashtbl.add entries oid e;
                  e
            in
            e.known.(j) <- s;
            e.seen_mask <- e.seen_mask lor (1 lsl j))
      sources;
    incr depth;
    (* Check the stopping condition: the k best lower bounds dominate all
       other upper bounds and the unseen-object threshold. *)
    if Hashtbl.length entries >= k && Array.for_all (fun l -> l < infinity) last
    then begin
      let all =
        Hashtbl.fold (fun oid e acc -> (oid, lower e, upper e) :: acc) entries []
      in
      let by_lower =
        List.stable_sort (fun (_, a, _) (_, b, _) -> Float.compare b a) all
      in
      let topk = List.filteri (fun i _ -> i < k) by_lower in
      let rest = List.filteri (fun i _ -> i >= k) by_lower in
      match List.rev topk with
      | [] -> ()
      | (_, kth_lower, _) :: _ ->
          let unseen_upper =
            Scoring.combine combine
              (Array.map (fun l -> Float.max l 0.0) last)
          in
          let topk_ids = List.map (fun (oid, _, _) -> oid) topk in
          let max_other_upper =
            List.fold_left
              (fun acc (_, _, u) -> Float.max acc u)
              unseen_upper rest
          in
          (* Also no object inside the top-k may still be overtaken from
             outside; comparing the k-th lower bound suffices. *)
          if kth_lower >= max_other_upper then begin
            stop := true;
            ignore topk_ids
          end
    end
  done;
  let all = Hashtbl.fold (fun oid e acc -> (oid, lower e) :: acc) entries [] in
  take_best k all

let borda sources =
  let points : (Source.object_id, float) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun src ->
      let n = Source.size src in
      for i = 0 to n - 1 do
        match Source.sorted_access src i with
        | None -> ()
        | Some (oid, _) ->
            let p = float_of_int (n - i) in
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt points oid) in
            Hashtbl.replace points oid (prev +. p)
      done)
    sources;
  let all = Hashtbl.fold (fun oid p acc -> (oid, p) :: acc) points [] in
  List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) all

let access_cost sources =
  Array.fold_left
    (fun (s, r) src -> (s + Source.sorted_accesses src, r + Source.random_accesses src))
    (0, 0) sources
