(** Adapters exposing catalog B+-tree indexes as ranked {!Source}s.

    Bridges the storage layer and the rank-aggregation algorithms: a
    descending score index provides sorted access; probes provide random
    access by object id. This is the "top-k selection" integration
    (Section 2.1's first problem class) — same objects in every source,
    ranked on different criteria. *)

open Storage

val of_index :
  ?weight:float ->
  Catalog.t ->
  score_index:Catalog.index_info ->
  id_column:string ->
  Source.t
(** Build a {!Source} whose objects are the integer values of [id_column]
    and whose scores are [weight ·] the index key values (weight must be
    positive to preserve the ranking; default 1.0). Materialises the index
    order once — one full index scan, charged to the catalog's I/O
    counters. *)

val top_k_selection :
  Catalog.t ->
  tables:(string * float) list ->
  ?algorithm:[ `Ta | `Nra | `Fagin | `Naive ] ->
  id_column:string ->
  score_column:string ->
  k:int ->
  unit ->
  (Source.object_id * float) list
(** Top-k selection across feature tables: each (table, weight) pair ranks
    the same objects; sources come from each table's score index (or a heap
    scan when absent). Defaults to TA. *)
