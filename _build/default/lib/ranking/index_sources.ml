open Relalg
open Storage

let of_index ?(weight = 1.0) catalog ~score_index ~id_column =
  if weight <= 0.0 then invalid_arg "Index_sources.of_index: weight <= 0";
  let info = Catalog.table catalog score_index.Catalog.ix_table in
  let schema = info.Catalog.tb_schema in
  let id_idx = Schema.index_of_exn schema ~relation:info.Catalog.tb_name id_column in
  let scoref = Expr.compile_float schema score_index.Catalog.ix_key in
  let next = Btree.scan_desc score_index.Catalog.ix_btree in
  let entries = ref [] in
  let rec drain () =
    match next () with
    | None -> ()
    | Some payload ->
        let tu = Catalog.index_payload_to_tuple catalog score_index payload in
        entries :=
          (Value.to_int (Tuple.get tu id_idx), weight *. scoref tu) :: !entries;
        drain ()
  in
  drain ();
  Source.of_scores (List.rev !entries)

let heap_source catalog table ~id_column ~score_column ~weight =
  let info = Catalog.table catalog table in
  let schema = info.Catalog.tb_schema in
  let id_idx = Schema.index_of_exn schema ~relation:table id_column in
  let scoref = Expr.compile_float schema (Expr.col ~relation:table score_column) in
  Source.of_scores
    (List.map
       (fun tu -> (Value.to_int (Tuple.get tu id_idx), weight *. scoref tu))
       (Heap_file.to_list info.Catalog.tb_heap))

let source_for catalog table ~id_column ~score_column ~weight =
  match
    Catalog.find_index_on_expr catalog ~table (Expr.col ~relation:table score_column)
  with
  | Some ix -> of_index ~weight catalog ~score_index:ix ~id_column
  | None -> heap_source catalog table ~id_column ~score_column ~weight

let top_k_selection catalog ~tables ?(algorithm = `Ta) ~id_column ~score_column
    ~k () =
  let sources =
    Array.of_list
      (List.map
         (fun (table, weight) ->
           source_for catalog table ~id_column ~score_column ~weight)
         tables)
  in
  let combine = Scoring.Sum in
  match algorithm with
  | `Ta -> Aggregate.ta ~combine ~k sources
  | `Nra -> Aggregate.nra ~combine ~k sources
  | `Fagin -> Aggregate.fagin ~combine ~k sources
  | `Naive -> Aggregate.naive ~combine ~k sources
