(** Rank-aggregation algorithms over ranked sources (top-k selection).

    These are the middleware algorithms the paper builds on (Section 2.1):
    FA and TA use sorted + random access, NRA uses sorted access only, and
    Borda is the classic positional (linear-time) method. All assume
    non-negative scores and a monotone combining function.

    Every algorithm returns the top-[k] (object, combined score) pairs in
    non-increasing score order. For NRA the reported score of an object whose
    fields were not all seen is its guaranteed lower bound. *)

open Relalg

val naive : combine:Scoring.t -> k:int -> Source.t array -> (Source.object_id * float) list
(** Scan everything, combine, sort — the correctness oracle. Objects missing
    from some source contribute 0 for that source. *)

val fagin : combine:Scoring.t -> k:int -> Source.t array -> (Source.object_id * float) list
(** Fagin's FA: parallel sorted access until [k] objects have been seen in
    every source, then random access to complete all seen objects. *)

val ta : combine:Scoring.t -> k:int -> Source.t array -> (Source.object_id * float) list
(** Threshold Algorithm: stops when the k-th best exact score reaches the
    threshold of the last scores seen under sorted access. *)

val nra : combine:Scoring.t -> k:int -> Source.t array -> (Source.object_id * float) list
(** No-Random-Access algorithm: maintains lower/upper bounds per seen object
    and stops when k objects' lower bounds dominate every other upper
    bound (including the unseen-object threshold). *)

val borda : Source.t array -> (Source.object_id * float) list
(** Borda positional ranking: an object at rank r (0-based) in a source of
    size n receives n - r points; absent objects receive 0. Returns all
    objects, best first. *)

val access_cost : Source.t array -> int * int
(** Total (sorted, random) accesses recorded on the sources. *)
