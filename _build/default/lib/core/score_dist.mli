(** Score distributions of rank-join outputs (Section 4.3, Equation 1).

    Base inputs have uniformly distributed scores (u{_1}); the combined score
    of joining j uniform inputs under a summation scoring function follows
    the sum-of-uniforms distribution u{_j} (triangular for j = 2, tending to
    normal by the central limit theorem). Equation 1 gives the expected i-th
    largest among m draws of u{_j} over [0, j·n]. *)

val expected_score_at : j:int -> n:float -> m:float -> i:float -> float
(** [expected_score_at ~j ~n ~m ~i] is Equation 1:
    [j·n - (j! · i · n^j / m)^(1/j)], computed in log space.
    Requires [j ≥ 1], [n > 0], [m > 0], [i ≥ 1]. *)

val log_tail_coefficient : j:int -> float
(** [ln (j!)] — the tail-shape constant of u{_j} near its maximum. *)

val pdf_u2 : n:float -> float -> float
(** Density of the triangular u{_2} distribution over [0, 2n] (used by tests
    to validate the shape claims). *)

val expected_top_gap : j:int -> n:float -> m:float -> float
(** Expected gap between the maximum possible score [j·n] and the best of
    [m] draws — Equation 1 with [i = 1]. *)
