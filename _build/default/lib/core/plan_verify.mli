(** Structural well-formedness checks for physical plans.

    The enumerator must only ever produce executable plans; these checks make
    that an explicit, testable invariant (every plan retained in the MEMO is
    verified in the test suite):

    - referenced tables and indexes exist in the catalog;
    - join conditions mention columns present on the matching side;
    - rank joins carry score expressions bound by their inputs, and their
      inputs produce the required descending orders;
    - sort-merge inputs produce ascending orders on their join keys;
    - index-nested-loops right sides are single base relations with an index
      on the join column;
    - expressions in filters/sorts are bound by their input schemas. *)

val check : Storage.Catalog.t -> Plan.t -> (unit, string) result

val check_exn : Storage.Catalog.t -> Plan.t -> unit
(** @raise Failure with the first problem found. *)
