(** Interesting order expressions — Definition 1 and Table 1 of the paper.

    Classic System R collects interesting orders from join columns, GROUP BY
    and ORDER BY. The paper's extension also makes {e score expressions}
    interesting: an order on a relation's score attribute feeds a rank-join
    directly, and an order on a partial weighted sum is what a rank-join
    {e subplan} produces for consumption by rank-joins above it. *)

open Relalg

type direction = Asc | Desc

type reason =
  | Join  (** Equi-join column: enables sort-merge join. *)
  | Rank_join  (** Score attribute or partial combination: feeds a rank-join. *)
  | Join_and_rank_join  (** Both of the above. *)
  | Order_by  (** The query's full ranking expression. *)

type interesting_order = {
  expr : Expr.t;
  direction : direction;
  reason : reason;
  relations : string list;  (** Relations whose columns appear in [expr]. *)
}

val derive : ?rank_aware:bool -> Logical.t -> interesting_order list
(** All interesting order expressions of a query. With [rank_aware:false]
    (the traditional optimizer) score attributes and partial combinations are
    {e not} interesting — only join columns and the final ORDER BY, as in
    Figure 2. Default [true], as in Figure 3 / Table 1. *)

val for_subset : interesting_order list -> string list -> interesting_order list
(** Orders still useful when planning the given subset of relations: orders
    whose expressions are fully contained in the subset. An order "retires"
    once no later operation can use it; retirement is handled by the
    enumerator via property comparison, not here. *)

val pp : Format.formatter -> interesting_order -> unit

val reason_name : reason -> string
