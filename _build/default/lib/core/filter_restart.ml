open Relalg

type stats = {
  restarts : int;
  attempts_io : int list;
  final_cutoff : float;
}

(* Per-relation score characteristics under a uniform-per-column
   independence assumption: mean, variance, min, max of the (weighted)
   score expression. *)
type score_profile = {
  sp_mean : float;
  sp_var : float;
  sp_min : float;
  sp_max : float;
}

let column_profile catalog table column =
  match Storage.Catalog.column_stats catalog ~table ~column with
  | Some cs ->
      let range = cs.Storage.Catalog.cs_max -. cs.Storage.Catalog.cs_min in
      {
        sp_mean = (cs.Storage.Catalog.cs_min +. cs.Storage.Catalog.cs_max) /. 2.0;
        sp_var = range *. range /. 12.0;
        sp_min = cs.Storage.Catalog.cs_min;
        sp_max = cs.Storage.Catalog.cs_max;
      }
  | None -> { sp_mean = 0.0; sp_var = 0.0; sp_min = 0.0; sp_max = 0.0 }

let scale w p =
  {
    sp_mean = w *. p.sp_mean;
    sp_var = w *. w *. p.sp_var;
    sp_min = (if w >= 0.0 then w *. p.sp_min else w *. p.sp_max);
    sp_max = (if w >= 0.0 then w *. p.sp_max else w *. p.sp_min);
  }

let combine a b =
  {
    sp_mean = a.sp_mean +. b.sp_mean;
    sp_var = a.sp_var +. b.sp_var;
    sp_min = a.sp_min +. b.sp_min;
    sp_max = a.sp_max +. b.sp_max;
  }

let zero_profile = { sp_mean = 0.0; sp_var = 0.0; sp_min = 0.0; sp_max = 0.0 }

(* Profile of a relation's weighted score expression (linear form over its
   own columns). *)
let relation_profile catalog (b : Logical.base) =
  match b.Logical.score with
  | None -> None
  | Some e -> (
      match Expr.as_linear e with
      | None -> None
      | Some lin ->
          let terms =
            List.map
              (fun ((w, r) : float * Expr.column_ref) ->
                match r.Expr.relation with
                | Some tbl -> scale (w *. b.Logical.weight) (column_profile catalog tbl r.Expr.name)
                | None -> zero_profile)
              lin.Expr.terms
          in
          Some (List.fold_left combine zero_profile terms))

let query_profiles catalog (q : Logical.t) =
  List.map
    (fun b ->
      match relation_profile catalog b with
      | Some p -> (b, p)
      | None -> failwith "Filter_restart: every relation needs a linear score")
    q.Logical.relations

let expected_join_size catalog (q : Logical.t) =
  let card name =
    float_of_int
      (Storage.Catalog.table catalog name).Storage.Catalog.tb_stats
        .Storage.Catalog.ts_cardinality
  in
  let base = List.fold_left (fun acc b -> acc *. card b.Logical.name) 1.0 q.Logical.relations in
  List.fold_left
    (fun acc j ->
      acc
      *. Storage.Catalog.estimate_join_selectivity catalog
           ~left:(j.Logical.left_table, j.Logical.left_column)
           ~right:(j.Logical.right_table, j.Logical.right_column))
    base q.Logical.joins

let initial_cutoff catalog q ~k ~safety =
  let profiles = List.map snd (query_profiles catalog q) in
  let total = List.fold_left combine zero_profile profiles in
  let n = Float.max 1.0 (expected_join_size catalog q) in
  let p = Rkutil.Mathx.clamp ~lo:1e-9 ~hi:0.999 (safety *. float_of_int k /. n) in
  let sigma = sqrt (Float.max 1e-12 total.sp_var) in
  let z = Rkutil.Mathx.normal_quantile (1.0 -. p) in
  Rkutil.Mathx.clamp ~lo:total.sp_min ~hi:total.sp_max
    (total.sp_mean +. (z *. sigma))

(* One evaluation attempt: scans with pushed-down per-relation cutoffs,
   left-deep hash joins in the query's join order, then the combined-score
   filter. Returns all qualifying (tuple, score). *)
let attempt catalog (q : Logical.t) profiles cutoff =
  let total = List.fold_left combine zero_profile (List.map snd profiles) in
  let scan (b : Logical.base) =
    let info = Storage.Catalog.table catalog b.Logical.name in
    let base = Exec.Scan.heap info in
    let filtered =
      match b.Logical.filter with
      | None -> base
      | Some pred -> Exec.Basic_ops.filter pred base
    in
    (* Pushdown: a result can only reach [cutoff] if this relation's score
       is at least cutoff - (sum of the other relations' maxima). *)
    match b.Logical.score, List.assoc_opt b (profiles :> (Logical.base * score_profile) list) with
    | Some score_expr, Some p ->
        let bound = cutoff -. (total.sp_max -. p.sp_max) in
        if bound > p.sp_min then
          Exec.Basic_ops.filter
            (Expr.Cmp
               ( Expr.Ge,
                 Expr.Mul (Expr.cfloat b.Logical.weight, score_expr),
                 Expr.cfloat bound ))
            filtered
        else filtered
    | _ -> filtered
  in
  let ops = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace ops b.Logical.name (scan b)) q.Logical.relations;
  let joined = Hashtbl.create 8 in
  let acc = ref None in
  List.iter
    (fun (j : Logical.join_pred) ->
      let lkey = Expr.col ~relation:j.Logical.left_table j.Logical.left_column in
      let rkey = Expr.col ~relation:j.Logical.right_table j.Logical.right_column in
      match !acc with
      | None ->
          Hashtbl.replace joined j.Logical.left_table ();
          Hashtbl.replace joined j.Logical.right_table ();
          acc :=
            Some
              (Exec.Join.hash ~left_key:lkey ~right_key:rkey
                 (Hashtbl.find ops j.Logical.left_table)
                 (Hashtbl.find ops j.Logical.right_table))
      | Some a ->
          let fresh =
            if Hashtbl.mem joined j.Logical.right_table then j.Logical.left_table
            else j.Logical.right_table
          in
          Hashtbl.replace joined fresh ();
          acc := Some (Exec.Join.hash ~left_key:lkey ~right_key:rkey a (Hashtbl.find ops fresh)))
    q.Logical.joins;
  let plan_op =
    match !acc with
    | Some op -> op
    | None -> (
        match q.Logical.relations with
        | [ b ] -> Hashtbl.find ops b.Logical.name
        | _ -> failwith "Filter_restart: no joins for a multi-relation query")
  in
  let scoring =
    match Logical.scoring_expr q with
    | Some e -> e
    | None -> failwith "Filter_restart: not a ranking query"
  in
  let schema = plan_op.Exec.Operator.schema in
  let scoref = Expr.compile_float schema scoring in
  let out = Exec.Operator.to_list plan_op in
  List.filter_map
    (fun tu ->
      let s = scoref tu in
      if s >= cutoff then Some (tu, s) else None)
    out

let top_k ?(safety = 2.0) ?(relax = 0.5) catalog (q : Logical.t) =
  match q.Logical.k with
  | None -> Error "Filter_restart: query has no k"
  | Some k -> (
      match query_profiles catalog q with
      | exception Failure msg -> Error msg
      | profiles ->
          let total = List.fold_left combine zero_profile (List.map snd profiles) in
          let io = Storage.Catalog.io catalog in
          let rec go cutoff attempts ios =
            let before = Storage.Io_stats.snapshot io in
            let results = attempt catalog q profiles cutoff in
            let after = Storage.Io_stats.snapshot io in
            let spent = Storage.Io_stats.total_io (Storage.Io_stats.diff after before) in
            let ios = spent :: ios in
            let enough = List.length results >= k in
            let exhausted = cutoff <= total.sp_min +. 1e-12 in
            if enough || exhausted || attempts >= 20 then begin
              let sorted =
                List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) results
              in
              let topk = List.filteri (fun i _ -> i < k) sorted in
              Ok
                ( topk,
                  {
                    restarts = attempts;
                    attempts_io = List.rev ios;
                    final_cutoff = cutoff;
                  } )
            end
            else begin
              (* Relax toward the minimum possible combined score. *)
              let cutoff' = total.sp_min +. (relax *. (cutoff -. total.sp_min)) in
              go cutoff' (attempts + 1) ios
            end
          in
          go (initial_cutoff catalog q ~k ~safety) 0 [])
