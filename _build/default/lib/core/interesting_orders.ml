open Relalg

type direction = Asc | Desc

type reason =
  | Join
  | Rank_join
  | Join_and_rank_join
  | Order_by

type interesting_order = {
  expr : Expr.t;
  direction : direction;
  reason : reason;
  relations : string list;
}

let reason_name = function
  | Join -> "Join"
  | Rank_join -> "Rank-join"
  | Join_and_rank_join -> "Join and Rank-join"
  | Order_by -> "Orderby"

let merge_reason a b =
  match a, b with
  | Order_by, _ | _, Order_by -> Order_by
  | Join, Rank_join | Rank_join, Join -> Join_and_rank_join
  | Join_and_rank_join, _ | _, Join_and_rank_join -> Join_and_rank_join
  | Join, Join -> Join
  | Rank_join, Rank_join -> Rank_join

(* Subsets (as lists) of size >= 2 of the given elements, by bitmask. *)
let subsets_of_size_ge2 xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let acc = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let members = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then members := arr.(i) :: !members
    done;
    if List.length !members >= 2 then acc := !members :: !acc
  done;
  List.rev !acc

let derive ?(rank_aware = true) (q : Logical.t) =
  let orders : interesting_order list ref = ref [] in
  let add expr direction reason relations =
    let rec merge = function
      | [] -> [ { expr; direction; reason; relations } ]
      | o :: rest ->
          if Expr.equal o.expr expr && o.direction = direction then
            { o with reason = merge_reason o.reason reason } :: rest
          else o :: merge rest
    in
    orders := merge !orders
  in
  (* 1. Columns of equi-join predicates (ascending, for sort-merge). *)
  List.iter
    (fun (j : Logical.join_pred) ->
      add
        (Expr.col ~relation:j.Logical.left_table j.Logical.left_column)
        Asc Join
        [ j.Logical.left_table ];
      add
        (Expr.col ~relation:j.Logical.right_table j.Logical.right_column)
        Asc Join
        [ j.Logical.right_table ])
    q.Logical.joins;
  let ranked = Logical.ranked_relations q in
  if Logical.is_ranking q then begin
    if rank_aware then begin
      (* 2. Individual score expressions: rank-join inputs. *)
      List.iter
        (fun (b : Logical.base) ->
          match b.Logical.score with
          | Some e -> add e Desc Rank_join [ b.Logical.name ]
          | None -> ())
        ranked;
      (* 3. Partial combinations: what rank-join subplans produce. The full
         combination is the ORDER BY itself, tagged below. *)
      let names = List.map (fun (b : Logical.base) -> b.Logical.name) ranked in
      List.iter
        (fun subset ->
          if List.length subset < List.length names then
            match Logical.partial_scoring_expr q subset with
            | Some e -> add e Desc Rank_join subset
            | None -> ())
        (subsets_of_size_ge2 names)
    end;
    (* 4. The final ranking expression (present even for the traditional
       optimizer: it is an ORDER BY). *)
    match Logical.scoring_expr q with
    | Some e ->
        add e Desc Order_by
          (List.map (fun (b : Logical.base) -> b.Logical.name) ranked)
    | None -> ()
  end;
  (* An attribute interesting in both directions (join column ascending,
     rank attribute descending) carries both reasons, as in Table 1. *)
  let combined =
    List.map
      (fun o ->
        let cross_reason =
          List.fold_left
            (fun acc o' ->
              if Expr.equal o.expr o'.expr && o.direction <> o'.direction then
                merge_reason acc o'.reason
              else acc)
            o.reason !orders
        in
        { o with reason = cross_reason })
      !orders
  in
  combined

let for_subset orders names =
  List.filter
    (fun o -> List.for_all (fun r -> List.mem r names) o.relations)
    orders

let pp fmt o =
  Format.fprintf fmt "%a %s (%s)" Expr.pp o.expr
    (match o.direction with Asc -> "ASC" | Desc -> "DESC")
    (reason_name o.reason)
