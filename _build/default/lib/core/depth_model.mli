(** Probabilistic estimation of rank-join input cardinality — Section 4.

    The {e depth} of a rank-join operator is the number of tuples it must
    consume from an input to produce the top [k] join results. The model
    proceeds in three steps (Figure 7):

    + {e Any-k depths} [cL, cR]: enough tuples that ~k valid join results
      exist among them (Theorem 1: [s·cL·cR ≥ k]).
    + {e Top-k depths} [dL, dR]: deep enough that those k results are
      guaranteed to be the global top-k (Theorem 2, via score-difference
      slabs).
    + Choose [cL, cR] to minimise [dL, dR].

    Closed forms are provided for uniform base scores (slab form), for the
    worst case over sum-of-uniform (u{_j}) inputs (Equations 2-5), and for
    the average case. All are computed in log space. *)

type side = {
  fan : int;  (** Number of base ranked relations feeding this input (l or r). *)
  card : float;  (** Cardinality of this input stream. *)
}

type params = {
  k : float;  (** Required number of ranked join results (≥ 1). *)
  s : float;  (** Join selectivity (0 < s ≤ 1). *)
  n : float;  (** Per-base-relation cardinality (the paper's n). *)
  left : side;
  right : side;
}

type depths = { d_left : float; d_right : float }

val any_k_depths : k:float -> s:float -> x:float -> y:float -> float * float
(** Slab form of step 1: [cL = sqrt(y·k / (x·s))], [cR = sqrt(x·k / (y·s))],
    where [x]/[y] are the mean score decrements per rank position of the
    left/right input. These minimise [δ = x·cL + y·cR] under [s·cL·cR ≥ k]. *)

val top_k_depths_slabs : k:float -> s:float -> x:float -> y:float -> depths
(** Steps 2+3 in slab form: [dL = cL + (y/x)·cR], [dR = cR + (x/y)·cL]. For
    equal slabs both collapse to [2·sqrt(k/s)]. *)

val uniform_depth : k:float -> s:float -> float
(** The symmetric special case [2·sqrt(k/s)]. *)

val nary_uniform_depth : m:int -> k:float -> s:float -> float
(** Symmetric per-input depth for a flat m-way rank join on one shared key
    with pairwise selectivity [s]: any-k needs [s^(m-1)·c^m ≥ k] and the
    Theorem-2 slack multiplies by m, giving
    [d = m·(k / s^(m-1))^(1/m)]. Reduces to [2·sqrt(k/s)] at m = 2. *)

val worst_case_depths : params -> depths
(** Equations 2-5: strict upper bounds for a join of a u{_l}-distributed
    input with a u{_r}-distributed input. *)

val average_case_depths : params -> depths
(** The average-case closed form (end of Section 4.3). *)

val clamped : params -> depths -> depths
(** Clamp each depth into [\[1, side.card\]] — an operator can never read
    more tuples than its input holds. *)

val buffer_upper_bound : depths -> s:float -> float
(** Worst-case rank-join buffer size [dL·dR·s] (Section 5.3). *)
