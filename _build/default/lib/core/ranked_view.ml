open Relalg

type t = {
  schema : Schema.t;
  capacity : int;
  complete : bool;
  weights : (string * float) list;
  (* Per-relation plain score expressions (weight factored out). *)
  scores : (string * Expr.t) list;
  (* Per-relation maximum possible score value (from catalog statistics). *)
  score_max : (string * float) list;
  (* Rows with their reference combined score, best first. *)
  rows : (Tuple.t * float) list;
  tau : float;  (* reference score of the last kept row *)
}

(* Maximum possible value of a linear score expression, from column stats. *)
let expr_max catalog expr =
  match Expr.as_linear expr with
  | None -> infinity
  | Some lin ->
      List.fold_left
        (fun acc ((w, r) : float * Expr.column_ref) ->
          match r.Expr.relation with
          | None -> infinity
          | Some table -> (
              match Storage.Catalog.column_stats catalog ~table ~column:r.Expr.name with
              | Some cs ->
                  acc
                  +. (if w >= 0.0 then w *. cs.Storage.Catalog.cs_max
                      else w *. cs.Storage.Catalog.cs_min)
              | None -> infinity))
        lin.Expr.intercept lin.Expr.terms

let create ?config catalog (q : Logical.t) ~capacity =
  if not (Logical.is_ranking q || Option.is_none q.Logical.k) then
    invalid_arg "Ranked_view.create: not a ranking query";
  let ranked = Logical.ranked_relations q in
  if ranked = [] then invalid_arg "Ranked_view.create: no ranked relations";
  List.iter
    (fun (b : Logical.base) ->
      if b.Logical.weight <= 0.0 then
        invalid_arg "Ranked_view.create: non-positive reference weight")
    ranked;
  let materialise_q = { q with Logical.k = Some capacity } in
  let planned = Optimizer.optimize ?config catalog materialise_q in
  let result = Optimizer.execute catalog planned in
  let rows = result.Executor.rows in
  let join_size_bounded = List.length rows < capacity in
  {
    schema = result.Executor.schema;
    capacity;
    complete = join_size_bounded;
    weights = List.map (fun (b : Logical.base) -> (b.Logical.name, b.Logical.weight)) ranked;
    scores =
      List.map
        (fun (b : Logical.base) -> (b.Logical.name, Option.get b.Logical.score))
        ranked;
    score_max =
      List.map
        (fun (b : Logical.base) ->
          (b.Logical.name, expr_max catalog (Option.get b.Logical.score)))
        ranked;
    rows;
    tau =
      (match List.rev rows with
      | (_, s) :: _ -> s
      | [] -> neg_infinity);
  }

let capacity t = t.capacity

let size t = List.length t.rows

let complete t = t.complete

let schema t = t.schema

let reference_weights t = t.weights

let answer t ~k =
  if k <= 0 then Some []
  else if k <= size t || t.complete then
    Some (List.filteri (fun i _ -> i < k) t.rows)
  else None

let answer_reweighted t ~weights ~k =
  if k <= 0 then Some []
  else begin
    (* Validate the new weight vector: same relations, non-negative. *)
    let ok =
      List.for_all
        (fun (name, _) -> List.mem_assoc name weights)
        t.weights
      && List.for_all
           (fun (name, w) -> w >= 0.0 && List.mem_assoc name t.weights)
           weights
    in
    if not ok then None
    else begin
      let new_score_expr =
        Expr.weighted_sum
          (List.map
             (fun (name, w) -> (w, List.assoc name t.scores))
             weights)
      in
      let f = Expr.compile_float t.schema new_score_expr in
      let rescored =
        List.stable_sort
          (fun (_, a) (_, b) -> Float.compare b a)
          (List.map (fun (tu, _) -> (tu, f tu)) t.rows)
      in
      if t.complete then Some (List.filteri (fun i _ -> i < k) rescored)
      else if k > List.length rescored then None
      else begin
        (* Safety bound: a non-materialised result satisfies
           sum_i w_i s_i < tau with 0 <= s_i <= max_i; the largest possible
           sum_i w'_i s_i under those constraints is the fractional-knapsack
           optimum, filled in decreasing w'_i/w_i order. *)
        let by_ratio =
          List.stable_sort
            (fun (na, wa') (nb, wb') ->
              let ra = wa' /. List.assoc na t.weights in
              let rb = wb' /. List.assoc nb t.weights in
              Float.compare rb ra)
            weights
        in
        let bound =
          let budget = ref t.tau and acc = ref 0.0 in
          List.iter
            (fun (name, w') ->
              let w = List.assoc name t.weights in
              let m = List.assoc name t.score_max in
              let s = Float.min m (Float.max 0.0 (!budget /. w)) in
              acc := !acc +. (w' *. s);
              budget := !budget -. (w *. s))
            by_ratio;
          !acc
        in
        let kth =
          match List.nth_opt rescored (k - 1) with
          | Some (_, s) -> s
          | None -> neg_infinity
        in
        if kth >= bound then Some (List.filteri (fun i _ -> i < k) rescored)
        else None
      end
    end
  end
