(** Propagating the required number of results down a plan — Figure 8.

    In a pipeline of rank-joins, the input depth of an operator is the
    required number of ranked results of its child (Figure 4: k = 100 at the
    top becomes 580 at the child join, which needs 783 of {e its} inputs).
    [run] annotates every node of a plan with its required output count and,
    for rank-join nodes, the estimated input depths. *)

type annotation = {
  node : Plan.t;  (** The subplan rooted here. *)
  required : float;  (** Output rows this node must produce. *)
  depths : Depth_model.depths option;  (** Rank-join nodes only. *)
  children : annotation list;
}

val run : Cost_model.env -> k:int -> Plan.t -> annotation

val rank_join_annotations : annotation -> (Plan.t * float * Depth_model.depths) list
(** All rank-join nodes, pre-order: (node, required k, estimated depths). *)

val pp : Format.formatter -> annotation -> unit
