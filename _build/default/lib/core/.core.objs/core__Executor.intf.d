lib/core/executor.mli: Exec Plan Propagate Relalg Schema Storage Tuple
