lib/core/optimizer.ml: Buffer Cost_model Enumerator Executor Format Interesting_orders Logical Logs Memo Option Plan Propagate
