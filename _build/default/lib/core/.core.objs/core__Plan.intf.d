lib/core/plan.mli: Expr Format Interesting_orders Logical Relalg Schema Storage
