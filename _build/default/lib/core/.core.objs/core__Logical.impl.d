lib/core/logical.ml: Expr Format Hashtbl List Option Relalg String
