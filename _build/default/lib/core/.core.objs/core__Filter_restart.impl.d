lib/core/filter_restart.ml: Exec Expr Float Hashtbl List Logical Relalg Rkutil Storage
