lib/core/cost_model.ml: Depth_model Expr Float List Logical Option Plan Relalg Rkutil Storage String Value
