lib/core/enumerator.ml: Array Cost_model Expr Interesting_orders List Logical Memo Option Plan Relalg Storage String
