lib/core/interesting_orders.mli: Expr Format Logical Relalg
