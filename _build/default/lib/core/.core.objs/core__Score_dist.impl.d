lib/core/score_dist.ml: Rkutil
