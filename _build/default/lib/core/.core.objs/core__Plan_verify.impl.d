lib/core/plan_verify.ml: Expr Interesting_orders List Logical Plan Printf Relalg Result Storage String
