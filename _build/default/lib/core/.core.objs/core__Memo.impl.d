lib/core/memo.ml: Cost_model Float Format Hashtbl Interesting_orders List Plan Relalg
