lib/core/executor.ml: Depth_model Exec Expr Interesting_orders List Logical Plan Propagate Relalg Schema Storage String Tuple
