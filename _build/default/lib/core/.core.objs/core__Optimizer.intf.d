lib/core/optimizer.mli: Cost_model Enumerator Executor Interesting_orders Logical Plan Storage
