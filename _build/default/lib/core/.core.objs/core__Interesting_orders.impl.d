lib/core/interesting_orders.ml: Array Expr Format List Logical Relalg
