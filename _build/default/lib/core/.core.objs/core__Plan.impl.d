lib/core/plan.ml: Expr Format Interesting_orders List Logical Option Printf Relalg Schema Storage String
