lib/core/propagate.ml: Cost_model Depth_model Float Format List Plan Printf Rkutil Storage String
