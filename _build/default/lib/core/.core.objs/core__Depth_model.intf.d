lib/core/depth_model.mli:
