lib/core/score_dist.mli:
