lib/core/propagate.mli: Cost_model Depth_model Format Plan
