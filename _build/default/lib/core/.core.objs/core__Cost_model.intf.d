lib/core/cost_model.mli: Depth_model Expr Logical Plan Relalg Schema Storage
