lib/core/ranked_view.mli: Enumerator Logical Relalg Schema Storage Tuple
