lib/core/enumerator.mli: Cost_model Interesting_orders Memo
