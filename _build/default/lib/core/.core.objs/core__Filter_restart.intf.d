lib/core/filter_restart.mli: Logical Relalg Storage Tuple
