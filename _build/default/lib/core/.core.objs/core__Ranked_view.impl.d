lib/core/ranked_view.ml: Executor Expr Float List Logical Optimizer Option Relalg Schema Storage Tuple
