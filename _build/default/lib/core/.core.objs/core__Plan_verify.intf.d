lib/core/plan_verify.mli: Plan Storage
