lib/core/depth_model.ml: Float Rkutil
