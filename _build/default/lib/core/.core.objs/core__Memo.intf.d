lib/core/memo.mli: Cost_model Format Plan
