lib/core/logical.mli: Expr Format Relalg
