open Relalg

type rank_node_stats = {
  label : string;
  algo : Plan.join_algo;
  stats : Exec.Rank_join.stats;
}

type nary_node_stats = {
  nary_label : string;
  nary_stats : Exec.Exec_stats.t;
}

type run_result = {
  rows : (Tuple.t * float) list;
  io : Storage.Io_stats.snapshot;
  rank_nodes : rank_node_stats list;
  nary_nodes : nary_node_stats list;
  schema : Schema.t;
}

let find_index catalog table name =
  match
    List.find_opt
      (fun ix -> String.equal ix.Storage.Catalog.ix_name name)
      (Storage.Catalog.indexes_on catalog table)
  with
  | Some ix -> ix
  | None -> invalid_arg ("Executor: unknown index " ^ name)

let key_extractor schema ~table ~column =
  let f = Expr.compile schema (Expr.col ~relation:table column) in
  f

let score_fn schema = function
  | Some e -> Expr.compile_float schema e
  | None -> fun _ -> 0.0

let sort_budget catalog =
  Exec.Sort.budget
    ~tuples_per_page:(Storage.Catalog.tuples_per_page catalog)
    (Storage.Catalog.pool catalog)

let compile ?hints catalog plan =
  let rank_nodes = ref [] in
  let nary_nodes = ref [] in
  (* [ann] mirrors the plan subtree currently being compiled, when hints were
     provided for the whole plan. *)
  let child_ann ann i =
    match ann with
    | None -> None
    | Some a -> List.nth_opt a.Propagate.children i
  in
  let rec go ann plan : Exec.Operator.t =
    match plan with
    | Plan.Table_scan { table } ->
        Exec.Scan.heap (Storage.Catalog.table catalog table)
    | Plan.Index_scan { table; index; desc; _ } ->
        let ix = find_index catalog table index in
        if desc then Exec.Scan.index_desc catalog ix
        else Exec.Scan.index_asc catalog ix
    | Plan.Filter { pred; input } ->
        Exec.Basic_ops.filter pred (go (child_ann ann 0) input)
    | Plan.Sort { order; input } ->
        let desc = order.Plan.direction = Interesting_orders.Desc in
        Exec.Sort.by_expr (sort_budget catalog) ~desc order.Plan.expr
          (go (child_ann ann 0) input)
    | Plan.Top_k { k; input } ->
        Exec.Basic_ops.limit k (go (child_ann ann 0) input)
    | Plan.Nary_rank_join { inputs; scores; key; tables } ->
        let compiled =
          List.mapi (fun i input -> go (child_ann ann i) input) inputs
        in
        let nary_inputs =
          List.map2
            (fun (op, score) table ->
              let schema = op.Exec.Operator.schema in
              {
                Exec.Rank_join_nary.stream =
                  Exec.Operator.with_score (Expr.compile_float schema score) op;
                key = key_extractor schema ~table ~column:key;
              })
            (List.combine compiled scores)
            tables
        in
        let stream, stats = Exec.Rank_join_nary.hrjn_nary ~inputs:nary_inputs () in
        nary_nodes :=
          { nary_label = Plan.describe plan; nary_stats = stats } :: !nary_nodes;
        Exec.Operator.scored_to_plain stream
    | Plan.Join { algo; cond; left; right; left_score; right_score } -> (
        let lt = cond.Logical.left_table and lc = cond.Logical.left_column in
        let rt = cond.Logical.right_table and rc = cond.Logical.right_column in
        let pred = Expr.(col ~relation:lt lc = col ~relation:rt rc) in
        match algo with
        | Plan.Nested_loops ->
            Exec.Join.nested_loops ~pred (go (child_ann ann 0) left)
              (go (child_ann ann 1) right)
        | Plan.Hash ->
            (* Memory-adaptive: degenerates to an in-memory hash join when
               the build side fits, spills Grace partitions otherwise. *)
            Exec.Join.grace_hash
              ~left_key:(Expr.col ~relation:lt lc)
              ~right_key:(Expr.col ~relation:rt rc)
              (sort_budget catalog)
              (go (child_ann ann 0) left)
              (go (child_ann ann 1) right)
        | Plan.Sort_merge ->
            Exec.Join.merge_only
              ~left_key:(Expr.col ~relation:lt lc)
              ~right_key:(Expr.col ~relation:rt rc)
              (go (child_ann ann 0) left)
              (go (child_ann ann 1) right)
        | Plan.Index_nl ->
            let info = Storage.Catalog.table catalog rt in
            let ix =
              match
                Storage.Catalog.find_index_on_expr catalog ~table:rt
                  (Expr.col ~relation:rt rc)
              with
              | Some ix -> ix
              | None -> invalid_arg "Executor: INL join without index"
            in
            Exec.Join.index_nested_loops
              ~left_key:(Expr.col ~relation:lt lc)
              ~right_schema:info.Storage.Catalog.tb_schema
              ~lookup:(Exec.Scan.index_probe catalog ix)
              (go (child_ann ann 0) left)
        | Plan.Hrjn ->
            let lop = go (child_ann ann 0) left
            and rop = go (child_ann ann 1) right in
            let lschema = lop.Exec.Operator.schema
            and rschema = rop.Exec.Operator.schema in
            let left_input =
              {
                Exec.Rank_join.stream =
                  Exec.Operator.with_score (score_fn lschema left_score) lop;
                key = key_extractor lschema ~table:lt ~column:lc;
              }
            in
            let right_input =
              {
                Exec.Rank_join.stream =
                  Exec.Operator.with_score (score_fn rschema right_score) rop;
                key = key_extractor rschema ~table:rt ~column:rc;
              }
            in
            let polling =
              match ann with
              | Some { Propagate.depths = Some d; _ }
                when d.Depth_model.d_right > 0.0 ->
                  Exec.Rank_join.Ratio
                    (d.Depth_model.d_left /. d.Depth_model.d_right)
              | _ -> Exec.Rank_join.Alternate
            in
            let stream, stats =
              Exec.Rank_join.hrjn ~polling ~combine:( +. ) ~left:left_input
                ~right:right_input ()
            in
            rank_nodes :=
              { label = Plan.describe plan; algo; stats } :: !rank_nodes;
            Exec.Operator.scored_to_plain stream
        | Plan.Nrjn ->
            let lop = go (child_ann ann 0) left
            and rop = go (child_ann ann 1) right in
            let lschema = lop.Exec.Operator.schema
            and rschema = rop.Exec.Operator.schema in
            let outer =
              Exec.Operator.with_score (score_fn lschema left_score) lop
            in
            let stream, stats =
              Exec.Rank_join.nrjn ~combine:( +. ) ~pred ~outer ~inner:rop
                ~inner_score:(score_fn rschema right_score) ()
            in
            rank_nodes :=
              { label = Plan.describe plan; algo; stats } :: !rank_nodes;
            Exec.Operator.scored_to_plain stream)
  in
  let op = go hints plan in
  (op, List.rev !rank_nodes, List.rev !nary_nodes)

let run ?hints ?fetch_limit catalog plan =
  let op, rank_nodes, nary_nodes = compile ?hints catalog plan in
  let schema = op.Exec.Operator.schema in
  let score =
    match Plan.order_of plan with
    | Some { Plan.expr; _ } when Expr.bound_by schema expr ->
        Expr.compile_float schema expr
    | _ -> fun _ -> 0.0
  in
  let io = Storage.Catalog.io catalog in
  let before = Storage.Io_stats.snapshot io in
  let tuples =
    match fetch_limit with
    | None -> Exec.Operator.to_list op
    | Some n -> Exec.Operator.take op n
  in
  let after = Storage.Io_stats.snapshot io in
  {
    rows = List.map (fun tu -> (tu, score tu)) tuples;
    io = Storage.Io_stats.diff after before;
    rank_nodes;
    nary_nodes;
    schema;
  }
