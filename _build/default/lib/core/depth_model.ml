type side = {
  fan : int;
  card : float;
}

type params = {
  k : float;
  s : float;
  n : float;
  left : side;
  right : side;
}

type depths = { d_left : float; d_right : float }

let check_ks k s =
  if k < 1.0 then invalid_arg "Depth_model: k < 1";
  if s <= 0.0 || s > 1.0 then invalid_arg "Depth_model: selectivity outside (0,1]"

let any_k_depths ~k ~s ~x ~y =
  check_ks k s;
  if x <= 0.0 || y <= 0.0 then invalid_arg "Depth_model.any_k_depths: slab <= 0";
  let c_l = sqrt (y *. k /. (x *. s)) in
  let c_r = sqrt (x *. k /. (y *. s)) in
  (c_l, c_r)

let top_k_depths_slabs ~k ~s ~x ~y =
  let c_l, c_r = any_k_depths ~k ~s ~x ~y in
  { d_left = c_l +. (y /. x *. c_r); d_right = c_r +. (x /. y *. c_l) }

let uniform_depth ~k ~s =
  check_ks k s;
  2.0 *. sqrt (k /. s)

let nary_uniform_depth ~m ~k ~s =
  check_ks k s;
  if m < 2 then invalid_arg "Depth_model.nary_uniform_depth: m < 2";
  let mf = float_of_int m in
  mf *. exp ((log k -. ((mf -. 1.0) *. log s)) /. mf)

let check_params p =
  check_ks p.k p.s;
  if p.n < 1.0 then invalid_arg "Depth_model: n < 1";
  if p.left.fan < 1 || p.right.fan < 1 then invalid_arg "Depth_model: fan < 1"

(* Equations 2-5. Everything is assembled in log space because the
   factorial powers overflow floats for modest l, r. *)
let worst_case_depths p =
  check_params p;
  let l = float_of_int p.left.fan and r = float_of_int p.right.fan in
  let logfact = Rkutil.Mathx.log_factorial in
  let log_k = log p.k and log_n = log p.n and log_s = log p.s in
  (* cL^(r+l) = (r!)^l k^l n^(r-l) l^(rl) / ( s^l (l!)^r r^(rl) ) *)
  let log_cl =
    ((l *. logfact p.right.fan)
    +. (l *. log_k)
    +. ((r -. l) *. log_n)
    +. (r *. l *. log l)
    -. (l *. log_s)
    -. (r *. logfact p.left.fan)
    -. (r *. l *. log r))
    /. (r +. l)
  in
  let log_cr =
    ((r *. logfact p.left.fan)
    +. (r *. log_k)
    +. ((l -. r) *. log_n)
    +. (r *. l *. log r)
    -. (r *. log_s)
    -. (l *. logfact p.right.fan)
    -. (r *. l *. log l))
    /. (r +. l)
  in
  let d_left = exp (log_cl +. (l *. log1p (r /. l))) in
  let d_right = exp (log_cr +. (r *. log1p (l /. r))) in
  { d_left; d_right }

(* dL^(l+r) = ((l+r)!)^l k^l n^(r-l) / ( (l!)^(l+r) s^l ), and symmetrically
   for dR. *)
let average_case_depths p =
  check_params p;
  let l = float_of_int p.left.fan and r = float_of_int p.right.fan in
  let logfact = Rkutil.Mathx.log_factorial in
  let log_joint = logfact (p.left.fan + p.right.fan) in
  let log_k = log p.k and log_n = log p.n and log_s = log p.s in
  let log_dl =
    ((l *. log_joint)
    +. (l *. log_k)
    +. ((r -. l) *. log_n)
    -. ((l +. r) *. logfact p.left.fan)
    -. (l *. log_s))
    /. (l +. r)
  in
  let log_dr =
    ((r *. log_joint)
    +. (r *. log_k)
    +. ((l -. r) *. log_n)
    -. ((l +. r) *. logfact p.right.fan)
    -. (r *. log_s))
    /. (l +. r)
  in
  { d_left = exp log_dl; d_right = exp log_dr }

let clamped p d =
  let clamp card v = Rkutil.Mathx.clamp ~lo:1.0 ~hi:(Float.max 1.0 card) v in
  { d_left = clamp p.left.card d.d_left; d_right = clamp p.right.card d.d_right }

let buffer_upper_bound d ~s = d.d_left *. d.d_right *. s
