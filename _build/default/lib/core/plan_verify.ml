open Relalg

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let rec check catalog plan =
  match plan with
  | Plan.Table_scan { table } -> (
      match Storage.Catalog.find_table catalog table with
      | Some _ -> Ok ()
      | None -> err "unknown table %s" table)
  | Plan.Index_scan { table; index; key; _ } -> (
      match Storage.Catalog.find_table catalog table with
      | None -> err "unknown table %s" table
      | Some info -> (
          match
            List.find_opt
              (fun ix -> String.equal ix.Storage.Catalog.ix_name index)
              info.Storage.Catalog.tb_indexes
          with
          | None -> err "unknown index %s on %s" index table
          | Some ix ->
              if Expr.equal ix.Storage.Catalog.ix_key key then Ok ()
              else err "index %s key mismatch" index))
  | Plan.Filter { pred; input } ->
      let* () = check catalog input in
      if Expr.bound_by (Plan.schema_of catalog input) pred then Ok ()
      else err "filter predicate %s unbound" (Expr.to_string pred)
  | Plan.Sort { order; input } ->
      let* () = check catalog input in
      if Expr.bound_by (Plan.schema_of catalog input) order.Plan.expr then Ok ()
      else err "sort key %s unbound" (Expr.to_string order.Plan.expr)
  | Plan.Top_k { k; input } ->
      let* () = check catalog input in
      if k >= 0 then Ok () else err "negative k"
  | Plan.Join { algo; cond; left; right; left_score; right_score } ->
      let* () = check catalog left in
      let* () = check catalog right in
      let ls = Plan.schema_of catalog left and rs = Plan.schema_of catalog right in
      let lkey = Expr.col ~relation:cond.Logical.left_table cond.Logical.left_column in
      let rkey = Expr.col ~relation:cond.Logical.right_table cond.Logical.right_column in
      let* () =
        if Expr.bound_by ls lkey then Ok ()
        else
          err "join key %s.%s not on the left side" cond.Logical.left_table
            cond.Logical.left_column
      in
      let* () =
        if Expr.bound_by rs rkey then Ok ()
        else
          err "join key %s.%s not on the right side" cond.Logical.right_table
            cond.Logical.right_column
      in
      let ordered_desc side_schema side score =
        match score with
        | None -> err "%s rank-join input lacks a score expression" side
        | Some e ->
            if not (Expr.bound_by side_schema e) then
              err "%s score %s unbound" side (Expr.to_string e)
            else Ok ()
      in
      let produces_desc input score =
        match score, Plan.order_of input with
        | Some e, Some o ->
            o.Plan.direction = Interesting_orders.Desc && Expr.equal o.Plan.expr e
        | _ -> false
      in
      (match algo with
      | Plan.Hrjn ->
          let* () = ordered_desc ls "left" left_score in
          let* () = ordered_desc rs "right" right_score in
          let* () =
            if produces_desc left left_score then Ok ()
            else err "HRJN left input is not sorted on its score"
          in
          if produces_desc right right_score then Ok ()
          else err "HRJN right input is not sorted on its score"
      | Plan.Nrjn ->
          let* () = ordered_desc ls "outer" left_score in
          if produces_desc left left_score then Ok ()
          else err "NRJN outer input is not sorted on its score"
      | Plan.Sort_merge ->
          let asc key input =
            match Plan.order_of input with
            | Some o -> o.Plan.direction = Interesting_orders.Asc && Expr.equal o.Plan.expr key
            | None -> false
          in
          if asc lkey left && asc rkey right then Ok ()
          else err "sort-merge inputs are not ordered on their join keys"
      | Plan.Index_nl -> (
          match Plan.relations right with
          | [ single ] when String.equal single cond.Logical.right_table -> (
              match
                Storage.Catalog.find_index_on_expr catalog
                  ~table:cond.Logical.right_table rkey
              with
              | Some _ -> Ok ()
              | None -> err "INL join without an index on %s" cond.Logical.right_table)
          | _ -> err "INL right side must be the single probed relation")
      | Plan.Nested_loops | Plan.Hash -> Ok ())
  | Plan.Nary_rank_join { inputs; scores; key; tables } ->
      if List.length inputs < 2 then err "N-ary rank join needs >= 2 inputs"
      else if
        List.length inputs <> List.length scores
        || List.length inputs <> List.length tables
      then err "N-ary rank join arity mismatch"
      else begin
        let rec check_inputs inputs scores tables =
          match inputs, scores, tables with
          | [], [], [] -> Ok ()
          | input :: is, score :: ss, table :: ts ->
              let* () = check catalog input in
              let schema = Plan.schema_of catalog input in
              let* () =
                if Expr.bound_by schema (Expr.col ~relation:table key) then Ok ()
                else err "N-ary join key %s.%s unbound" table key
              in
              let* () =
                if Expr.bound_by schema score then Ok ()
                else err "N-ary score %s unbound" (Expr.to_string score)
              in
              let* () =
                match Plan.order_of input with
                | Some o
                  when o.Plan.direction = Interesting_orders.Desc
                       && Expr.equal o.Plan.expr score ->
                    Ok ()
                | _ -> err "N-ary input is not sorted on its score"
              in
              check_inputs is ss ts
          | _ -> err "N-ary rank join arity mismatch"
        in
        check_inputs inputs scores tables
      end

let check_exn catalog plan =
  match check catalog plan with
  | Ok () -> ()
  | Error msg -> failwith ("Plan_verify: " ^ msg)
