(** Ranked materialized views — the PREFER-style alternative the paper's
    introduction contrasts with (techniques "that maintain materialized
    views or special indexes", refs [8, 22, 29]).

    A view materialises the top-N join results under a reference weight
    vector. A later top-k query is answered from the view alone when that is
    provably safe:

    - same weights: safe whenever k ≤ N;
    - different weights w': safe when the k-th best re-scored view row still
      beats the upper bound [τ · max_i (w'_i / w_i)] on any
      non-materialised result, where τ is the lowest reference score kept
      (assumes non-negative scores and positive reference weights).

    Unsafe queries return [None] and the caller falls back to the engine —
    which is precisely the integration gap the paper's rank-aware optimizer
    closes. *)

open Relalg

type t

val create :
  ?config:Enumerator.config ->
  Storage.Catalog.t ->
  Logical.t ->
  capacity:int ->
  t
(** Materialise the top-[capacity] results of the ranking query (its own [k]
    is ignored) using the rank-aware engine.
    @raise Invalid_argument if the query is not a ranking query or some
    ranked relation has a non-positive weight. *)

val capacity : t -> int

val size : t -> int
(** Rows actually materialised (less than capacity when the join is small). *)

val complete : t -> bool
(** The view holds the {e entire} join result — every query is answerable. *)

val schema : t -> Schema.t

val reference_weights : t -> (string * float) list

val answer : t -> k:int -> (Tuple.t * float) list option
(** Top-k under the reference weights; [None] when [k] exceeds what the view
    can guarantee. *)

val answer_reweighted :
  t -> weights:(string * float) list -> k:int -> (Tuple.t * float) list option
(** Top-k under a different (non-negative) weight vector over the same
    relations, when provably safe. *)
