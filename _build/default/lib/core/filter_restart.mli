(** The filter/restart baseline for top-k queries (Section 6 related work:
    Carey & Kossmann; Donjerkovic & Ramakrishnan).

    Ranking is mapped to a selection: guess a cutoff score, evaluate the
    query keeping only results whose combined score reaches the cutoff, and
    {e restart} with a relaxed cutoff whenever fewer than [k] results
    qualify. A probabilistic estimate over the score histograms picks the
    initial cutoff. Implemented here as a baseline to quantify what the
    rank-join approach saves (restart work is wasted work). *)

open Relalg

type stats = {
  restarts : int;  (** Number of extra attempts after the first. *)
  attempts_io : int list;  (** Measured I/O per attempt, first attempt first. *)
  final_cutoff : float;
}

val initial_cutoff :
  Storage.Catalog.t -> Logical.t -> k:int -> safety:float -> float
(** Cutoff such that the expected number of qualifying join results is
    [safety · k], assuming independent per-relation scores (normal
    approximation to the sum via mean/variance from the histograms). *)

val top_k :
  ?safety:float ->
  ?relax:float ->
  Storage.Catalog.t ->
  Logical.t ->
  ((Tuple.t * float) list * stats, string) result
(** Evaluate the ranking query by filter/restart: hash-join the inputs with
    the cutoff pushed into per-relation filters, keep results above the
    cutoff, sort, and return the top k; on a miss relax the cutoff by
    [relax] (default 0.5: halve the distance to the minimum) and restart.
    [safety] (default 2.0) over-provisions the initial cutoff. Requires a
    ranking query whose relations all carry score expressions. *)
