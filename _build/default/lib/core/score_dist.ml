let log_tail_coefficient ~j = Rkutil.Mathx.log_factorial j

let expected_score_at ~j ~n ~m ~i =
  if j < 1 then invalid_arg "Score_dist.expected_score_at: j < 1";
  if n <= 0.0 || m <= 0.0 || i < 1.0 then
    invalid_arg "Score_dist.expected_score_at: bad arguments";
  let jf = float_of_int j in
  (* (j! * i * n^j / m)^(1/j) in log space *)
  let log_term =
    (log_tail_coefficient ~j +. log i +. (jf *. log n) -. log m) /. jf
  in
  (jf *. n) -. exp log_term

let pdf_u2 ~n x =
  if x < 0.0 || x > 2.0 *. n then 0.0
  else if x <= n then x /. (n *. n)
  else ((2.0 *. n) -. x) /. (n *. n)

let expected_top_gap ~j ~n ~m =
  let jf = float_of_int j in
  (jf *. n) -. expected_score_at ~j ~n ~m ~i:1.0
