(** Compile physical plans to [exec] operator trees and run them.

    Execution is instrumented: measured I/O (through the catalog's counters)
    and, for every rank-join node, the actual input depths and buffer
    high-water mark — the quantities the estimation model of Section 4
    predicts and Section 5 validates. *)

open Relalg

type rank_node_stats = {
  label : string;  (** One-line description of the rank-join node. *)
  algo : Plan.join_algo;
  stats : Exec.Rank_join.stats;
}

type nary_node_stats = {
  nary_label : string;
  nary_stats : Exec.Exec_stats.t;  (** Per-input depths + buffer. *)
}

type run_result = {
  rows : (Tuple.t * float) list;
      (** Output tuples with their ranking score (0.0 for unranked plans). *)
  io : Storage.Io_stats.snapshot;  (** I/O charged during this run. *)
  rank_nodes : rank_node_stats list;  (** Binary rank joins, pre-order. *)
  nary_nodes : nary_node_stats list;  (** N-ary rank joins, pre-order. *)
  schema : Schema.t;
}

val compile :
  ?hints:Propagate.annotation ->
  Storage.Catalog.t ->
  Plan.t ->
  Exec.Operator.t * rank_node_stats list * nary_node_stats list
(** Build the operator tree; rank-join statistics are filled during
    execution. When a depth-propagation annotation is supplied (from
    {!Propagate.run} on the same plan), HRJN nodes poll their inputs in the
    estimated optimal depth ratio instead of alternating. *)

val run :
  ?hints:Propagate.annotation ->
  ?fetch_limit:int ->
  Storage.Catalog.t ->
  Plan.t ->
  run_result
(** Open, pull (up to [fetch_limit] rows, default everything), close. I/O is
    measured as a diff of the catalog's counters around the run. *)
