lib/storage/heap_file.ml: Array Buffer_pool Io_stats List Page Relalg Schema Tuple
