lib/storage/heap_file.mli: Buffer_pool Relalg Schema Tuple
