lib/storage/page.ml: Array Relalg Tuple
