lib/storage/persist.mli: Catalog
