lib/storage/page.mli: Relalg Tuple
