lib/storage/catalog.ml: Array Btree Buffer_pool Expr Fun Hashtbl Heap_file Histogram Io_stats List Relalg Schema String Tuple Value
