lib/storage/btree.ml: Array Io_stats List Printf Relalg Tuple Value
