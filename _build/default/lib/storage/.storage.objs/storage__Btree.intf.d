lib/storage/btree.mli: Io_stats Relalg Tuple Value
