lib/storage/histogram.ml: Array Float Format List Rkutil
