lib/storage/persist.ml: Array Buffer Catalog Expr_codec Filename Fun Heap_file In_channel List Printf Relalg Scanf Schema String Sys Value
