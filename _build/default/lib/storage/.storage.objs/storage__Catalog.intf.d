lib/storage/catalog.mli: Btree Buffer_pool Expr Heap_file Histogram Io_stats Relalg Schema Tuple Value
