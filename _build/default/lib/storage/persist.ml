open Relalg

let dtype_tag = function
  | Value.Tint -> "int"
  | Value.Tfloat -> "float"
  | Value.Tstring -> "string"
  | Value.Tbool -> "bool"

let dtype_of_tag = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstring
  | "bool" -> Value.Tbool
  | s -> failwith ("Persist: unknown type tag " ^ s)

let value_encode = function
  | Value.Null -> "n:"
  | Value.Int i -> "i:" ^ string_of_int i
  | Value.Float f -> "f:" ^ Printf.sprintf "%h" f
  | Value.Str s -> "s:" ^ String.escaped s
  | Value.Bool b -> "b:" ^ string_of_bool b

let value_decode s =
  if String.length s < 2 || s.[1] <> ':' then failwith ("Persist: bad value " ^ s);
  let payload = String.sub s 2 (String.length s - 2) in
  match s.[0] with
  | 'n' -> Value.Null
  | 'i' -> Value.Int (int_of_string payload)
  | 'f' -> Value.Float (float_of_string payload)
  | 's' -> Value.Str (Scanf.unescaped payload)
  | 'b' -> Value.Bool (bool_of_string payload)
  | c -> failwith (Printf.sprintf "Persist: bad value tag %c" c)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some line -> go (line :: acc)
        | None -> List.rev acc
      in
      go [])

(* Meta format, one record per line (tab-separated fields):
     table <name> <col>:<type> <col>:<type> ...
     index <table> <name> <clustered|unclustered> <key sexp>   *)
let save catalog ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tables =
    List.sort
      (fun a b -> String.compare a.Catalog.tb_name b.Catalog.tb_name)
      (Catalog.tables catalog)
  in
  let meta = Buffer.create 256 in
  List.iter
    (fun (info : Catalog.table_info) ->
      let cols =
        List.map
          (fun (c : Schema.column) -> c.Schema.name ^ ":" ^ dtype_tag c.Schema.dtype)
          (Schema.columns info.tb_schema)
      in
      Buffer.add_string meta
        (String.concat "\t" (("table" :: info.tb_name :: cols)) ^ "\n");
      List.iter
        (fun (ix : Catalog.index_info) ->
          Buffer.add_string meta
            (String.concat "\t"
               [
                 "index"; info.tb_name; ix.ix_name;
                 (if ix.ix_clustered then "clustered" else "unclustered");
                 Expr_codec.to_string ix.ix_key;
               ]
            ^ "\n"))
        (List.rev info.tb_indexes);
      let rows = Buffer.create 4096 in
      Heap_file.iter
        (fun tu ->
          Buffer.add_string rows
            (String.concat "\t"
               (Array.to_list (Array.map value_encode tu)));
          Buffer.add_char rows '\n')
        info.tb_heap;
      write_file (Filename.concat dir (info.tb_name ^ ".tbl")) (Buffer.contents rows))
    tables;
  write_file (Filename.concat dir "catalog.meta") (Buffer.contents meta)

let load ?pool_frames ?tuples_per_page ~dir () =
  let catalog = Catalog.create ?pool_frames ?tuples_per_page () in
  let meta = read_lines (Filename.concat dir "catalog.meta") in
  let load_table name cols =
    let schema =
      Schema.of_columns
        (List.map
           (fun spec ->
             match String.index_opt spec ':' with
             | Some i ->
                 Schema.column
                   (String.sub spec 0 i)
                   (dtype_of_tag (String.sub spec (i + 1) (String.length spec - i - 1)))
             | None -> failwith ("Persist: bad column spec " ^ spec))
           cols)
    in
    let tuples =
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            Some
              (Array.of_list
                 (List.map value_decode (String.split_on_char '\t' line))))
        (read_lines (Filename.concat dir (name ^ ".tbl")))
    in
    ignore (Catalog.create_table catalog name schema tuples)
  in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match String.split_on_char '\t' line with
        | "table" :: name :: cols -> load_table name cols
        | [ "index"; table; name; mode; key ] ->
            let clustered =
              match mode with
              | "clustered" -> true
              | "unclustered" -> false
              | _ -> failwith ("Persist: bad index mode " ^ mode)
            in
            ignore
              (Catalog.create_index catalog ~clustered ~name ~table
                 ~key:(Expr_codec.of_string_exn key) ())
        | _ -> failwith ("Persist: bad meta line: " ^ line))
    meta;
  catalog
