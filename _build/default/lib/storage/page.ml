open Relalg

type t = {
  id : int;
  capacity : int;
  mutable slots : Tuple.t array;
  mutable dead : bool array;
  mutable count : int;
  mutable live : int;
}

let create ~id ~capacity =
  { id; capacity; slots = [||]; dead = [||]; count = 0; live = 0 }

let id p = p.id

let capacity p = p.capacity

let count p = p.count

let live_count p = p.live

let is_full p = p.count >= p.capacity

let add p tu =
  if is_full p then invalid_arg "Page.add: page full";
  if Array.length p.slots = p.count then begin
    let ncap = max 8 (min p.capacity (max 1 (p.count * 2))) in
    let ns = Array.make ncap tu in
    Array.blit p.slots 0 ns 0 p.count;
    p.slots <- ns;
    let nd = Array.make ncap false in
    Array.blit p.dead 0 nd 0 p.count;
    p.dead <- nd
  end;
  p.slots.(p.count) <- tu;
  p.dead.(p.count) <- false;
  p.count <- p.count + 1;
  p.live <- p.live + 1;
  p.count - 1

let is_live p slot = slot >= 0 && slot < p.count && not p.dead.(slot)

let get p slot =
  if slot < 0 || slot >= p.count then invalid_arg "Page.get: bad slot";
  if p.dead.(slot) then invalid_arg "Page.get: deleted slot";
  p.slots.(slot)

let delete p slot =
  if is_live p slot then begin
    p.dead.(slot) <- true;
    p.live <- p.live - 1;
    true
  end
  else false

let tuples p =
  let acc = ref [] in
  for i = p.count - 1 downto 0 do
    if not p.dead.(i) then acc := p.slots.(i) :: !acc
  done;
  !acc

let iter f p =
  for i = 0 to p.count - 1 do
    if not p.dead.(i) then f p.slots.(i)
  done
