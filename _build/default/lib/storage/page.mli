(** Fixed-capacity tuple pages — the unit of simulated I/O. *)

open Relalg

type t

val create : id:int -> capacity:int -> t

val id : t -> int

val capacity : t -> int

val count : t -> int
(** Number of slots used (including tombstoned ones — slots are stable
    addresses). *)

val live_count : t -> int
(** Slots not tombstoned. *)

val is_full : t -> bool

val add : t -> Tuple.t -> int
(** Append a tuple, returning its slot.
    @raise Invalid_argument when full. *)

val get : t -> int -> Tuple.t
(** @raise Invalid_argument on an out-of-range or deleted slot. *)

val delete : t -> int -> bool
(** Tombstone a slot; [false] when out of range or already deleted. *)

val is_live : t -> int -> bool

val tuples : t -> Tuple.t list
(** Live tuples only. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** Live tuples only. *)
