(** In-memory relations: a schema plus a bag of tuples.

    This is the logical-level container used by tests, generators and the
    naive baselines; the paged on-disk representation lives in the [storage]
    library. *)

type t

val create : Schema.t -> Tuple.t list -> t
(** @raise Invalid_argument if a tuple's arity differs from the schema's. *)

val schema : t -> Schema.t

val tuples : t -> Tuple.t list

val cardinality : t -> int

val sort_by : ?desc:bool -> Expr.t -> t -> t
(** Stable sort on the value of an expression (ascending by default). *)

val filter : Expr.t -> t -> t

val project_columns : (string option * string) list -> t -> t
(** Keep only the given (relation, name) columns, in the given order. *)

val cross : t -> t -> t

val join : on:Expr.t -> t -> t -> t
(** Naive nested-loops join under an arbitrary predicate — the correctness
    oracle for every physical join implementation. *)

val top_k : score:Expr.t -> k:int -> t -> (Tuple.t * float) list
(** The [k] highest-scoring tuples, ties broken by tuple order, scores
    attached — the correctness oracle for rank-join and rank-aggregation. *)

val rename : string -> t -> t
(** Re-qualify all columns with a relation alias. *)

val equal_bag : t -> t -> bool
(** Same multiset of tuples (schema arities must match). *)

val pp : Format.formatter -> t -> unit
