(** S-expression serialisation of {!Expr.t}.

    Used by catalog persistence to store index key expressions, and handy
    for debugging. The format is stable and round-trips exactly:

    {v
    (col A.c1)
    (mul (const (f 0.3)) (col A.c1))
    (cmp le (col x) (const (i 5)))
    v} *)

val to_string : Expr.t -> string

val of_string : string -> (Expr.t, string) result
(** Parse a serialised expression; [Error] describes the first problem. *)

val of_string_exn : string -> Expr.t
(** @raise Invalid_argument on malformed input. *)
