type t = Value.t array

let make = Array.of_list

let arity = Array.length

let get t i = t.(i)

let concat = Array.append

let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_string t)))

let to_string t = Format.asprintf "%a" pp t
