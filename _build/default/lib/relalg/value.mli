(** Typed SQL-style values.

    All scores in the ranking machinery are carried as [Float] values;
    [compare] orders numerics numerically (so [Int 1 < Float 1.5]) and
    everything else within its own constructor. *)

type dtype = Tint | Tfloat | Tstring | Tbool
(** Column data types. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val dtype_of : t -> dtype option
(** [None] for [Null]. *)

val dtype_name : dtype -> string

val compare : t -> t -> int
(** Total order: [Null] sorts first; [Int]/[Float] compare numerically with
    each other; distinct non-numeric constructors compare by constructor. *)

val equal : t -> t -> bool

val hash : t -> int
(** Compatible with [equal]: numerically equal ints and floats hash alike. *)

val to_float : t -> float
(** Numeric coercion. [Null] is 0, [Bool] is 0/1.
    @raise Invalid_argument on strings. *)

val to_int : t -> int
(** @raise Invalid_argument on strings. Floats are truncated. *)

val is_null : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
