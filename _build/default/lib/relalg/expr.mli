(** Scalar expressions over tuples.

    Expressions serve three roles in the engine: selection/join predicates,
    projection targets, and — centrally for this paper — {e ranking score
    expressions}. Score expressions are linear combinations of columns
    (weighted sums); {!as_linear} recovers that canonical form, which is what
    the optimizer uses to recognise and compare interesting order
    expressions (Section 3.1 of the paper). *)

type column_ref = { relation : string option; name : string }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Col of column_ref
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t

val col : ?relation:string -> string -> t

val cfloat : float -> t

val cint : int -> t

val ( + ) : t -> t -> t

val ( - ) : t -> t -> t

val ( * ) : t -> t -> t

val ( = ) : t -> t -> t

val weighted_sum : (float * t) list -> t
(** [weighted_sum \[(w1, e1); ...\]] is [w1*e1 + ... + wn*en]. *)

val eval : Schema.t -> t -> Tuple.t -> Value.t
(** Evaluate against a tuple of the given schema.
    @raise Invalid_argument on unbound columns or type errors. *)

val eval_bool : Schema.t -> t -> Tuple.t -> bool
(** Evaluate as a predicate; [Null] and non-boolean results are [false]. *)

val eval_float : Schema.t -> t -> Tuple.t -> float

val compile : Schema.t -> t -> Tuple.t -> Value.t
(** Staged evaluation: resolves column positions once; the returned closure
    does no schema lookups. Semantics identical to {!eval}. *)

val compile_float : Schema.t -> t -> Tuple.t -> float

val compile_bool : Schema.t -> t -> Tuple.t -> bool

val column_refs : t -> column_ref list
(** All column references, without duplicates, in first-occurrence order. *)

val relations : t -> string list
(** Distinct relation qualifiers appearing in the expression. *)

val bound_by : Schema.t -> t -> bool
(** Every column reference resolves (unambiguously) in the schema. *)

(** {2 Linear (weighted-sum) canonical form} *)

type linear = {
  terms : (float * column_ref) list;  (** Sorted by qualified column name. *)
  intercept : float;
}

val as_linear : t -> linear option
(** [Some] when the expression is a linear combination of columns with
    constant coefficients. Terms on the same column are merged; zero terms
    are dropped. *)

val of_linear : linear -> t

val linear_same_order : linear -> linear -> bool
(** Whether the two linear forms induce the same tuple ordering, i.e. they
    are equal up to a positive scale factor and the intercept. *)

val equal : t -> t -> bool
(** Structural equality, except linear expressions compare via
    {!linear_same_order} (so [0.3*x + 0.3*y] equals [x + y] as an order). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
