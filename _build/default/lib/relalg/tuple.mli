(** Tuples: flat arrays of values, positionally matching a schema. *)

type t = Value.t array

val make : Value.t list -> t

val arity : t -> int

val get : t -> int -> Value.t

val concat : t -> t -> t
(** Join result: left values then right values. *)

val project : t -> int list -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic under {!Value.compare}. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
