type dtype = Tint | Tfloat | Tstring | Tbool

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

let dtype_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring
  | Bool _ -> Some Tbool

let dtype_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let rank = function
  | Null -> 0
  | Int _ | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Int x -> Hashtbl.hash (float_of_int x)
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b

let to_float = function
  | Null -> 0.0
  | Int x -> float_of_int x
  | Float x -> x
  | Bool true -> 1.0
  | Bool false -> 0.0
  | Str s -> invalid_arg ("Value.to_float: string value " ^ s)

let to_int = function
  | Null -> 0
  | Int x -> x
  | Float x -> int_of_float x
  | Bool true -> 1
  | Bool false -> 0
  | Str s -> invalid_arg ("Value.to_int: string value " ^ s)

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Int x -> Format.pp_print_int fmt x
  | Float x -> Format.fprintf fmt "%g" x
  | Str s -> Format.fprintf fmt "%S" s
  | Bool b -> Format.pp_print_bool fmt b

let to_string v = Format.asprintf "%a" pp v
