(** Monotone scoring functions for rank aggregation and rank-joins.

    A rank-join combines per-input scores with a monotone function [f];
    the threshold bound of HRJN/NRJN (Section 2.2) is only valid for monotone
    [f]. The paper's experiments use weighted sums, which is what the
    optimizer's linear-form machinery recognises; [Min] and [Max] are provided
    for the rank-aggregation algorithms. *)

type t =
  | Sum  (** f(s1, ..., sn) = s1 + ... + sn *)
  | Weighted of float array  (** f(s) = Σ wᵢ·sᵢ, weights must be ≥ 0. *)
  | Min
  | Max

val combine : t -> float array -> float
(** Apply the function to per-input scores.
    @raise Invalid_argument if [Weighted] arity mismatches. *)

val combine2 : t -> float -> float -> float
(** Binary form used by the diadic rank-join operators. For [Weighted],
    arity must be 2. *)

val is_monotone : t -> bool
(** All provided functions are monotone provided weights are non-negative. *)

val pp : Format.formatter -> t -> unit
