type column = {
  relation : string option;
  name : string;
  dtype : Value.dtype;
}

type t = { cols : column array }

let column ?relation name dtype = { relation; name; dtype }

let column_name c =
  match c.relation with
  | None -> c.name
  | Some r -> r ^ "." ^ c.name

let of_columns cols =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let key = column_name c in
      if Hashtbl.mem seen key then
        invalid_arg ("Schema.of_columns: duplicate column " ^ key);
      Hashtbl.add seen key ())
    cols;
  { cols = Array.of_list cols }

let columns t = Array.to_list t.cols

let arity t = Array.length t.cols

let concat a b = { cols = Array.append a.cols b.cols }

let matches ?relation name c =
  String.equal c.name name
  &&
  match relation with
  | None -> true
  | Some r -> (match c.relation with Some r' -> String.equal r r' | None -> false)

let index_of t ?relation name =
  let hits = ref [] in
  Array.iteri (fun i c -> if matches ?relation name c then hits := i :: !hits) t.cols;
  match !hits with
  | [] -> None
  | [ i ] -> Some i
  | _ -> invalid_arg ("Schema.index_of: ambiguous column " ^ name)

let index_of_exn t ?relation name =
  match index_of t ?relation name with
  | Some i -> i
  | None -> raise Not_found

let mem t ?relation name = Option.is_some (index_of t ?relation name)

let nth t i = t.cols.(i)

let rename_relation t relation =
  { cols = Array.map (fun c -> { c with relation = Some relation }) t.cols }

let project t idxs = { cols = Array.of_list (List.map (fun i -> t.cols.(i)) idxs) }

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun c d ->
         Option.equal String.equal c.relation d.relation
         && String.equal c.name d.name && c.dtype = d.dtype)
       a.cols b.cols

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun c -> column_name c ^ ":" ^ Value.dtype_name c.dtype)
          (columns t)))
