lib/relalg/expr_codec.mli: Expr
