lib/relalg/scoring.mli: Format
