lib/relalg/tuple.ml: Array Format List String Value
