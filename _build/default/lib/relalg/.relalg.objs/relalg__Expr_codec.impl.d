lib/relalg/expr_codec.ml: Buffer Expr List Printf Scanf String Value
