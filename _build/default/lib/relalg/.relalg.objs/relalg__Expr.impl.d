lib/relalg/expr.ml: Array Float Format Hashtbl List Option Schema Stdlib String Tuple Value
