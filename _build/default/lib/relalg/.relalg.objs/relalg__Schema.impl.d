lib/relalg/schema.ml: Array Format Hashtbl List Option String Value
