lib/relalg/relation.ml: Expr Float Format List Printf Schema Tuple
