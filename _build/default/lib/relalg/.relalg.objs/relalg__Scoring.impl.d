lib/relalg/scoring.ml: Array Float Format Printf String
