lib/relalg/value.ml: Bool Float Format Hashtbl Stdlib String
