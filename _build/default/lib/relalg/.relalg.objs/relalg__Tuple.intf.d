lib/relalg/tuple.mli: Format Value
