(** Relation schemas.

    A column is identified by an optional relation qualifier and a name, e.g.
    [A.c1]. Schemas are immutable; joins concatenate them. *)

type column = {
  relation : string option;  (** Qualifier, e.g. ["A"] in [A.c1]. *)
  name : string;  (** Column name, e.g. ["c1"]. *)
  dtype : Value.dtype;
}

type t

val column : ?relation:string -> string -> Value.dtype -> column

val column_name : column -> string
(** Fully qualified ["A.c1"] form (or bare name when unqualified). *)

val of_columns : column list -> t
(** @raise Invalid_argument on duplicate qualified names. *)

val columns : t -> column list

val arity : t -> int

val concat : t -> t -> t
(** Schema of a join result: left columns then right columns. *)

val index_of : t -> ?relation:string -> string -> int option
(** Position of a column. An unqualified lookup matches any qualifier but
    raises if ambiguous. *)

val index_of_exn : t -> ?relation:string -> string -> int
(** @raise Not_found when absent. *)

val mem : t -> ?relation:string -> string -> bool

val nth : t -> int -> column

val rename_relation : t -> string -> t
(** Re-qualify every column with the given relation name (table alias). *)

val project : t -> int list -> t
(** Schema restricted to the given column positions, in order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
