type t =
  | Sum
  | Weighted of float array
  | Min
  | Max

let combine f scores =
  match f with
  | Sum -> Array.fold_left ( +. ) 0.0 scores
  | Weighted w ->
      if Array.length w <> Array.length scores then
        invalid_arg "Scoring.combine: weight arity mismatch";
      let acc = ref 0.0 in
      Array.iteri (fun i s -> acc := !acc +. (w.(i) *. s)) scores;
      !acc
  | Min -> Array.fold_left Float.min infinity scores
  | Max -> Array.fold_left Float.max neg_infinity scores

let combine2 f a b = combine f [| a; b |]

let is_monotone = function
  | Sum | Min | Max -> true
  | Weighted w -> Array.for_all (fun x -> x >= 0.0) w

let pp fmt = function
  | Sum -> Format.pp_print_string fmt "sum"
  | Min -> Format.pp_print_string fmt "min"
  | Max -> Format.pp_print_string fmt "max"
  | Weighted w ->
      Format.fprintf fmt "weighted(%s)"
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%g") w)))
