type column_ref = { relation : string option; name : string }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Col of column_ref
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t

let col ?relation name = Col { relation; name }

let cfloat f = Const (Value.Float f)

let cint i = Const (Value.Int i)

let ( + ) a b = Add (a, b)

let ( - ) a b = Sub (a, b)

let ( * ) a b = Mul (a, b)

let ( = ) a b = Cmp (Eq, a, b)

let weighted_sum terms =
  let term (w, e) = if Stdlib.( = ) w 1.0 then e else Mul (cfloat w, e) in
  match terms with
  | [] -> cfloat 0.0
  | first :: rest ->
      List.fold_left (fun acc t -> Add (acc, term t)) (term first) rest

let ref_name r = match r.relation with None -> r.name | Some q -> q ^ "." ^ r.name

let numeric2 op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | `Add -> Value.Int (Stdlib.( + ) x y)
      | `Sub -> Value.Int (Stdlib.( - ) x y)
      | `Mul -> Value.Int (Stdlib.( * ) x y)
      | `Div -> Value.Float (float_of_int x /. float_of_int y))
  | _ ->
      let x = Value.to_float a and y = Value.to_float b in
      let r =
        match op with
        | `Add -> x +. y
        | `Sub -> x -. y
        | `Mul -> x *. y
        | `Div -> x /. y
      in
      Value.Float r

let apply_cmp op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    let c = Value.compare a b in
    let r =
      match op with
      | Eq -> Stdlib.( = ) c 0
      | Ne -> Stdlib.( <> ) c 0
      | Lt -> Stdlib.( < ) c 0
      | Le -> Stdlib.( <= ) c 0
      | Gt -> Stdlib.( > ) c 0
      | Ge -> Stdlib.( >= ) c 0
    in
    Value.Bool r

let truthy = function Value.Bool b -> b | Value.Null -> false | _ -> false

(* Three-valued logic is collapsed: Null behaves as false in And/Or/Not,
   which matches how the engine uses predicates (WHERE semantics). *)
let rec compile schema expr : Tuple.t -> Value.t =
  match expr with
  | Const v -> fun _ -> v
  | Col r ->
      let idx =
        match Schema.index_of schema ?relation:r.relation r.name with
        | Some i -> i
        | None -> invalid_arg ("Expr: unbound column " ^ ref_name r)
      in
      fun t -> t.(idx)
  | Neg e ->
      let f = compile schema e in
      fun t -> (
        match f t with
        | Value.Null -> Value.Null
        | Value.Int x -> Value.Int (Stdlib.( - ) 0 x)
        | v -> Value.Float (-.Value.to_float v))
  | Add (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> numeric2 `Add (fa t) (fb t)
  | Sub (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> numeric2 `Sub (fa t) (fb t)
  | Mul (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> numeric2 `Mul (fa t) (fb t)
  | Div (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> numeric2 `Div (fa t) (fb t)
  | Cmp (op, a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> apply_cmp op (fa t) (fb t)
  | And (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> Value.Bool (truthy (fa t) && truthy (fb t))
  | Or (a, b) ->
      let fa = compile schema a and fb = compile schema b in
      fun t -> Value.Bool (truthy (fa t) || truthy (fb t))
  | Not e ->
      let f = compile schema e in
      fun t -> Value.Bool (not (truthy (f t)))

let eval schema expr tuple = compile schema expr tuple

let eval_bool schema expr tuple = truthy (eval schema expr tuple)

let eval_float schema expr tuple = Value.to_float (eval schema expr tuple)

let compile_float schema expr =
  let f = compile schema expr in
  fun t -> Value.to_float (f t)

let compile_bool schema expr =
  let f = compile schema expr in
  fun t -> truthy (f t)

let column_refs expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Col r ->
        let key = ref_name r in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          acc := r :: !acc
        end
    | Neg e | Not e -> go e
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b)
    | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        go a;
        go b
  in
  go expr;
  List.rev !acc

let relations expr =
  let refs = column_refs expr in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun r ->
      match r.relation with
      | None -> None
      | Some q ->
          if Hashtbl.mem seen q then None
          else begin
            Hashtbl.add seen q ();
            Some q
          end)
    refs

let bound_by schema expr =
  List.for_all
    (fun r ->
      match Schema.index_of schema ?relation:r.relation r.name with
      | Some _ -> true
      | None -> false
      | exception Invalid_argument _ -> false)
    (column_refs expr)

type linear = {
  terms : (float * column_ref) list;
  intercept : float;
}

let const_value = function
  | Const v when not (Value.is_null v) -> (
      match v with
      | Value.Int x -> Some (float_of_int x)
      | Value.Float x -> Some x
      | _ -> None)
  | _ -> None

(* Recognise linear combinations: c, x, e1+e2, e1-e2, -e, c*e, e*c, e/c. *)
let rec linearize = function
  | Const _ as e -> Option.map (fun c -> ([], c)) (const_value e)
  | Col r -> Some ([ (1.0, r) ], 0.0)
  | Neg e ->
      Option.map
        (fun (ts, c) -> (List.map (fun (w, r) -> (-.w, r)) ts, -.c))
        (linearize e)
  | Add (a, b) ->
      Option.bind (linearize a) (fun (ta, ca) ->
          Option.map (fun (tb, cb) -> (ta @ tb, ca +. cb)) (linearize b))
  | Sub (a, b) ->
      Option.bind (linearize a) (fun (ta, ca) ->
          Option.map
            (fun (tb, cb) ->
              (ta @ List.map (fun (w, r) -> (-.w, r)) tb, ca -. cb))
            (linearize b))
  | Mul (a, b) -> (
      match const_value a, const_value b with
      | Some c, _ ->
          Option.map
            (fun (ts, c0) -> (List.map (fun (w, r) -> (c *. w, r)) ts, c *. c0))
            (linearize b)
      | _, Some c ->
          Option.map
            (fun (ts, c0) -> (List.map (fun (w, r) -> (c *. w, r)) ts, c *. c0))
            (linearize a)
      | None, None -> None)
  | Div (a, b) -> (
      match const_value b with
      | Some c when Stdlib.( <> ) c 0.0 ->
          Option.map
            (fun (ts, c0) ->
              (List.map (fun (w, r) -> (w /. c, r)) ts, c0 /. c))
            (linearize a)
      | _ -> None)
  | Cmp _ | And _ | Or _ | Not _ -> None

let as_linear expr =
  match linearize expr with
  | None -> None
  | Some (terms, intercept) ->
      let tbl = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun (w, r) ->
          let key = ref_name r in
          match Hashtbl.find_opt tbl key with
          | Some (w0, _) -> Hashtbl.replace tbl key (w0 +. w, r)
          | None ->
              Hashtbl.add tbl key (w, r);
              order := key :: !order)
        terms;
      let merged =
        !order |> List.rev_map (fun key -> Hashtbl.find tbl key)
        |> List.filter (fun (w, _) -> Stdlib.( <> ) w 0.0)
        |> List.map (fun (w, r) -> (w, r))
        |> List.sort (fun (_, a) (_, b) -> String.compare (ref_name a) (ref_name b))
      in
      Some { terms = merged; intercept }

let of_linear { terms; intercept } =
  let base =
    match terms with
    | [] -> cfloat intercept
    | _ -> weighted_sum (List.map (fun (w, r) -> (w, Col r)) terms)
  in
  if Stdlib.( = ) intercept 0.0 || Stdlib.( = ) terms [] then base
  else Add (base, cfloat intercept)

let linear_same_order a b =
  match a.terms, b.terms with
  | [], [] -> true
  | (wa, _) :: _, (wb, _) :: _ ->
      let scale = wb /. wa in
      Stdlib.( > ) scale 0.0
      && Stdlib.( = ) (List.length a.terms) (List.length b.terms)
      && List.for_all2
           (fun (w1, r1) (w2, r2) ->
             String.equal (ref_name r1) (ref_name r2)
             && Stdlib.( < ) (Float.abs ((w1 *. scale) -. w2)) (1e-9 *. Float.abs w2 +. 1e-12))
           a.terms b.terms
  | _ -> false

let rec structural_equal a b =
  match a, b with
  | Const u, Const v -> Value.equal u v
  | Col r, Col s -> String.equal (ref_name r) (ref_name s)
  | Neg x, Neg y | Not x, Not y -> structural_equal x y
  | Add (x1, y1), Add (x2, y2)
  | Sub (x1, y1), Sub (x2, y2)
  | Mul (x1, y1), Mul (x2, y2)
  | Div (x1, y1), Div (x2, y2)
  | And (x1, y1), And (x2, y2)
  | Or (x1, y1), Or (x2, y2) ->
      structural_equal x1 x2 && structural_equal y1 y2
  | Cmp (o1, x1, y1), Cmp (o2, x2, y2) ->
      Stdlib.( = ) o1 o2 && structural_equal x1 x2 && structural_equal y1 y2
  | _ -> false

let equal a b =
  match as_linear a, as_linear b with
  | Some la, Some lb -> linear_same_order la lb
  | _ -> structural_equal a b

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp fmt = function
  | Const v -> Value.pp fmt v
  | Col r -> Format.pp_print_string fmt (ref_name r)
  | Neg e -> Format.fprintf fmt "-(%a)" pp e
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
  | Cmp (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp a (cmp_symbol op) pp b
  | And (a, b) -> Format.fprintf fmt "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a OR %a)" pp a pp b
  | Not e -> Format.fprintf fmt "NOT (%a)" pp e

let to_string e = Format.asprintf "%a" pp e
