(* A minimal s-expression layer: atoms are identifiers/numbers or quoted
   strings; lists are parenthesised. *)

type sexp =
  | Atom of string
  | List of sexp list

let atom_needs_quotes s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t')
       s

let rec print_sexp buf = function
  | Atom s ->
      if atom_needs_quotes s then begin
        Buffer.add_char buf '"';
        Buffer.add_string buf (String.escaped s);
        Buffer.add_char buf '"'
      end
      else Buffer.add_string buf s
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          print_sexp buf item)
        items;
      Buffer.add_char buf ')'

exception Bad of string

let parse_sexp input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while !pos < n && (input.[!pos] = ' ' || input.[!pos] = '\n' || input.[!pos] = '\t')
    do
      incr pos
    done
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> raise (Bad "unexpected end of input")
    | Some '(' ->
        incr pos;
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ')' ->
              incr pos;
              List (List.rev !items)
          | None -> raise (Bad "unterminated list")
          | Some _ ->
              items := parse () :: !items;
              loop ()
        in
        loop ()
    | Some '"' ->
        incr pos;
        let buf = Buffer.create 16 in
        let rec loop () =
          if !pos >= n then raise (Bad "unterminated string");
          match input.[!pos] with
          | '"' ->
              incr pos;
              Atom (Scanf.unescaped (Buffer.contents buf))
          | '\\' when !pos + 1 < n ->
              Buffer.add_char buf input.[!pos];
              Buffer.add_char buf input.[!pos + 1];
              pos := !pos + 2;
              loop ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              loop ()
        in
        loop ()
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && not
               (input.[!pos] = ' ' || input.[!pos] = '(' || input.[!pos] = ')'
              || input.[!pos] = '\n' || input.[!pos] = '\t')
        do
          incr pos
        done;
        Atom (String.sub input start (!pos - start))
  in
  let result = parse () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing input");
  result

(* --- Expr <-> sexp --- *)

let sexp_of_value = function
  | Value.Null -> Atom "n"
  | Value.Int i -> List [ Atom "i"; Atom (string_of_int i) ]
  | Value.Float f -> List [ Atom "f"; Atom (Printf.sprintf "%h" f) ]
  | Value.Str s -> List [ Atom "s"; Atom s ]
  | Value.Bool b -> List [ Atom "b"; Atom (string_of_bool b) ]

let cmp_name = function
  | Expr.Eq -> "eq"
  | Expr.Ne -> "ne"
  | Expr.Lt -> "lt"
  | Expr.Le -> "le"
  | Expr.Gt -> "gt"
  | Expr.Ge -> "ge"

let rec sexp_of_expr = function
  | Expr.Const v -> List [ Atom "const"; sexp_of_value v ]
  | Expr.Col { relation = None; name } -> List [ Atom "col"; Atom name ]
  | Expr.Col { relation = Some r; name } -> List [ Atom "col"; Atom (r ^ "." ^ name) ]
  | Expr.Neg e -> List [ Atom "neg"; sexp_of_expr e ]
  | Expr.Add (a, b) -> List [ Atom "add"; sexp_of_expr a; sexp_of_expr b ]
  | Expr.Sub (a, b) -> List [ Atom "sub"; sexp_of_expr a; sexp_of_expr b ]
  | Expr.Mul (a, b) -> List [ Atom "mul"; sexp_of_expr a; sexp_of_expr b ]
  | Expr.Div (a, b) -> List [ Atom "div"; sexp_of_expr a; sexp_of_expr b ]
  | Expr.Cmp (op, a, b) ->
      List [ Atom "cmp"; Atom (cmp_name op); sexp_of_expr a; sexp_of_expr b ]
  | Expr.And (a, b) -> List [ Atom "and"; sexp_of_expr a; sexp_of_expr b ]
  | Expr.Or (a, b) -> List [ Atom "or"; sexp_of_expr a; sexp_of_expr b ]
  | Expr.Not e -> List [ Atom "not"; sexp_of_expr e ]

let value_of_sexp = function
  | Atom "n" -> Value.Null
  | List [ Atom "i"; Atom s ] -> (
      match int_of_string_opt s with
      | Some i -> Value.Int i
      | None -> raise (Bad ("bad int " ^ s)))
  | List [ Atom "f"; Atom s ] -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> raise (Bad ("bad float " ^ s)))
  | List [ Atom "s"; Atom s ] -> Value.Str s
  | List [ Atom "b"; Atom s ] -> (
      match bool_of_string_opt s with
      | Some b -> Value.Bool b
      | None -> raise (Bad ("bad bool " ^ s)))
  | _ -> raise (Bad "bad value")

let cmp_of_name = function
  | "eq" -> Expr.Eq
  | "ne" -> Expr.Ne
  | "lt" -> Expr.Lt
  | "le" -> Expr.Le
  | "gt" -> Expr.Gt
  | "ge" -> Expr.Ge
  | s -> raise (Bad ("bad comparison " ^ s))

let col_of_name name =
  match String.index_opt name '.' with
  | Some i ->
      Expr.Col
        {
          relation = Some (String.sub name 0 i);
          name = String.sub name (i + 1) (String.length name - i - 1);
        }
  | None -> Expr.Col { relation = None; name }

let rec expr_of_sexp = function
  | List [ Atom "const"; v ] -> Expr.Const (value_of_sexp v)
  | List [ Atom "col"; Atom name ] -> col_of_name name
  | List [ Atom "neg"; e ] -> Expr.Neg (expr_of_sexp e)
  | List [ Atom "add"; a; b ] -> Expr.Add (expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "sub"; a; b ] -> Expr.Sub (expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "mul"; a; b ] -> Expr.Mul (expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "div"; a; b ] -> Expr.Div (expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "cmp"; Atom op; a; b ] ->
      Expr.Cmp (cmp_of_name op, expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "and"; a; b ] -> Expr.And (expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "or"; a; b ] -> Expr.Or (expr_of_sexp a, expr_of_sexp b)
  | List [ Atom "not"; e ] -> Expr.Not (expr_of_sexp e)
  | _ -> raise (Bad "bad expression")

let to_string e =
  let buf = Buffer.create 64 in
  print_sexp buf (sexp_of_expr e);
  Buffer.contents buf

let of_string s =
  match expr_of_sexp (parse_sexp s) with
  | e -> Ok e
  | exception Bad msg -> Error msg

let of_string_exn s =
  match of_string s with
  | Ok e -> e
  | Error msg -> invalid_arg ("Expr_codec.of_string_exn: " ^ msg)
