type t = {
  schema : Schema.t;
  tuples : Tuple.t list;
}

let create schema tuples =
  let arity = Schema.arity schema in
  List.iter
    (fun tu ->
      if Tuple.arity tu <> arity then
        invalid_arg
          (Printf.sprintf "Relation.create: tuple arity %d, schema arity %d"
             (Tuple.arity tu) arity))
    tuples;
  { schema; tuples }

let schema t = t.schema

let tuples t = t.tuples

let cardinality t = List.length t.tuples

let sort_by ?(desc = false) expr t =
  let f = Expr.compile_float t.schema expr in
  let keyed = List.map (fun tu -> (f tu, tu)) t.tuples in
  let cmp (a, _) (b, _) = if desc then Float.compare b a else Float.compare a b in
  { t with tuples = List.map snd (List.stable_sort cmp keyed) }

let filter pred t =
  let f = Expr.compile_bool t.schema pred in
  { t with tuples = List.filter f t.tuples }

let project_columns cols t =
  let idxs =
    List.map
      (fun (relation, name) -> Schema.index_of_exn t.schema ?relation name)
      cols
  in
  {
    schema = Schema.project t.schema idxs;
    tuples = List.map (fun tu -> Tuple.project tu idxs) t.tuples;
  }

let cross a b =
  {
    schema = Schema.concat a.schema b.schema;
    tuples =
      List.concat_map
        (fun ta -> List.map (fun tb -> Tuple.concat ta tb) b.tuples)
        a.tuples;
  }

let join ~on a b =
  let all = cross a b in
  filter on all

let top_k ~score ~k t =
  let f = Expr.compile_float t.schema score in
  let keyed = List.map (fun tu -> (tu, f tu)) t.tuples in
  let sorted = List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) keyed in
  List.filteri (fun i _ -> i < k) sorted

let rename alias t = { t with schema = Schema.rename_relation t.schema alias }

let equal_bag a b =
  let sort l = List.sort Tuple.compare l in
  Schema.arity a.schema = Schema.arity b.schema
  && List.equal Tuple.equal (sort a.tuples) (sort b.tuples)

let pp fmt t =
  Format.fprintf fmt "%a [%d tuples]" Schema.pp t.schema (cardinality t)
