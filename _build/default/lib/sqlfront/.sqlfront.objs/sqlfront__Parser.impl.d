lib/sqlfront/parser.ml: Ast Float Format Lexer List Option Printf String
