lib/sqlfront/ast.ml: Format String
