lib/sqlfront/sql.ml: Array Ast Binder Core Exec Expr Float List Option Parser Printf Relalg Result Schema Storage Tuple Value
