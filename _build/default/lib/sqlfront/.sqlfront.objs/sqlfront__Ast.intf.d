lib/sqlfront/ast.mli: Format
