lib/sqlfront/binder.ml: Ast Core Exec Expr Hashtbl List Option Printf Relalg Schema Storage String Value
