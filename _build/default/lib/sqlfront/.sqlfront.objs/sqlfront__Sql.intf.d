lib/sqlfront/sql.mli: Core Relalg Storage Tuple
