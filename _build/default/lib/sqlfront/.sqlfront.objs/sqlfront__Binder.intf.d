lib/sqlfront/binder.mli: Ast Core Exec Expr Relalg Schema Storage
