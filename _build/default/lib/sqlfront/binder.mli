(** Semantic analysis: resolve a parsed query against a catalog and lower it
    to the optimizer's logical form.

    WHERE conjuncts split into equi-join predicates (columns of two different
    relations) and single-table selections. An [ORDER BY w1*A.x + w2*B.y DESC
    LIMIT k] becomes the ranking function: each relation's score expression
    is its slice of the linear form. *)

open Relalg

type aggregation = {
  agg_group_by : (Expr.t * Schema.column) list;
  agg_specs : Exec.Aggregate.spec list;
}

type output_column =
  | Col of Expr.t  (** A computed expression over the join result. *)
  | Rank  (** The row's 1-based position in the ranking (rank() column). *)

type bound = {
  logical : Core.Logical.t;
  projection : (output_column * string) list option;
      (** [None] for [SELECT *]; otherwise output columns and names. *)
  aggregation : aggregation option;
      (** GROUP BY / aggregate-function queries: applied to the join result
          after execution (projection is then unused). *)
  post_sort : (Expr.t * [ `Asc | `Desc ]) option;
      (** An ORDER BY the rank-aware machinery cannot serve (ascending, or a
          non-linear/negative-weight expression): applied after execution. *)
  post_limit : int option;
      (** A LIMIT on a query executed without a Top-k plan. *)
}

exception Bind_error of string

val bind : Storage.Catalog.t -> Ast.query -> bound
(** @raise Bind_error on unknown tables/columns, ambiguous references, or
    unsupported predicate shapes. ORDER BYs the top-k machinery cannot serve
    (ascending direction, non-linear or negative-weight expressions) fall
    back to a post-execution sort. *)

val bind_result : Storage.Catalog.t -> Ast.query -> (bound, string) result

val bind_single_table_expr : Storage.Catalog.t -> string -> Ast.expr -> Expr.t
(** Resolve an expression against one table (used by UPDATE assignments).
    @raise Bind_error on unknown or foreign columns. *)
