(** Recursive-descent parser for the SQL subset.

    Besides the plain [SELECT ... ORDER BY ... LIMIT k] form, the SQL99
    windowed form the paper uses (Query Q1) is accepted and desugared:

    {v
    WITH Ranked AS (
      SELECT A.c1 AS x, B.c2 AS y,
             rank() OVER (ORDER BY 0.3*A.c1 + 0.7*B.c2 DESC) AS rank
      FROM A, B, C
      WHERE A.c1 = B.c1 AND B.c2 = C.c2)
    SELECT x, y, rank FROM Ranked WHERE rank <= 5
    v}

    becomes the equivalent top-k query. The window direction defaults to
    DESC (the paper's "top" semantics); outer predicates must be a single
    [rank <= k]. *)

exception Parse_error of string

val parse : string -> Ast.query
(** @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)

val parse_result : string -> (Ast.query, string) result
(** Error-returning wrapper. *)

val parse_statement : string -> Ast.statement
(** Parse a statement: a SELECT/WITH query, INSERT INTO ... VALUES, or
    DELETE FROM.
    @raise Parse_error or {!Lexer.Lex_error}. *)

val parse_statement_result : string -> (Ast.statement, string) result
