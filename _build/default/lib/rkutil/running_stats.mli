(** Online accumulation of mean / variance / extrema (Welford's algorithm).

    Used by the benchmark harness to summarise repeated measurements and by
    the catalog to build column statistics in one pass. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float

val variance : t -> float
(** Sample variance (divides by [n - 1]); 0 when fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float

val merge : t -> t -> t
(** Combine two accumulators as if all samples were added to one. *)

val pp : Format.formatter -> t -> unit
