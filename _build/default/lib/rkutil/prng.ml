type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed }

let int g bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod bound

let uniform g =
  (* 53 random bits mapped into [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int r /. 9007199254740992.0

let float g bound = uniform g *. bound

let gaussian g =
  let rec nonzero () =
    let u = uniform g in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = uniform g in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))
