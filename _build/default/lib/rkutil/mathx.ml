let small_log_factorials =
  (* table.(n) = ln (n!) for n <= 256 *)
  let t = Array.make 257 0.0 in
  for n = 1 to 256 do
    t.(n) <- t.(n - 1) +. log (float_of_int n)
  done;
  t

let log_factorial n =
  if n < 0 then invalid_arg "Mathx.log_factorial: negative argument"
  else if n <= 256 then small_log_factorials.(n)
  else begin
    (* Stirling series with the first two correction terms: accurate to well
       below 1e-10 relative error for n > 256. *)
    let x = float_of_int n in
    ((x +. 0.5) *. log x) -. x
    +. (0.5 *. log (2.0 *. Float.pi))
    +. (1.0 /. (12.0 *. x))
    -. (1.0 /. (360.0 *. (x ** 3.0)))
  end

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let iclamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let ceil_to_int x =
  if Float.is_nan x then 0
  else if x <= 0.0 then 0
  else if x >= float_of_int max_int then max_int
  else int_of_float (Float.ceil x)

let log_binomial n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let bisect ~f ~lo ~hi ?(iters = 80) () =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then (if Float.abs flo < Float.abs fhi then lo else hi)
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    for _ = 1 to iters do
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if !flo *. fmid <= 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    0.5 *. (!lo +. !hi)
  end

(* Abramowitz & Stegun 7.1.26 rational approximation of erf. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
        -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.(x *. x))
  in
  sign *. y

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))

let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Mathx.normal_quantile: p outside (0,1)";
  bisect ~f:(fun x -> normal_cdf x -. p) ~lo:(-10.0) ~hi:10.0 ()

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let relative_error ~actual ~estimate =
  if actual = 0.0 then (if estimate = 0.0 then 0.0 else infinity)
  else Float.abs (estimate -. actual) /. Float.abs actual
