(** Numeric helpers for the depth-estimation model.

    The closed-form depth formulas of the paper (Equations 2-5 and the
    average-case variants) involve factorial powers that overflow native
    floats quickly, so everything is computed in log space. *)

val log_factorial : int -> float
(** [log_factorial n] is [ln (n!)]; exact summation for small [n], Stirling
    with correction terms beyond. [n] must be non-negative. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a float into [\[lo, hi\]]. *)

val iclamp : lo:int -> hi:int -> int -> int

val ceil_to_int : float -> int
(** Ceiling, saturating at [max_int] and never below 0. *)

val log_binomial : int -> int -> float
(** [log_binomial n k] is [ln (n choose k)]. *)

val bisect :
  f:(float -> float) -> lo:float -> hi:float -> ?iters:int -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds a root of a monotone [f] on [\[lo, hi\]] by
    bisection, assuming [f lo] and [f hi] have opposite signs (if not, the
    endpoint with the smaller absolute value is returned). *)

val normal_cdf : float -> float
(** Standard normal CDF (Abramowitz-Stegun 7.1.26 approximation, absolute
    error < 1.5e-7). *)

val normal_quantile : float -> float
(** Inverse of {!normal_cdf} on (0, 1), by bisection. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val relative_error : actual:float -> estimate:float -> float
(** [|estimate - actual| / actual]; infinity when [actual = 0] and the
    estimate differs. *)
