(** Deterministic pseudo-random number generator.

    A small splitmix64 generator so that every workload, test and benchmark in
    the repository is reproducible from an explicit integer seed, independent
    of the OCaml stdlib [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    (statistically) independent of the remainder of [g]'s stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform g] is uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal variate (Box-Muller). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
