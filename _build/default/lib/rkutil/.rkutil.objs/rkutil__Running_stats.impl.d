lib/rkutil/running_stats.ml: Format Stdlib
