lib/rkutil/mathx.mli:
