lib/rkutil/mathx.ml: Array Float List
