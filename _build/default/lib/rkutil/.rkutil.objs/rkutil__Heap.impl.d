lib/rkutil/heap.ml: Array List
