lib/rkutil/running_stats.mli: Format
