lib/rkutil/prng.ml: Array Float Int64
