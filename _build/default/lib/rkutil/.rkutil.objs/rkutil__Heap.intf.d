lib/rkutil/heap.mli:
