lib/rkutil/prng.mli:
