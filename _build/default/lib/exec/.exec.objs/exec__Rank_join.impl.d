lib/exec/rank_join.ml: Expr Float Hashtbl List Operator Option Relalg Rkutil Schema Tuple Value
