lib/exec/sort.mli: Buffer_pool Expr Operator Relalg Storage Tuple
