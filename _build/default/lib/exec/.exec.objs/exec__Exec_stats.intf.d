lib/exec/exec_stats.mli:
