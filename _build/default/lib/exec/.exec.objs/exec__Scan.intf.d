lib/exec/scan.mli: Catalog Operator Relalg Storage Tuple Value
