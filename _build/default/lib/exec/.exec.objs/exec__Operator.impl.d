lib/exec/operator.ml: List Option Relalg Schema Tuple
