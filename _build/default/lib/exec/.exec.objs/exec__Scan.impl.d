lib/exec/scan.ml: Btree Catalog Expr Heap_file Operator Option Relalg Storage
