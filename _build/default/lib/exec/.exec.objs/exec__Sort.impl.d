lib/exec/sort.ml: Array Buffer_pool Expr Float Heap_file List Operator Relalg Rkutil Storage Tuple
