lib/exec/top_n.ml: Expr Float List Operator Relalg Rkutil
