lib/exec/basic_ops.ml: Array Expr List Operator Relalg Schema Tuple
