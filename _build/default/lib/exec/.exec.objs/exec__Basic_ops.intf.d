lib/exec/basic_ops.mli: Expr Operator Relalg Schema
