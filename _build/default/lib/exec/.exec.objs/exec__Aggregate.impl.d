lib/exec/aggregate.ml: Array Expr Hashtbl List Operator Relalg Schema Tuple Value
