lib/exec/join.ml: Array Expr Hashtbl List Operator Option Relalg Schema Sort Storage Tuple Value
