lib/exec/join.mli: Expr Operator Relalg Schema Sort Tuple Value
