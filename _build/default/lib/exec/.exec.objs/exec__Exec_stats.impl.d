lib/exec/exec_stats.ml: Array
