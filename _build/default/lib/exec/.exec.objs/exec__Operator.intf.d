lib/exec/operator.mli: Relalg Schema Tuple
