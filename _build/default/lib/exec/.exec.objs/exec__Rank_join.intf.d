lib/exec/rank_join.mli: Expr Operator Relalg Tuple Value
