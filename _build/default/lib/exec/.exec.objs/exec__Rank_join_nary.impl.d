lib/exec/rank_join_nary.ml: Array Exec_stats Float Fun Hashtbl List Operator Option Relalg Rkutil Schema Tuple Value
