lib/exec/top_n.mli: Expr Operator Relalg
