lib/exec/rank_join_nary.mli: Exec_stats Operator Relalg Tuple Value
