lib/exec/aggregate.mli: Expr Operator Relalg Schema
