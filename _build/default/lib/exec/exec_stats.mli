(** Instrumentation for N-ary operators: per-input depths and buffer
    high-water mark (the m-input generalisation of {!Rank_join.stats}). *)

type t

val create : int -> t
(** [create m] for an operator with m inputs. *)

val reset : t -> unit

val bump_depth : t -> int -> unit
(** Record one tuple consumed from input [i]. *)

val bump_emitted : t -> unit

val note_buffer : t -> int -> unit
(** Record the current buffered-result count (keeps the maximum). *)

val depth : t -> int -> int
(** Tuples consumed from input [i] so far. *)

val depths : t -> int array
(** Copy of all per-input depths. *)

val buffer_max : t -> int

val emitted : t -> int
