open Relalg

type t = {
  schema : Schema.t;
  open_ : unit -> unit;
  next : unit -> Tuple.t option;
  close : unit -> unit;
}

type scored = {
  s_schema : Schema.t;
  s_open : unit -> unit;
  s_next : unit -> (Tuple.t * float) option;
  s_close : unit -> unit;
}

let of_list schema tuples =
  let remaining = ref tuples in
  {
    schema;
    open_ = (fun () -> remaining := tuples);
    next =
      (fun () ->
        match !remaining with
        | [] -> None
        | tu :: rest ->
            remaining := rest;
            Some tu);
    close = (fun () -> remaining := []);
  }

let to_list op =
  op.open_ ();
  let acc = ref [] in
  let rec loop () =
    match op.next () with
    | Some tu ->
        acc := tu :: !acc;
        loop ()
    | None -> ()
  in
  loop ();
  op.close ();
  List.rev !acc

let take op n =
  op.open_ ();
  let acc = ref [] in
  let rec loop i =
    if i < n then
      match op.next () with
      | Some tu ->
          acc := tu :: !acc;
          loop (i + 1)
      | None -> ()
  in
  loop 0;
  op.close ();
  List.rev !acc

let map_schema schema f op =
  {
    schema;
    open_ = op.open_;
    next = (fun () -> Option.map f (op.next ()));
    close = op.close;
  }

let counted op =
  let n = ref 0 in
  let wrapped =
    {
      op with
      open_ =
        (fun () ->
          n := 0;
          op.open_ ());
      next =
        (fun () ->
          match op.next () with
          | Some tu ->
              incr n;
              Some tu
          | None -> None);
    }
  in
  (wrapped, fun () -> !n)

let with_score score op =
  {
    s_schema = op.schema;
    s_open = op.open_;
    s_next = (fun () -> Option.map (fun tu -> (tu, score tu)) (op.next ()));
    s_close = op.close;
  }

let scored_to_plain s =
  {
    schema = s.s_schema;
    open_ = s.s_open;
    next = (fun () -> Option.map fst (s.s_next ()));
    close = s.s_close;
  }

let scored_of_list schema entries =
  let rec check = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        if a < b then
          invalid_arg "Operator.scored_of_list: scores not non-increasing";
        check rest
    | _ -> ()
  in
  check entries;
  let remaining = ref entries in
  {
    s_schema = schema;
    s_open = (fun () -> remaining := entries);
    s_next =
      (fun () ->
        match !remaining with
        | [] -> None
        | e :: rest ->
            remaining := rest;
            Some e);
    s_close = (fun () -> remaining := []);
  }

let scored_to_list s =
  s.s_open ();
  let acc = ref [] in
  let rec loop () =
    match s.s_next () with
    | Some e ->
        acc := e :: !acc;
        loop ()
    | None -> ()
  in
  loop ();
  s.s_close ();
  List.rev !acc

let scored_take s n =
  s.s_open ();
  let acc = ref [] in
  let rec loop i =
    if i < n then
      match s.s_next () with
      | Some e ->
          acc := e :: !acc;
          loop (i + 1)
      | None -> ()
  in
  loop 0;
  s.s_close ();
  List.rev !acc

let scored_counted s =
  let n = ref 0 in
  let wrapped =
    {
      s with
      s_open =
        (fun () ->
          n := 0;
          s.s_open ());
      s_next =
        (fun () ->
          match s.s_next () with
          | Some e ->
              incr n;
              Some e
          | None -> None);
    }
  in
  (wrapped, fun () -> !n)
