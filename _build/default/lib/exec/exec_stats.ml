type t = {
  mutable per_input : int array;
  mutable buffer_max : int;
  mutable emitted : int;
}

let create m = { per_input = Array.make m 0; buffer_max = 0; emitted = 0 }

let reset t =
  Array.fill t.per_input 0 (Array.length t.per_input) 0;
  t.buffer_max <- 0;
  t.emitted <- 0

let bump_depth t i = t.per_input.(i) <- t.per_input.(i) + 1

let bump_emitted t = t.emitted <- t.emitted + 1

let note_buffer t n = if n > t.buffer_max then t.buffer_max <- n

let depth t i = t.per_input.(i)

let depths t = Array.copy t.per_input

let buffer_max t = t.buffer_max

let emitted t = t.emitted
