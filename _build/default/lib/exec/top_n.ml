open Relalg

let by_expr ~k expr (op : Operator.t) : Operator.scored =
  let score = Expr.compile_float op.schema expr in
  let results = ref [] in
  let compute () =
    (* Min-heap of the best k seen so far: the root is the weakest keeper. *)
    let heap = Rkutil.Heap.create ~cmp:(fun (_, a) (_, b) -> Float.compare a b) in
    op.open_ ();
    let rec pull () =
      match op.next () with
      | None -> ()
      | Some tu ->
          let s = score tu in
          if Rkutil.Heap.length heap < k then Rkutil.Heap.push heap (tu, s)
          else begin
            match Rkutil.Heap.peek heap with
            | Some (_, worst) when s > worst ->
                ignore (Rkutil.Heap.pop heap);
                Rkutil.Heap.push heap (tu, s)
            | _ -> ()
          end;
          pull ()
    in
    pull ();
    op.close ();
    results := List.rev (Rkutil.Heap.drain heap)
  in
  {
    Operator.s_schema = op.schema;
    s_open = (fun () -> compute ());
    s_next =
      (fun () ->
        match !results with
        | [] -> None
        | e :: rest ->
            results := rest;
            Some e);
    s_close = (fun () -> results := []);
  }
