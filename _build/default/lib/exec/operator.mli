(** Pull-based physical operators (the iterator / [GetNext] model).

    Two stream shapes exist: plain tuple streams ({!t}) and {e scored}
    streams ({!scored}) whose tuples arrive in non-increasing score order —
    the contract rank-join inputs require (Section 2.2 of the paper:
    "a GetNext interface on the input should retrieve the next tuple in a
    descending order of the associated scores"). *)

open Relalg

type t = {
  schema : Schema.t;
  open_ : unit -> unit;  (** (Re)start the stream; may be called repeatedly. *)
  next : unit -> Tuple.t option;
  close : unit -> unit;
}

type scored = {
  s_schema : Schema.t;
  s_open : unit -> unit;
  s_next : unit -> (Tuple.t * float) option;
      (** Scores must be non-increasing across a single open/next run. *)
  s_close : unit -> unit;
}

val of_list : Schema.t -> Tuple.t list -> t
(** Stream over a fixed list (restartable). *)

val to_list : t -> Tuple.t list
(** Open, drain, close. *)

val take : t -> int -> Tuple.t list
(** Open, pull at most n tuples, close. *)

val map_schema : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t
(** Per-tuple transformation with a new schema. *)

val counted : t -> t * (unit -> int)
(** Wrap an operator, exposing how many tuples it has delivered since the
    last [open_] — used to measure rank-join input depths. *)

val with_score : (Tuple.t -> float) -> t -> scored
(** Attach a score closure. The caller asserts the underlying stream is
    ordered by non-increasing score (e.g. a descending index scan). *)

val scored_to_plain : scored -> t
(** Drop the scores. *)

val scored_of_list : Schema.t -> (Tuple.t * float) list -> scored
(** @raise Invalid_argument if scores are not non-increasing. *)

val scored_to_list : scored -> (Tuple.t * float) list

val scored_take : scored -> int -> (Tuple.t * float) list

val scored_counted : scored -> scored * (unit -> int)
