open Relalg
open Storage

let heap (info : Catalog.table_info) : Operator.t =
  let cursor = ref (fun () -> None) in
  {
    schema = info.tb_schema;
    open_ = (fun () -> cursor := Heap_file.scan info.tb_heap);
    next = (fun () -> !cursor ());
    close = (fun () -> cursor := fun () -> None);
  }

let index_with ~direction catalog (ix : Catalog.index_info) : Operator.t =
  let info = Catalog.table catalog ix.Catalog.ix_table in
  let cursor = ref (fun () -> None) in
  let start () =
    match direction with
    | `Asc -> Btree.scan_asc ix.ix_btree
    | `Desc -> Btree.scan_desc ix.ix_btree
  in
  {
    schema = info.tb_schema;
    open_ = (fun () -> cursor := start ());
    next =
      (fun () ->
        Option.map (Catalog.index_payload_to_tuple catalog ix) (!cursor ()));
    close = (fun () -> cursor := fun () -> None);
  }

let index_asc catalog ix = index_with ~direction:`Asc catalog ix

let index_desc catalog ix = index_with ~direction:`Desc catalog ix

let index_desc_scored catalog (ix : Catalog.index_info) : Operator.scored =
  let info = Catalog.table catalog ix.Catalog.ix_table in
  let op = index_desc catalog ix in
  let score = Expr.compile_float info.tb_schema ix.ix_key in
  Operator.with_score score op

let index_probe catalog ix key = Catalog.index_lookup catalog ix key
