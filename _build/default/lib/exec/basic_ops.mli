(** Tuple-at-a-time operators: selection, projection, limit. *)

open Relalg

val filter : Expr.t -> Operator.t -> Operator.t

val project : (string option * string) list -> Operator.t -> Operator.t
(** Keep the given (relation, name) columns, in order.
    @raise Not_found when a column is absent from the input schema. *)

val project_exprs : (Expr.t * Schema.column) list -> Operator.t -> Operator.t
(** Generalised projection: each output column is a computed expression. *)

val limit : int -> Operator.t -> Operator.t

val scored_limit : int -> Operator.scored -> Operator.scored
