(** Heap-based top-N selection.

    A blocking alternative to a full sort + limit when [k] is known at plan
    time: one pass over the input keeping a bounded min-heap of the [k] best
    tuples. Used by ablation benchmarks to contrast with the paper's
    join-then-(full-)sort baseline. *)

open Relalg

val by_expr : k:int -> Expr.t -> Operator.t -> Operator.scored
(** The [k] highest values of the score expression, emitted in
    non-increasing score order. *)
