(* Shared helpers for the test suites. *)

open Relalg

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let float_eps = 1e-9

let floats_close ?(eps = float_eps) a b =
  Float.abs (a -. b) <= eps *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let check_floats_close ?(eps = float_eps) msg a b =
  if not (floats_close ~eps a b) then
    Alcotest.failf "%s: %.12g <> %.12g" msg a b

(* Sorted list of scores, for comparing top-k answers independent of
   tie-breaking. *)
let score_multiset scores = List.sort Float.compare scores

let check_score_multiset msg expected actual =
  let e = score_multiset expected and a = score_multiset actual in
  if List.length e <> List.length a then
    Alcotest.failf "%s: %d scores expected, got %d" msg (List.length e)
      (List.length a);
  List.iter2
    (fun x y ->
      if not (floats_close ~eps:1e-7 x y) then
        Alcotest.failf "%s: score %.12g <> %.12g" msg x y)
    e a

let check_non_increasing msg scores =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if a +. 1e-9 < b then Alcotest.failf "%s: %g before %g" msg a b;
        go rest
    | _ -> ()
  in
  go scores

(* A small scored relation: columns (id, key, score). *)
let scored_schema name =
  Schema.rename_relation
    (Schema.of_columns
       [
         Schema.column "id" Value.Tint;
         Schema.column "key" Value.Tint;
         Schema.column "score" Value.Tfloat;
       ])
    name

let scored_tuples prng ~n ~domain =
  List.init n (fun i ->
      [|
        Value.Int i;
        Value.Int (Rkutil.Prng.int prng (max 1 domain));
        Value.Float (Rkutil.Prng.uniform prng);
      |])

let scored_relation ?(seed = 42) name ~n ~domain =
  let prng = Rkutil.Prng.create seed in
  Relation.create (scored_schema name) (scored_tuples prng ~n ~domain)

(* QCheck generator for a scored relation given as (seed, n, domain). *)
let small_rel_params =
  QCheck.make
    ~print:(fun (seed, n, d) -> Printf.sprintf "seed=%d n=%d domain=%d" seed n d)
    QCheck.Gen.(
      triple (int_range 0 10_000) (int_range 0 60) (int_range 1 12))

let tuples_of_scored (r : Relation.t) = Relation.tuples r
