(* Rank-aggregation algorithm tests: FA / TA / NRA vs the naive oracle. *)

open Relalg
open Ranking

let make_sources ?(m = 3) ?(n = 50) ~seed () =
  let prng = Rkutil.Prng.create seed in
  Array.init m (fun _ ->
      Source.of_scores (List.init n (fun oid -> (oid, Rkutil.Prng.uniform prng))))

let top_scores result = List.map snd result

let check_same_topk msg expected actual =
  Test_util.check_score_multiset msg (top_scores expected) (top_scores actual)

let test_ta_matches_naive () =
  let sources = make_sources ~seed:1 () in
  List.iter
    (fun k ->
      let expected = Aggregate.naive ~combine:Scoring.Sum ~k sources in
      let actual = Aggregate.ta ~combine:Scoring.Sum ~k sources in
      check_same_topk (Printf.sprintf "ta top-%d" k) expected actual)
    [ 1; 5; 10; 50 ]

let test_fagin_matches_naive () =
  let sources = make_sources ~seed:2 () in
  List.iter
    (fun k ->
      let expected = Aggregate.naive ~combine:Scoring.Sum ~k sources in
      let actual = Aggregate.fagin ~combine:Scoring.Sum ~k sources in
      check_same_topk (Printf.sprintf "fa top-%d" k) expected actual)
    [ 1; 5; 10 ]

let check_same_objects msg expected actual =
  (* NRA reports guaranteed lower bounds, not exact scores, so compare the
     returned object sets (unique a.s. for continuous scores). *)
  let ids r = List.sort compare (List.map fst r) in
  Alcotest.(check (list int)) msg (ids expected) (ids actual)

let test_nra_matches_naive () =
  let sources = make_sources ~seed:3 () in
  List.iter
    (fun k ->
      let expected = Aggregate.naive ~combine:Scoring.Sum ~k sources in
      let actual = Aggregate.nra ~combine:Scoring.Sum ~k sources in
      check_same_objects (Printf.sprintf "nra top-%d" k) expected actual)
    [ 1; 5; 10 ]

let test_ta_weighted () =
  let sources = make_sources ~seed:4 ~m:2 () in
  let combine = Scoring.Weighted [| 0.3; 0.7 |] in
  let expected = Aggregate.naive ~combine ~k:5 sources in
  let actual = Aggregate.ta ~combine ~k:5 sources in
  check_same_topk "ta weighted" expected actual

let test_ta_min_combine () =
  let sources = make_sources ~seed:5 ~m:2 () in
  let expected = Aggregate.naive ~combine:Scoring.Min ~k:5 sources in
  let actual = Aggregate.ta ~combine:Scoring.Min ~k:5 sources in
  check_same_topk "ta min" expected actual

let test_ta_early_stop () =
  (* TA on a large universe with small k should touch far fewer objects
     under sorted access than n per source. *)
  let sources = make_sources ~seed:6 ~m:2 ~n:2000 () in
  Array.iter Source.reset_counters sources;
  ignore (Aggregate.ta ~combine:Scoring.Sum ~k:3 sources);
  let sorted, _random = Aggregate.access_cost sources in
  Alcotest.(check bool) "sorted accesses << 2n" true (sorted < 2000)

let test_nra_no_random_access () =
  let sources = make_sources ~seed:7 () in
  Array.iter Source.reset_counters sources;
  ignore (Aggregate.nra ~combine:Scoring.Sum ~k:5 sources);
  let _, random = Aggregate.access_cost sources in
  Alcotest.(check int) "no random accesses" 0 random

let test_borda_prefers_consistent_winner () =
  (* Object 0 ranks first everywhere, so Borda must rank it first. *)
  let sources =
    Array.init 3 (fun j ->
        Source.of_scores
          (List.init 10 (fun oid ->
               if oid = 0 then (oid, 100.0)
               else (oid, float_of_int ((oid * (j + 1)) mod 7)))))
  in
  match Aggregate.borda sources with
  | (winner, _) :: _ -> Alcotest.(check int) "winner" 0 winner
  | [] -> Alcotest.fail "empty borda result"

let test_empty_sources () =
  let sources = Array.init 2 (fun _ -> Source.of_scores []) in
  Alcotest.(check int) "ta empty" 0
    (List.length (Aggregate.ta ~combine:Scoring.Sum ~k:5 sources));
  Alcotest.(check int) "nra empty" 0
    (List.length (Aggregate.nra ~combine:Scoring.Sum ~k:5 sources))

let test_k_larger_than_universe () =
  let sources = make_sources ~seed:8 ~n:5 () in
  let result = Aggregate.ta ~combine:Scoring.Sum ~k:50 sources in
  Alcotest.(check int) "all objects" 5 (List.length result)

let test_duplicate_object_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Source.of_scores: duplicate object id")
    (fun () -> ignore (Source.of_scores [ (1, 0.5); (1, 0.6) ]))

let prop_ta_nra_fa_agree =
  QCheck.Test.make ~name:"aggregation: TA = NRA = FA = naive" ~count:60
    QCheck.(triple (int_range 0 9999) (int_range 1 40) (int_range 1 10))
    (fun (seed, n, k) ->
      let sources = make_sources ~seed ~n ~m:2 () in
      let scores algo = Test_util.score_multiset (top_scores (algo ())) in
      let ids algo = List.sort compare (List.map fst (algo ())) in
      let naive () = Aggregate.naive ~combine:Scoring.Sum ~k sources in
      let ta () = Aggregate.ta ~combine:Scoring.Sum ~k sources in
      let nra () = Aggregate.nra ~combine:Scoring.Sum ~k sources in
      let fa () = Aggregate.fagin ~combine:Scoring.Sum ~k sources in
      let base = scores naive in
      let close xs = List.for_all2 (Test_util.floats_close ~eps:1e-7) base xs in
      let exact_ok =
        List.for_all
          (fun algo ->
            let s = scores algo in
            List.length s = List.length base && close s)
          [ ta; fa ]
      in
      (* NRA guarantees the set, not the exact scores. *)
      exact_ok && ids nra = ids naive)

let suites =
  [
    ( "ranking.aggregate",
      [
        Alcotest.test_case "ta = naive" `Quick test_ta_matches_naive;
        Alcotest.test_case "fa = naive" `Quick test_fagin_matches_naive;
        Alcotest.test_case "nra = naive" `Quick test_nra_matches_naive;
        Alcotest.test_case "ta weighted" `Quick test_ta_weighted;
        Alcotest.test_case "ta min" `Quick test_ta_min_combine;
        Alcotest.test_case "ta early stop" `Quick test_ta_early_stop;
        Alcotest.test_case "nra sorted-only" `Quick test_nra_no_random_access;
        Alcotest.test_case "borda winner" `Quick test_borda_prefers_consistent_winner;
        Alcotest.test_case "empty sources" `Quick test_empty_sources;
        Alcotest.test_case "k > universe" `Quick test_k_larger_than_universe;
        Alcotest.test_case "duplicate id" `Quick test_duplicate_object_rejected;
        QCheck_alcotest.to_alcotest prop_ta_nra_fa_agree;
      ] );
  ]
