(* Tests for values, schemas, tuples, expressions and in-memory relations. *)

open Relalg

let v_int i = Value.Int i

let v_float f = Value.Float f

let test_value_numeric_compare () =
  Alcotest.(check int) "int vs float equal" 0 (Value.compare (v_int 2) (v_float 2.0));
  Alcotest.(check bool) "1 < 1.5" true (Value.compare (v_int 1) (v_float 1.5) < 0);
  Alcotest.(check bool) "2.5 > 2" true (Value.compare (v_float 2.5) (v_int 2) > 0)

let test_value_null_sorts_first () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (v_int (-100)) < 0);
  Alcotest.(check bool) "null < string" true
    (Value.compare Value.Null (Value.Str "") < 0)

let test_value_hash_consistent_with_equal () =
  Alcotest.(check int) "hash 2 = hash 2.0" (Value.hash (v_int 2))
    (Value.hash (v_float 2.0))

let test_value_to_float () =
  Alcotest.(check (float 0.0)) "int" 3.0 (Value.to_float (v_int 3));
  Alcotest.(check (float 0.0)) "bool" 1.0 (Value.to_float (Value.Bool true));
  Alcotest.(check (float 0.0)) "null" 0.0 (Value.to_float Value.Null);
  Alcotest.check_raises "string raises"
    (Invalid_argument "Value.to_float: string value x") (fun () ->
      ignore (Value.to_float (Value.Str "x")))

let prop_value_compare_total_order =
  let gen =
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun f -> Value.Float f) (float_bound_exclusive 100.0);
          map (fun b -> Value.Bool b) bool;
          map (fun s -> Value.Str s) (string_size (int_range 0 4));
        ])
  in
  let arb = QCheck.make ~print:Value.to_string gen in
  QCheck.Test.make ~name:"value: compare antisymmetric & transitive" ~count:500
    (QCheck.triple arb arb arb)
    (fun (a, b, c) ->
      let ab = Value.compare a b and ba = Value.compare b a in
      let anti = compare ab 0 = compare 0 ba in
      let trans =
        if Value.compare a b <= 0 && Value.compare b c <= 0 then
          Value.compare a c <= 0
        else true
      in
      anti && trans)

let abc_schema () =
  Schema.of_columns
    [
      Schema.column ~relation:"A" "c1" Value.Tfloat;
      Schema.column ~relation:"A" "c2" Value.Tint;
      Schema.column ~relation:"B" "c1" Value.Tfloat;
    ]

let test_schema_lookup () =
  let s = abc_schema () in
  Alcotest.(check (option int)) "A.c2" (Some 1) (Schema.index_of s ~relation:"A" "c2");
  Alcotest.(check (option int)) "unqualified c2" (Some 1) (Schema.index_of s "c2");
  Alcotest.(check (option int)) "missing" None (Schema.index_of s ~relation:"B" "c9")

let test_schema_ambiguous_unqualified () =
  let s = abc_schema () in
  Alcotest.check_raises "ambiguous c1"
    (Invalid_argument "Schema.index_of: ambiguous column c1") (fun () ->
      ignore (Schema.index_of s "c1"))

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.of_columns: duplicate column A.c1") (fun () ->
      ignore
        (Schema.of_columns
           [
             Schema.column ~relation:"A" "c1" Value.Tint;
             Schema.column ~relation:"A" "c1" Value.Tfloat;
           ]))

let test_schema_concat_and_project () =
  let a = Schema.of_columns [ Schema.column ~relation:"A" "x" Value.Tint ] in
  let b = Schema.of_columns [ Schema.column ~relation:"B" "y" Value.Tint ] in
  let ab = Schema.concat a b in
  Alcotest.(check int) "arity" 2 (Schema.arity ab);
  let proj = Schema.project ab [ 1 ] in
  Alcotest.(check string) "projected col" "B.y"
    (Schema.column_name (Schema.nth proj 0))

let test_schema_rename () =
  let s = Schema.of_columns [ Schema.column "x" Value.Tint ] in
  let r = Schema.rename_relation s "T" in
  Alcotest.(check (option int)) "qualified" (Some 0) (Schema.index_of r ~relation:"T" "x")

let test_tuple_ops () =
  let t1 = Tuple.make [ v_int 1; v_float 2.0 ] in
  let t2 = Tuple.make [ Value.Str "a" ] in
  let c = Tuple.concat t1 t2 in
  Alcotest.(check int) "arity" 3 (Tuple.arity c);
  Alcotest.(check string) "projection" "(\"a\", 1)"
    (Tuple.to_string (Tuple.project c [ 2; 0 ]));
  Alcotest.(check bool) "equal" true
    (Tuple.equal t1 (Tuple.make [ v_float 1.0; v_int 2 ]))

let eval_schema =
  Schema.of_columns
    [
      Schema.column ~relation:"T" "x" Value.Tfloat;
      Schema.column ~relation:"T" "y" Value.Tfloat;
    ]

let ev expr x y = Expr.eval eval_schema expr (Tuple.make [ v_float x; v_float y ])

let test_expr_arithmetic () =
  let open Expr in
  let e = (col ~relation:"T" "x" + cfloat 1.0) * col "y" in
  Alcotest.(check (float 1e-9)) "(2+1)*4" 12.0 (Value.to_float (ev e 2.0 4.0))

let test_expr_division_and_neg () =
  let e = Expr.Div (Expr.col "x", Expr.col "y") in
  Alcotest.(check (float 1e-9)) "6/3" 2.0 (Value.to_float (ev e 6.0 3.0));
  let n = Expr.Neg (Expr.col "x") in
  Alcotest.(check (float 1e-9)) "-x" (-5.0) (Value.to_float (ev n 5.0 0.0))

let test_expr_comparison_and_bool () =
  let open Expr in
  let e = And (Cmp (Lt, col "x", col "y"), Not (Cmp (Eq, col "x", col "y"))) in
  Alcotest.(check bool) "1<2 && 1<>2" true
    (Expr.eval_bool eval_schema e (Tuple.make [ v_float 1.0; v_float 2.0 ]));
  Alcotest.(check bool) "2<2 false" false
    (Expr.eval_bool eval_schema e (Tuple.make [ v_float 2.0; v_float 2.0 ]))

let test_expr_null_propagation () =
  let open Expr in
  let e = col "x" + col "y" in
  let r = Expr.eval eval_schema e (Tuple.make [ Value.Null; v_float 1.0 ]) in
  Alcotest.(check bool) "null + x = null" true (Value.is_null r);
  let p = Cmp (Eq, col "x", col "y") in
  Alcotest.(check bool) "null = x is not true" false
    (Expr.eval_bool eval_schema p (Tuple.make [ Value.Null; v_float 1.0 ]))

let test_expr_unbound_column () =
  Alcotest.check_raises "unbound" (Invalid_argument "Expr: unbound column T.z")
    (fun () ->
      ignore (Expr.compile eval_schema (Expr.col ~relation:"T" "z") : Tuple.t -> Value.t))

let test_expr_weighted_sum_linear () =
  let e =
    Expr.weighted_sum
      [ (0.3, Expr.col ~relation:"T" "x"); (0.7, Expr.col ~relation:"T" "y") ]
  in
  match Expr.as_linear e with
  | None -> Alcotest.fail "expected linear"
  | Some lin ->
      Alcotest.(check int) "two terms" 2 (List.length lin.Expr.terms);
      Alcotest.(check (float 1e-12)) "intercept" 0.0 lin.Expr.intercept

let test_expr_linear_merging () =
  let open Expr in
  (* x + 2x - 3x should vanish; y remains. *)
  let e = col "x" + ((cfloat 2.0 * col "x") + (col "y" - (cfloat 3.0 * col "x"))) in
  match as_linear e with
  | None -> Alcotest.fail "expected linear"
  | Some lin ->
      Alcotest.(check int) "one term" 1 (List.length lin.terms);
      let w, r = List.hd lin.terms in
      Alcotest.(check string) "column y" "y" r.name;
      Alcotest.(check (float 1e-12)) "weight 1" 1.0 w

let test_expr_nonlinear_rejected () =
  let open Expr in
  Alcotest.(check bool) "x*y not linear" true
    (Option.is_none (as_linear (col "x" * col "y")));
  Alcotest.(check bool) "x/y not linear" true
    (Option.is_none (as_linear (Div (col "x", col "y"))));
  Alcotest.(check bool) "x/2 linear" true
    (Option.is_some (as_linear (Div (col "x", cfloat 2.0))))

let test_expr_same_order_up_to_scale () =
  let open Expr in
  let e1 = weighted_sum [ (0.3, col "x"); (0.3, col "y") ] in
  let e2 = weighted_sum [ (1.0, col "x"); (1.0, col "y") ] in
  let e3 = weighted_sum [ (0.3, col "x"); (0.6, col "y") ] in
  Alcotest.(check bool) "same order" true (equal e1 e2);
  Alcotest.(check bool) "different order" false (equal e1 e3);
  Alcotest.(check bool) "negative scale differs" false
    (equal e1 (weighted_sum [ (-0.3, col "x"); (-0.3, col "y") ]))

let test_expr_column_refs_dedup () =
  let open Expr in
  let e = col ~relation:"A" "x" + (col ~relation:"A" "x" * col ~relation:"B" "y") in
  Alcotest.(check int) "two refs" 2 (List.length (column_refs e));
  Alcotest.(check (list string)) "relations" [ "A"; "B" ] (relations e)

let prop_compile_matches_eval =
  (* compile and eval share an implementation; this pins the staged closure
     against schema changes by evaluating on random linear expressions. *)
  QCheck.Test.make ~name:"expr: weighted sums evaluate correctly" ~count:300
    QCheck.(
      pair
        (pair (float_bound_exclusive 10.0) (float_bound_exclusive 10.0))
        (pair (float_bound_exclusive 5.0) (float_bound_exclusive 5.0)))
    (fun ((w1, w2), (x, y)) ->
      let e = Expr.weighted_sum [ (w1, Expr.col "x"); (w2, Expr.col "y") ] in
      let f = Expr.compile_float eval_schema e in
      let direct = (w1 *. x) +. (w2 *. y) in
      Test_util.floats_close ~eps:1e-9 direct
        (f (Tuple.make [ v_float x; v_float y ])))

let prop_linear_roundtrip =
  QCheck.Test.make ~name:"expr: of_linear/as_linear roundtrip" ~count:300
    QCheck.(
      pair (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (w1, w2) ->
      let e = Expr.weighted_sum [ (w1, Expr.col "x"); (w2, Expr.col "y") ] in
      match Expr.as_linear e with
      | None -> false
      | Some lin -> Expr.equal (Expr.of_linear lin) e)

let sample_relation () =
  let schema =
    Schema.of_columns
      [ Schema.column "k" Value.Tint; Schema.column "s" Value.Tfloat ]
  in
  Relation.create schema
    [
      Tuple.make [ v_int 1; v_float 0.9 ];
      Tuple.make [ v_int 2; v_float 0.5 ];
      Tuple.make [ v_int 1; v_float 0.7 ];
    ]

let test_relation_sort_filter () =
  let r = sample_relation () in
  let sorted = Relation.sort_by ~desc:true (Expr.col "s") r in
  let scores =
    List.map
      (fun tu -> Value.to_float (Tuple.get tu 1))
      (Relation.tuples sorted)
  in
  Alcotest.(check (list (float 0.0))) "desc" [ 0.9; 0.7; 0.5 ] scores;
  let filtered = Relation.filter Expr.(col "k" = cint 1) r in
  Alcotest.(check int) "filtered" 2 (Relation.cardinality filtered)

let test_relation_join_oracle () =
  let a = Test_util.scored_relation "A" ~n:20 ~domain:4 ~seed:1 in
  let b = Test_util.scored_relation "B" ~n:20 ~domain:4 ~seed:2 in
  let joined =
    Relation.join
      ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
      a b
  in
  (* Every result satisfies the predicate and count matches manual count. *)
  let manual =
    List.fold_left
      (fun acc ta ->
        List.fold_left
          (fun acc tb ->
            if Value.equal (Tuple.get ta 1) (Tuple.get tb 1) then acc + 1 else acc)
          acc (Relation.tuples b))
      0 (Relation.tuples a)
  in
  Alcotest.(check int) "join cardinality" manual (Relation.cardinality joined)

let test_relation_top_k () =
  let r = sample_relation () in
  let top = Relation.top_k ~score:(Expr.col "s") ~k:2 r in
  Alcotest.(check (list (float 1e-9))) "top scores" [ 0.9; 0.7 ] (List.map snd top)

let test_relation_arity_check () =
  let schema = Schema.of_columns [ Schema.column "x" Value.Tint ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Relation.create: tuple arity 2, schema arity 1")
    (fun () ->
      ignore (Relation.create schema [ Tuple.make [ v_int 1; v_int 2 ] ]))

let test_scoring_combine () =
  Alcotest.(check (float 1e-9)) "sum" 6.0 (Scoring.combine Scoring.Sum [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "weighted" 1.4
    (Scoring.combine (Scoring.Weighted [| 0.4; 0.2 |]) [| 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Scoring.combine Scoring.Min [| 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "max" 2.0 (Scoring.combine Scoring.Max [| 1.0; 2.0 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Scoring.combine: weight arity mismatch")
    (fun () -> ignore (Scoring.combine (Scoring.Weighted [| 1.0 |]) [| 1.0; 2.0 |]))

let test_scoring_monotone () =
  Alcotest.(check bool) "sum monotone" true (Scoring.is_monotone Scoring.Sum);
  Alcotest.(check bool) "neg weight not monotone" false
    (Scoring.is_monotone (Scoring.Weighted [| 0.5; -0.1 |]))

let suites =
  [
    ( "relalg.value",
      [
        Alcotest.test_case "numeric compare" `Quick test_value_numeric_compare;
        Alcotest.test_case "null first" `Quick test_value_null_sorts_first;
        Alcotest.test_case "hash/equal" `Quick test_value_hash_consistent_with_equal;
        Alcotest.test_case "to_float" `Quick test_value_to_float;
        QCheck_alcotest.to_alcotest prop_value_compare_total_order;
      ] );
    ( "relalg.schema",
      [
        Alcotest.test_case "lookup" `Quick test_schema_lookup;
        Alcotest.test_case "ambiguous" `Quick test_schema_ambiguous_unqualified;
        Alcotest.test_case "duplicate" `Quick test_schema_duplicate_rejected;
        Alcotest.test_case "concat/project" `Quick test_schema_concat_and_project;
        Alcotest.test_case "rename" `Quick test_schema_rename;
      ] );
    ("relalg.tuple", [ Alcotest.test_case "ops" `Quick test_tuple_ops ]);
    ( "relalg.expr",
      [
        Alcotest.test_case "arithmetic" `Quick test_expr_arithmetic;
        Alcotest.test_case "division/neg" `Quick test_expr_division_and_neg;
        Alcotest.test_case "comparison/bool" `Quick test_expr_comparison_and_bool;
        Alcotest.test_case "null propagation" `Quick test_expr_null_propagation;
        Alcotest.test_case "unbound column" `Quick test_expr_unbound_column;
        Alcotest.test_case "weighted sum linear" `Quick test_expr_weighted_sum_linear;
        Alcotest.test_case "linear merging" `Quick test_expr_linear_merging;
        Alcotest.test_case "nonlinear rejected" `Quick test_expr_nonlinear_rejected;
        Alcotest.test_case "order up to scale" `Quick test_expr_same_order_up_to_scale;
        Alcotest.test_case "column refs" `Quick test_expr_column_refs_dedup;
        QCheck_alcotest.to_alcotest prop_compile_matches_eval;
        QCheck_alcotest.to_alcotest prop_linear_roundtrip;
      ] );
    ( "relalg.relation",
      [
        Alcotest.test_case "sort/filter" `Quick test_relation_sort_filter;
        Alcotest.test_case "join oracle" `Quick test_relation_join_oracle;
        Alcotest.test_case "top_k" `Quick test_relation_top_k;
        Alcotest.test_case "arity check" `Quick test_relation_arity_check;
      ] );
    ( "relalg.scoring",
      [
        Alcotest.test_case "combine" `Quick test_scoring_combine;
        Alcotest.test_case "monotone" `Quick test_scoring_monotone;
      ] );
  ]
