(* Tests for the filter/restart baseline (Section 6 related work) and for
   Mathx's normal-distribution helpers it relies on. *)

open Relalg
open Core

let test_normal_cdf_values () =
  Test_util.check_floats_close ~eps:1e-6 "cdf 0" 0.5 (Rkutil.Mathx.normal_cdf 0.0);
  Alcotest.(check bool) "cdf 1.96 ~ 0.975" true
    (Float.abs (Rkutil.Mathx.normal_cdf 1.96 -. 0.975) < 1e-3);
  Alcotest.(check bool) "cdf -1.96 ~ 0.025" true
    (Float.abs (Rkutil.Mathx.normal_cdf (-1.96) -. 0.025) < 1e-3);
  Alcotest.(check bool) "monotone" true
    (Rkutil.Mathx.normal_cdf 0.5 < Rkutil.Mathx.normal_cdf 1.0)

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Rkutil.Mathx.normal_quantile p in
      Test_util.check_floats_close ~eps:1e-5
        (Printf.sprintf "roundtrip %.3f" p)
        p (Rkutil.Mathx.normal_cdf x))
    [ 0.01; 0.1; 0.5; 0.9; 0.99 ];
  Alcotest.check_raises "p=0" (Invalid_argument "Mathx.normal_quantile: p outside (0,1)")
    (fun () -> ignore (Rkutil.Mathx.normal_quantile 0.0))

let setup ?(n = 400) ?(domain = 20) ?(seed = 5) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B" ];
  cat

let query ?(k = 10) () =
  Logical.make
    ~relations:
      [
        Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
        Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
      ]
    ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
    ~k ()

let oracle cat k =
  let rel name =
    let info = Storage.Catalog.table cat name in
    Relation.create info.Storage.Catalog.tb_schema
      (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
  in
  let joined =
    Relation.join
      ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
      (rel "A") (rel "B")
  in
  Relation.top_k
    ~score:Expr.(col ~relation:"A" "score" + col ~relation:"B" "score")
    ~k joined

let test_filter_restart_matches_oracle () =
  let cat = setup () in
  List.iter
    (fun k ->
      match Filter_restart.top_k cat (query ~k ()) with
      | Error e -> Alcotest.failf "filter/restart failed: %s" e
      | Ok (results, _) ->
          Test_util.check_score_multiset
            (Printf.sprintf "top-%d" k)
            (List.map snd (oracle cat k))
            (List.map snd results))
    [ 1; 5; 25 ]

let test_filter_restart_restarts_on_aggressive_cutoff () =
  let cat = setup ~n:300 ~domain:50 () in
  (* A tiny safety factor makes the first cutoff miss almost surely. *)
  match Filter_restart.top_k ~safety:0.001 cat (query ~k:20 ()) with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok (results, stats) ->
      Alcotest.(check bool) "restarted" true (stats.Filter_restart.restarts > 0);
      Alcotest.(check int) "io per attempt recorded"
        (stats.Filter_restart.restarts + 1)
        (List.length stats.Filter_restart.attempts_io);
      Test_util.check_score_multiset "still correct"
        (List.map snd (oracle cat 20))
        (List.map snd results)

let test_filter_restart_k_exceeds_results () =
  let cat = setup ~n:50 ~domain:50 () in
  match Filter_restart.top_k cat (query ~k:100000 ()) with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok (results, _) ->
      let all = oracle cat max_int in
      Alcotest.(check int) "returns whole join" (List.length all) (List.length results)

let test_filter_restart_cutoff_monotone_in_k () =
  let cat = setup ~n:1000 ~domain:50 () in
  let c1 = Filter_restart.initial_cutoff cat (query ~k:1 ()) ~k:1 ~safety:2.0 in
  let c100 = Filter_restart.initial_cutoff cat (query ~k:100 ()) ~k:100 ~safety:2.0 in
  Alcotest.(check bool) "larger k, lower cutoff" true (c100 < c1);
  Alcotest.(check bool) "cutoff within range" true (c1 <= 2.0 && c100 >= 0.0)

let test_filter_restart_rejects_unranked () =
  let cat = setup () in
  let q =
    Logical.make
      ~relations:[ Logical.base "A"; Logical.base "B" ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ()
  in
  match Filter_restart.top_k cat q with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for an unranked query"

let prop_filter_restart_equals_rank_join =
  QCheck.Test.make
    ~name:"filter/restart = rank-join answers (random workloads)" ~count:20
    QCheck.(triple (int_range 0 999) (int_range 10 60) (int_range 1 10))
    (fun (seed, n, k) ->
      let cat = setup ~n ~domain:8 ~seed () in
      let q = query ~k () in
      match Filter_restart.top_k cat q with
      | Error _ -> false
      | Ok (fr, _) ->
          let _, rr = Optimizer.run_query cat q in
          let a = Test_util.score_multiset (List.map snd fr) in
          let b = Test_util.score_multiset (List.map snd rr.Executor.rows) in
          List.length a = List.length b
          && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) a b)

let suites =
  [
    ( "rkutil.normal",
      [
        Alcotest.test_case "cdf values" `Quick test_normal_cdf_values;
        Alcotest.test_case "quantile roundtrip" `Quick test_normal_quantile_roundtrip;
      ] );
    ( "core.filter_restart",
      [
        Alcotest.test_case "matches oracle" `Quick test_filter_restart_matches_oracle;
        Alcotest.test_case "restarts happen" `Quick
          test_filter_restart_restarts_on_aggressive_cutoff;
        Alcotest.test_case "k > join size" `Quick test_filter_restart_k_exceeds_results;
        Alcotest.test_case "cutoff monotone" `Quick test_filter_restart_cutoff_monotone_in_k;
        Alcotest.test_case "rejects unranked" `Quick test_filter_restart_rejects_unranked;
        QCheck_alcotest.to_alcotest prop_filter_restart_equals_rank_join;
      ] );
  ]
