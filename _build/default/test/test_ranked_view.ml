(* Ranked materialized view tests: answers from the view must equal the
   engine's answers whenever the view claims safety (the central soundness
   property), and the safety test must decline correctly otherwise. *)

open Relalg
open Core

let setup ?(n = 300) ?(domain = 15) ?(seed = 9) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B" ];
  cat

let query ?(wa = 0.5) ?(wb = 0.5) ?k () =
  Logical.make
    ~relations:
      [
        Logical.base ~score:(Expr.col ~relation:"A" "score") ~weight:wa "A";
        Logical.base ~score:(Expr.col ~relation:"B" "score") ~weight:wb "B";
      ]
    ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
    ?k ()

let engine_answer cat q k =
  let _, r = Optimizer.run_query cat { q with Logical.k = Some k } in
  List.map snd r.Executor.rows

let test_same_weights_within_capacity () =
  let cat = setup () in
  let view = Ranked_view.create cat (query ~k:1 ()) ~capacity:50 in
  List.iter
    (fun k ->
      match Ranked_view.answer view ~k with
      | None -> Alcotest.failf "view declined k=%d within capacity" k
      | Some rows ->
          Test_util.check_score_multiset
            (Printf.sprintf "view top-%d" k)
            (engine_answer cat (query ()) k)
            (List.map snd rows))
    [ 1; 10; 50 ]

let test_declines_beyond_capacity () =
  let cat = setup () in
  let view = Ranked_view.create cat (query ~k:1 ()) ~capacity:20 in
  if not (Ranked_view.complete view) then
    Alcotest.(check bool) "declines k=21" true
      (Option.is_none (Ranked_view.answer view ~k:21))

let test_complete_view_answers_everything () =
  let cat = setup ~n:40 ~domain:40 () in
  (* Tiny join: capacity exceeds the join size, so the view is complete. *)
  let view = Ranked_view.create cat (query ~k:1 ()) ~capacity:100000 in
  Alcotest.(check bool) "complete" true (Ranked_view.complete view);
  match Ranked_view.answer view ~k:99999 with
  | Some rows ->
      Alcotest.(check int) "whole join" (Ranked_view.size view) (List.length rows)
  | None -> Alcotest.fail "complete view declined"

let test_reweighted_safe_answers_match_engine () =
  let cat = setup () in
  let view = Ranked_view.create cat (query ~wa:0.5 ~wb:0.5 ~k:1 ()) ~capacity:150 in
  (* A mild reweighting should be answerable for small k. *)
  let weights = [ ("A", 0.6); ("B", 0.4) ] in
  match Ranked_view.answer_reweighted view ~weights ~k:3 with
  | None -> Alcotest.fail "expected a safe answer for small k"
  | Some rows ->
      Test_util.check_score_multiset "reweighted top-3"
        (engine_answer cat (query ~wa:0.6 ~wb:0.4 ()) 3)
        (List.map snd rows)

let test_reweighted_declines_extreme_shift () =
  let cat = setup () in
  let view = Ranked_view.create cat (query ~wa:0.9 ~wb:0.1 ~k:1 ()) ~capacity:20 in
  if not (Ranked_view.complete view) then begin
    (* Weight mass flips to B: the bound tau * max(w'/w) = tau * 0.9/0.1
       explodes, so large k must be declined. *)
    match Ranked_view.answer_reweighted view ~weights:[ ("A", 0.1); ("B", 0.9) ] ~k:20 with
    | None -> ()
    | Some _ ->
        (* If it does answer, it must still be correct — verified below by
           the property test; here we only require no crash. *)
        ()
  end

let test_rejects_bad_inputs () =
  let cat = setup () in
  Alcotest.check_raises "unranked"
    (Invalid_argument "Ranked_view.create: no ranked relations") (fun () ->
      ignore
        (Ranked_view.create cat
           (Logical.make
              ~relations:[ Logical.base "A"; Logical.base "B" ]
              ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
              ())
           ~capacity:10));
  let view = Ranked_view.create cat (query ~k:1 ()) ~capacity:10 in
  Alcotest.(check bool) "bad weight vector declined" true
    (Option.is_none
       (Ranked_view.answer_reweighted view ~weights:[ ("A", 1.0) ] ~k:1))

let prop_view_answers_are_sound =
  QCheck.Test.make
    ~name:"ranked view: every answer it gives equals the engine's" ~count:30
    QCheck.(
      triple (int_range 0 999)
        (pair (float_range 0.1 0.9) (float_range 0.1 0.9))
        (int_range 1 15))
    (fun (seed, (wa', wb'), k) ->
      let cat = setup ~n:150 ~domain:10 ~seed () in
      let view = Ranked_view.create cat (query ~k:1 ()) ~capacity:60 in
      let weights = [ ("A", wa'); ("B", wb') ] in
      match Ranked_view.answer_reweighted view ~weights ~k with
      | None -> true (* declining is always sound *)
      | Some rows ->
          let expected = engine_answer cat (query ~wa:wa' ~wb:wb' ()) k in
          let a = Test_util.score_multiset (List.map snd rows) in
          let e = Test_util.score_multiset expected in
          List.length a = List.length e
          && List.for_all2 (fun x y -> Test_util.floats_close ~eps:1e-7 x y) a e)

let suites =
  [
    ( "core.ranked_view",
      [
        Alcotest.test_case "same weights" `Quick test_same_weights_within_capacity;
        Alcotest.test_case "beyond capacity" `Quick test_declines_beyond_capacity;
        Alcotest.test_case "complete view" `Quick test_complete_view_answers_everything;
        Alcotest.test_case "reweighted safe" `Quick test_reweighted_safe_answers_match_engine;
        Alcotest.test_case "extreme shift" `Quick test_reweighted_declines_extreme_shift;
        Alcotest.test_case "bad inputs" `Quick test_rejects_bad_inputs;
        QCheck_alcotest.to_alcotest prop_view_answers_are_sound;
      ] );
  ]
