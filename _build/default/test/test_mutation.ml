(* Tests for table mutation (insert + index maintenance + ANALYZE) and the
   memory-adaptive Grace hash join. *)

open Relalg
open Storage

let schema =
  Schema.of_columns
    [ Schema.column "id" Value.Tint; Schema.column "score" Value.Tfloat ]

let tu i s = Tuple.make [ Value.Int i; Value.Float s ]

let setup () =
  let cat = Catalog.create ~tuples_per_page:10 () in
  ignore (Catalog.create_table cat "T" schema (List.init 20 (fun i -> tu i (float_of_int i))));
  ignore
    (Catalog.create_index cat ~name:"T_clustered" ~table:"T"
       ~key:(Expr.col ~relation:"T" "score") ());
  ignore
    (Catalog.create_index cat ~clustered:false ~name:"T_unclustered" ~table:"T"
       ~key:(Expr.col ~relation:"T" "id") ());
  cat

let test_insert_maintains_heap_and_indexes () =
  let cat = setup () in
  Catalog.insert_into cat ~table:"T" [ tu 100 99.5; tu 101 98.5 ];
  let info = Catalog.table cat "T" in
  Alcotest.(check int) "heap grew" 22 (Heap_file.cardinality info.Catalog.tb_heap);
  (* Clustered score index sees the new tuples in order. *)
  let cix =
    List.find (fun ix -> ix.Catalog.ix_name = "T_clustered") info.Catalog.tb_indexes
  in
  Alcotest.(check int) "clustered grew" 22 (Btree.length cix.Catalog.ix_btree);
  let next = Btree.scan_desc cix.Catalog.ix_btree in
  (match next () with
  | Some best -> Alcotest.(check int) "new max first" 100 (Value.to_int (Tuple.get best 0))
  | None -> Alcotest.fail "empty index");
  (* Unclustered id index resolves the fresh tuples through the heap. *)
  let uix =
    List.find (fun ix -> ix.Catalog.ix_name = "T_unclustered") info.Catalog.tb_indexes
  in
  match Catalog.index_lookup cat uix (Value.Int 101) with
  | [ found ] -> Alcotest.(check bool) "resolves" true (Tuple.equal found (tu 101 98.5))
  | other -> Alcotest.failf "lookup found %d entries" (List.length other)

let test_analyze_refreshes_stats () =
  let cat = setup () in
  let before = (Catalog.table cat "T").Catalog.tb_stats.Catalog.ts_cardinality in
  Catalog.insert_into cat ~table:"T" (List.init 30 (fun i -> tu (200 + i) 1000.0));
  (* Stats stale until analyze. *)
  let stale = (Catalog.table cat "T").Catalog.tb_stats.Catalog.ts_cardinality in
  Alcotest.(check int) "stale" before stale;
  let refreshed = Catalog.analyze cat "T" in
  Alcotest.(check int) "refreshed" 50 refreshed.Catalog.tb_stats.Catalog.ts_cardinality;
  match Catalog.column_stats cat ~table:"T" ~column:"score" with
  | Some cs -> Alcotest.(check (float 0.0)) "new max" 1000.0 cs.Catalog.cs_max
  | None -> Alcotest.fail "missing stats"

let test_insert_unknown_table () =
  let cat = setup () in
  Alcotest.check_raises "unknown" Not_found (fun () ->
      Catalog.insert_into cat ~table:"Nope" [ tu 1 1.0 ])

let test_query_sees_inserted_rows () =
  let cat = Catalog.create () in
  let prng = Rkutil.Prng.create 55 in
  ignore (Workload.Generator.load_scored_table cat prng ~name:"A" ~n:50 ~key_domain:5 ());
  ignore (Workload.Generator.load_scored_table cat prng ~name:"B" ~n:50 ~key_domain:5 ());
  (* Insert a pair that must dominate the ranking. *)
  Catalog.insert_into cat ~table:"A" [ Tuple.make [ Value.Int 999; Value.Int 0; Value.Float 10.0 ] ];
  Catalog.insert_into cat ~table:"B" [ Tuple.make [ Value.Int 999; Value.Int 0; Value.Float 10.0 ] ];
  ignore (Catalog.analyze cat "A");
  ignore (Catalog.analyze cat "B");
  let q =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
          Core.Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
        ]
      ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:1 ()
  in
  let _, result = Core.Optimizer.run_query cat q in
  match result.Core.Executor.rows with
  | [ (_, s) ] -> Test_util.check_floats_close "planted winner" 20.0 s
  | _ -> Alcotest.fail "expected one row"

(* --- Grace hash join --- *)

let grace_setup n =
  let io = Io_stats.create () in
  let pool = Buffer_pool.create ~frames:16 io in
  let budget mem = Exec.Sort.budget ~memory_tuples:mem ~tuples_per_page:5 pool in
  let rel name seed = Test_util.scored_relation name ~n ~domain:6 ~seed in
  (io, budget, rel)

let oracle ra rb =
  Relation.join ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key") ra rb

let run_grace budget ra rb =
  Exec.Operator.to_list
    (Exec.Join.grace_hash
       ~left_key:(Expr.col ~relation:"A" "key")
       ~right_key:(Expr.col ~relation:"B" "key")
       budget
       (Exec.Operator.of_list (Relation.schema ra) (Relation.tuples ra))
       (Exec.Operator.of_list (Relation.schema rb) (Relation.tuples rb)))

let test_grace_in_memory_path () =
  let _, budget, rel = grace_setup 40 in
  let ra = rel "A" 61 and rb = rel "B" 62 in
  let got = run_grace (budget 1000) ra rb in
  Alcotest.(check bool) "matches oracle" true
    (Relation.equal_bag (oracle ra rb)
       (Relation.create (Schema.concat (Relation.schema ra) (Relation.schema rb)) got))

let test_grace_spill_path () =
  let io, budget, rel = grace_setup 120 in
  let ra = rel "A" 63 and rb = rel "B" 64 in
  Io_stats.reset io;
  let got = run_grace (budget 10) ra rb in
  Alcotest.(check bool) "matches oracle" true
    (Relation.equal_bag (oracle ra rb)
       (Relation.create (Schema.concat (Relation.schema ra) (Relation.schema rb)) got));
  let snap = Io_stats.snapshot io in
  Alcotest.(check bool) "partition spills happened" true
    (snap.Io_stats.page_writes > 0)

let test_grace_hot_key_partition () =
  (* Every key identical: one partition gets everything; the fallback path
     must still produce the right answer with bounded memory. *)
  let _, budget, _ = grace_setup 0 in
  let mk name n =
    Relation.create
      (Test_util.scored_schema name)
      (List.init n (fun i -> [| Value.Int i; Value.Int 7; Value.Float (float_of_int i) |]))
  in
  let ra = mk "A" 30 and rb = mk "B" 25 in
  let got = run_grace (budget 10) ra rb in
  Alcotest.(check int) "full cross on key" (30 * 25) (List.length got)

let prop_grace_equals_hash =
  QCheck.Test.make ~name:"grace hash = in-memory hash (any memory budget)"
    ~count:50
    QCheck.(pair Test_util.small_rel_params (QCheck.int_range 2 50))
    (fun ((seed, n, domain), mem) ->
      let ra = Test_util.scored_relation "A" ~n ~domain ~seed in
      let rb = Test_util.scored_relation "B" ~n ~domain ~seed:(seed + 1000) in
      let io = Io_stats.create () in
      let pool = Buffer_pool.create ~frames:8 io in
      let b = Exec.Sort.budget ~memory_tuples:mem ~tuples_per_page:4 pool in
      let got = run_grace b ra rb in
      Relation.equal_bag (oracle ra rb)
        (Relation.create (Schema.concat (Relation.schema ra) (Relation.schema rb)) got))

let suites =
  [
    ( "storage.mutation",
      [
        Alcotest.test_case "insert maintains indexes" `Quick
          test_insert_maintains_heap_and_indexes;
        Alcotest.test_case "analyze refreshes" `Quick test_analyze_refreshes_stats;
        Alcotest.test_case "unknown table" `Quick test_insert_unknown_table;
        Alcotest.test_case "query sees inserts" `Quick test_query_sees_inserted_rows;
      ] );
    ( "exec.grace_hash",
      [
        Alcotest.test_case "in-memory path" `Quick test_grace_in_memory_path;
        Alcotest.test_case "spill path" `Quick test_grace_spill_path;
        Alcotest.test_case "hot-key fallback" `Quick test_grace_hot_key_partition;
        QCheck_alcotest.to_alcotest prop_grace_equals_hash;
      ] );
  ]
