(* Workload generator tests: distribution bounds, selectivity control, and
   the video scenario. *)

open Relalg
open Workload

let test_dist_bounds () =
  let prng = Rkutil.Prng.create 1 in
  let check name dist =
    let lo, hi = Dist.support dist in
    for _ = 1 to 500 do
      let x = Dist.sample prng dist in
      if x < lo -. 1e-9 || x > hi +. 1e-9 then
        Alcotest.failf "%s: %g outside [%g, %g]" name x lo hi
    done
  in
  check "uniform" (Dist.Uniform { lo = 2.0; hi = 5.0 });
  check "gaussian" (Dist.Gaussian { mean = 0.0; sd = 1.0 });
  check "zipf" (Dist.Zipf { n = 100; alpha = 1.0 });
  check "sum_uniform" (Dist.Sum_uniform { j = 3 })

let test_dist_means () =
  let prng = Rkutil.Prng.create 2 in
  let check name dist tolerance =
    let n = 30_000 in
    let acc = ref 0.0 in
    for _ = 1 to n do
      acc := !acc +. Dist.sample prng dist
    done;
    let sample_mean = !acc /. float_of_int n in
    if Float.abs (sample_mean -. Dist.mean dist) > tolerance then
      Alcotest.failf "%s: sample mean %g, analytic %g" name sample_mean
        (Dist.mean dist)
  in
  check "uniform" (Dist.Uniform { lo = 0.0; hi = 1.0 }) 0.01;
  check "sum_uniform j=4" (Dist.Sum_uniform { j = 4 }) 0.02;
  check "zipf" (Dist.Zipf { n = 50; alpha = 1.0 }) 0.02

let test_generator_shape () =
  let prng = Rkutil.Prng.create 3 in
  let schema, tuples = Generator.scored_table prng ~n:100 ~key_domain:10 () in
  Alcotest.(check int) "arity 3" 3 (Schema.arity schema);
  Alcotest.(check int) "n tuples" 100 (List.length tuples);
  List.iteri
    (fun i tu ->
      Alcotest.(check int) "serial id" i (Value.to_int (Tuple.get tu 0));
      let k = Value.to_int (Tuple.get tu 1) in
      Alcotest.(check bool) "key in domain" true (k >= 0 && k < 10))
    tuples

let test_selectivity_matches_domain () =
  (* Empirical selectivity of the equi-join should be close to 1/D. *)
  let prng = Rkutil.Prng.create 4 in
  let d = 20 in
  let n = 400 in
  let _, ta = Generator.scored_table prng ~n ~key_domain:d () in
  let _, tb = Generator.scored_table prng ~n ~key_domain:d () in
  let matches =
    List.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc b ->
            if Value.equal (Tuple.get a 1) (Tuple.get b 1) then acc + 1 else acc)
          acc tb)
      0 ta
  in
  let s = float_of_int matches /. float_of_int (n * n) in
  let expected = Generator.selectivity_of_domain d in
  Alcotest.(check bool) "selectivity near 1/D" true
    (Float.abs (s -. expected) < expected /. 2.0)

let test_domain_selectivity_roundtrip () =
  List.iter
    (fun d ->
      Alcotest.(check int) "roundtrip" d
        (Generator.domain_of_selectivity (Generator.selectivity_of_domain d)))
    [ 1; 2; 10; 100; 12345 ]

let test_load_scored_table_indexes () =
  let cat = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 5 in
  let info =
    Generator.load_scored_table cat prng ~name:"T" ~n:50 ~key_domain:5 ()
  in
  Alcotest.(check int) "two indexes" 2 (List.length info.Storage.Catalog.tb_indexes);
  match
    Storage.Catalog.find_index_on_expr cat ~table:"T" (Expr.col ~relation:"T" "score")
  with
  | Some ix -> Alcotest.(check int) "indexed rows" 50 (Storage.Btree.length ix.Storage.Catalog.ix_btree)
  | None -> Alcotest.fail "score index missing"

let test_video_build () =
  let v = Video.build ~seed:6 ~n_objects:40 () in
  Alcotest.(check int) "4 features" 4 (List.length v.Video.features);
  List.iter
    (fun f ->
      let info = Video.feature_table v f in
      Alcotest.(check int) "rows" 40 info.Storage.Catalog.tb_stats.Storage.Catalog.ts_cardinality;
      Alcotest.(check int) "indexes" 2 (List.length info.Storage.Catalog.tb_indexes))
    v.Video.features

let test_video_correlation () =
  (* With correlation 1.0 every feature table carries identical scores. *)
  let v = Video.build ~seed:7 ~n_objects:20 ~correlation:1.0 () in
  let scores f =
    let info = Video.feature_table v f in
    List.map
      (fun tu -> Value.to_float (Tuple.get tu 1))
      (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
  in
  match v.Video.features with
  | f1 :: f2 :: _ ->
      List.iter2
        (fun a b -> Test_util.check_floats_close "same quality" a b)
        (scores f1) (scores f2)
  | _ -> Alcotest.fail "expected features"

let test_video_score_expr () =
  let v = Video.build ~seed:8 ~n_objects:10 () in
  let e =
    Video.similarity_query_score v ~weights:[ ("ColorHist", 0.5); ("Texture", 0.5) ]
  in
  Alcotest.(check (list string)) "references features" [ "ColorHist"; "Texture" ]
    (Expr.relations e);
  Alcotest.check_raises "unknown feature"
    (Invalid_argument "Video.similarity_query_score: unknown feature Bogus")
    (fun () -> ignore (Video.similarity_query_score v ~weights:[ ("Bogus", 1.0) ]))

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "dist bounds" `Quick test_dist_bounds;
        Alcotest.test_case "dist means" `Quick test_dist_means;
        Alcotest.test_case "generator shape" `Quick test_generator_shape;
        Alcotest.test_case "selectivity ~ 1/D" `Quick test_selectivity_matches_domain;
        Alcotest.test_case "domain roundtrip" `Quick test_domain_selectivity_roundtrip;
        Alcotest.test_case "table + indexes" `Quick test_load_scored_table_indexes;
        Alcotest.test_case "video build" `Quick test_video_build;
        Alcotest.test_case "video correlation" `Quick test_video_correlation;
        Alcotest.test_case "video score expr" `Quick test_video_score_expr;
      ] );
  ]
