test/test_unclustered.ml: Alcotest Catalog Core Exec Expr Io_stats List Option Printf QCheck QCheck_alcotest Relalg Relation Rkutil Schema Storage Test_util Tuple Value Workload
