test/test_btree.ml: Alcotest Btree Float Io_stats List Printf QCheck QCheck_alcotest Relalg Rkutil Storage String Tuple Value
