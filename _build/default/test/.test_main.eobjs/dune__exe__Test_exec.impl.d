test/test_exec.ml: Alcotest Basic_ops Exec Expr Join List Operator Option QCheck QCheck_alcotest Relalg Relation Rkutil Scan Schema Sort Storage Test_util Top_n Tuple Value Workload
