test/test_baselines.ml: Alcotest Core Executor Expr Filter_restart Float List Logical Optimizer Printf QCheck QCheck_alcotest Relalg Relation Rkutil Storage Test_util Workload
