test/test_integration.ml: Alcotest Array Core Expr Float List Option Printf Ranking Relalg Relation Rkutil Storage Test_util Tuple Value Workload
