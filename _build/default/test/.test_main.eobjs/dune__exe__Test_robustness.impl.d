test/test_robustness.ml: Alcotest Core Exec Expr Float List Operator QCheck QCheck_alcotest Rank_join Relalg Relation Rkutil Schema Sort Storage Test_util Tuple Value Workload
