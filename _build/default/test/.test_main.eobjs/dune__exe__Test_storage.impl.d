test/test_storage.ml: Alcotest Btree Buffer_pool Catalog Expr Float Heap_file Histogram Io_stats List Page Printf Relalg Rkutil Schema Storage Test_util Tuple Value
