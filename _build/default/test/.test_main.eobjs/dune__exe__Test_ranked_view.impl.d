test/test_ranked_view.ml: Alcotest Core Executor Expr List Logical Optimizer Option Printf QCheck QCheck_alcotest Ranked_view Relalg Rkutil Storage Test_util Workload
