test/test_sqlfront.ml: Alcotest Array Core Expr List Option Printf QCheck QCheck_alcotest Relalg Relation Rkutil Schema Sqlfront Storage String Test_util Tuple Value Workload
