test/test_rank_join.ml: Alcotest Exec Expr Float List Operator Printf QCheck QCheck_alcotest Rank_join Relalg Relation Test_util Tuple Value
