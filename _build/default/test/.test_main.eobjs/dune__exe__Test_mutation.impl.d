test/test_mutation.ml: Alcotest Btree Buffer_pool Catalog Core Exec Expr Heap_file Io_stats List QCheck QCheck_alcotest Relalg Relation Rkutil Schema Storage Test_util Tuple Value Workload
