test/test_util.ml: Alcotest Float List Printf QCheck QCheck_alcotest Relalg Relation Rkutil Schema Value
