test/test_workload.ml: Alcotest Dist Expr Float Generator List Relalg Rkutil Schema Storage Test_util Tuple Value Video Workload
