test/test_rkutil.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Rkutil Test_util
