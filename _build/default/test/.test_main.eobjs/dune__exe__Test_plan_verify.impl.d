test/test_plan_verify.ml: Alcotest Core Cost_model Enumerator Expr Interesting_orders List Logical Memo Optimizer Plan Plan_verify QCheck QCheck_alcotest Relalg Rkutil Storage Workload
