test/test_consistency.ml: Alcotest Core Cost_model Enumerator Expr Interesting_orders List Logical Memo Optimizer Plan Propagate QCheck QCheck_alcotest Relalg Rkutil Storage String Workload
