test/test_ranking.ml: Aggregate Alcotest Array List Printf QCheck QCheck_alcotest Ranking Relalg Rkutil Scoring Source Test_util
