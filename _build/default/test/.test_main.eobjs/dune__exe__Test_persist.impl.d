test/test_persist.ml: Alcotest Array Btree Catalog Core Expr Expr_codec Filename Heap_file List Persist QCheck QCheck_alcotest Relalg Rkutil Schema Storage String Sys Test_util Tuple Value Workload
