test/test_relalg.ml: Alcotest Expr List Option QCheck QCheck_alcotest Relalg Relation Schema Scoring Test_util Tuple Value
