test/test_slab_estimation.ml: Alcotest Core Cost_model Depth_model Exec Executor Expr List Logical Optimizer Option Plan Printf Relalg Relation Rkutil Storage Test_util Workload
