test/test_coverage.ml: Alcotest Core Exec Expr Format List Option Relalg Relation Rkutil Schema Storage String Test_util Tuple Value
