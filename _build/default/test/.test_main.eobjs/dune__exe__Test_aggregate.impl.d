test/test_aggregate.ml: Aggregate Alcotest Exec Expr Hashtbl List Operator Option QCheck QCheck_alcotest Relalg Schema Test_util Tuple Value
