(* Cross-library integration tests: rank-aggregation over catalog indexes
   (top-k selection), TA vs rank-join equivalence on the video scenario, and
   a Monte-Carlo validation of the Equation-1 score distribution. *)

open Relalg

let video ?(n = 300) ?(seed = 11) () =
  Workload.Video.build ~seed ~n_objects:n
    ~features:[ "ColorHist"; "Texture" ] ()

let test_index_source_matches_heap () =
  let v = video () in
  let cat = v.Workload.Video.catalog in
  let ix =
    Option.get
      (Storage.Catalog.find_index_on_expr cat ~table:"ColorHist"
         (Expr.col ~relation:"ColorHist" "score"))
  in
  let src = Ranking.Index_sources.of_index cat ~score_index:ix ~id_column:"oid" in
  Alcotest.(check int) "size" 300 (Ranking.Source.size src);
  (* Best entry matches max score in the table. *)
  let info = Storage.Catalog.table cat "ColorHist" in
  let best =
    List.fold_left
      (fun acc tu -> Float.max acc (Value.to_float (Tuple.get tu 1)))
      neg_infinity
      (Storage.Heap_file.to_list info.Storage.Catalog.tb_heap)
  in
  Test_util.check_floats_close "top score" best (Ranking.Source.top_score src)

let test_index_source_weight_validation () =
  let v = video () in
  let cat = v.Workload.Video.catalog in
  let ix =
    Option.get
      (Storage.Catalog.find_index_on_expr cat ~table:"Texture"
         (Expr.col ~relation:"Texture" "score"))
  in
  Alcotest.check_raises "weight 0"
    (Invalid_argument "Index_sources.of_index: weight <= 0") (fun () ->
      ignore (Ranking.Index_sources.of_index ~weight:0.0 cat ~score_index:ix ~id_column:"oid"))

let selection_algorithms = [ `Ta; `Nra; `Fagin; `Naive ]

let test_topk_selection_algorithms_agree () =
  let v = video () in
  let cat = v.Workload.Video.catalog in
  let run algorithm =
    Ranking.Index_sources.top_k_selection cat
      ~tables:[ ("ColorHist", 0.4); ("Texture", 0.6) ]
      ~algorithm ~id_column:"oid" ~score_column:"score" ~k:10 ()
  in
  let base = List.sort compare (List.map fst (run `Naive)) in
  List.iter
    (fun algorithm ->
      let ids = List.sort compare (List.map fst (run algorithm)) in
      Alcotest.(check (list int)) "same object set" base ids)
    selection_algorithms

let test_topk_selection_equals_rank_join () =
  (* Top-k selection (TA over per-feature sources) and the top-k join on
     oid = oid must produce the same objects and combined scores. *)
  let v = video ~n:150 ~seed:12 () in
  let cat = v.Workload.Video.catalog in
  let selection =
    Ranking.Index_sources.top_k_selection cat
      ~tables:[ ("ColorHist", 1.0); ("Texture", 1.0) ]
      ~id_column:"oid" ~score_column:"score" ~k:8 ()
  in
  let q =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"ColorHist" "score") "ColorHist";
          Core.Logical.base ~score:(Expr.col ~relation:"Texture" "score") "Texture";
        ]
      ~joins:[ Core.Logical.equijoin ("ColorHist", "oid") ("Texture", "oid") ]
      ~k:8 ()
  in
  let _, result = Core.Optimizer.run_query cat q in
  Test_util.check_score_multiset "selection = join"
    (List.map snd selection)
    (List.map snd result.Core.Executor.rows)

let test_eq1_monte_carlo () =
  (* Equation 1 predicts the expected i-th largest of m draws from u_j near
     the top of the distribution; check against simulation for j = 2, 3. *)
  let prng = Rkutil.Prng.create 13 in
  let trials = 300 in
  let m = 400 in
  List.iter
    (fun j ->
      let n = 1.0 in
      List.iter
        (fun i ->
          let acc = ref 0.0 in
          for _ = 1 to trials do
            let draws =
              Array.init m (fun _ ->
                  Workload.Dist.sample prng (Workload.Dist.Sum_uniform { j }))
            in
            Array.sort (fun a b -> Float.compare b a) draws;
            acc := !acc +. draws.(i - 1)
          done;
          let empirical = !acc /. float_of_int trials in
          let predicted =
            Core.Score_dist.expected_score_at ~j ~n ~m:(float_of_int m)
              ~i:(float_of_int i)
          in
          let err =
            Rkutil.Mathx.relative_error ~actual:empirical ~estimate:predicted
          in
          if err > 0.08 then
            Alcotest.failf "j=%d i=%d: empirical %.4f vs predicted %.4f (err %.1f%%)"
              j i empirical predicted (100.0 *. err))
        [ 1; 3; 10 ])
    [ 2; 3 ]

let test_uniform_depth_monte_carlo () =
  (* For two uniform inputs the model says reading 2*sqrt(k/s) tuples per
     side suffices to contain the top-k join results; validate containment
     empirically on random instances. *)
  let prng = Rkutil.Prng.create 14 in
  let n = 400 and domain = 20 and k = 5 in
  let s = 1.0 /. float_of_int domain in
  let depth =
    Rkutil.Mathx.ceil_to_int
      (Core.Depth_model.uniform_depth ~k:(float_of_int k) ~s)
  in
  let failures = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    let mk name =
      Relation.create
        (Test_util.scored_schema name)
        (List.init n (fun i ->
             [|
               Value.Int i;
               Value.Int (Rkutil.Prng.int prng domain);
               Value.Float (Rkutil.Prng.uniform prng);
             |]))
    in
    let ra = mk "A" and rb = mk "B" in
    let prefix r d =
      let sorted = Relation.sort_by ~desc:true (Expr.col "score") r in
      Relation.create (Relation.schema r)
        (List.filteri (fun i _ -> i < d) (Relation.tuples sorted))
    in
    let joined r1 r2 =
      Relation.join
        ~on:Expr.(col ~relation:"A" "key" = col ~relation:"B" "key")
        r1 r2
    in
    let score = Expr.(col ~relation:"A" "score" + col ~relation:"B" "score") in
    let full_top = Relation.top_k ~score ~k (joined ra rb) in
    let prefix_top =
      Relation.top_k ~score ~k (joined (prefix ra depth) (prefix rb depth))
    in
    let ok =
      List.length full_top = List.length prefix_top
      && List.for_all2
           (fun (_, a) (_, b) -> Test_util.floats_close ~eps:1e-9 a b)
           full_top prefix_top
    in
    if not ok then incr failures
  done;
  (* The worst-case bound holds in expectation terms; allow rare misses. *)
  Alcotest.(check bool)
    (Printf.sprintf "containment failures %d/%d" !failures trials)
    true
    (!failures <= 2)

let suites =
  [
    ( "integration.index_sources",
      [
        Alcotest.test_case "index source = heap" `Quick test_index_source_matches_heap;
        Alcotest.test_case "weight validation" `Quick test_index_source_weight_validation;
        Alcotest.test_case "algorithms agree" `Quick test_topk_selection_algorithms_agree;
        Alcotest.test_case "selection = rank join" `Quick test_topk_selection_equals_rank_join;
      ] );
    ( "integration.model_monte_carlo",
      [
        Alcotest.test_case "eq1 vs simulation" `Slow test_eq1_monte_carlo;
        Alcotest.test_case "uniform depth containment" `Slow test_uniform_depth_monte_carlo;
      ] );
  ]
