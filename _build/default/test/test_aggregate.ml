(* Hash aggregation tests, including a model-based property against a naive
   association-list group-by. *)

open Relalg
open Exec

let schema =
  Schema.of_columns
    [ Schema.column "g" Value.Tint; Schema.column "v" Value.Tfloat ]

let op_of tuples = Operator.of_list schema tuples

let tu g v = Tuple.make [ Value.Int g; Value.Float v ]

let group_col = (Expr.col "g", Schema.column "g" Value.Tint)

let run ~group_by ~aggregates tuples =
  Operator.to_list (Aggregate.hash_group_by ~group_by ~aggregates (op_of tuples))

let test_count_sum_per_group () =
  let tuples = [ tu 1 2.0; tu 2 5.0; tu 1 3.0; tu 2 7.0; tu 1 1.0 ] in
  let out =
    run ~group_by:[ group_col ]
      ~aggregates:
        [
          { Aggregate.fn = Aggregate.Count; name = "n" };
          { Aggregate.fn = Aggregate.Sum (Expr.col "v"); name = "total" };
        ]
      tuples
  in
  Alcotest.(check int) "two groups" 2 (List.length out);
  List.iter
    (fun row ->
      match Value.to_int (Tuple.get row 0) with
      | 1 ->
          Alcotest.(check int) "count g1" 3 (Value.to_int (Tuple.get row 1));
          Test_util.check_floats_close "sum g1" 6.0 (Value.to_float (Tuple.get row 2))
      | 2 ->
          Alcotest.(check int) "count g2" 2 (Value.to_int (Tuple.get row 1));
          Test_util.check_floats_close "sum g2" 12.0 (Value.to_float (Tuple.get row 2))
      | g -> Alcotest.failf "unexpected group %d" g)
    out

let test_min_max_avg () =
  let tuples = [ tu 1 2.0; tu 1 8.0; tu 1 5.0 ] in
  let out =
    run ~group_by:[ group_col ]
      ~aggregates:
        [
          { Aggregate.fn = Aggregate.Min (Expr.col "v"); name = "lo" };
          { Aggregate.fn = Aggregate.Max (Expr.col "v"); name = "hi" };
          { Aggregate.fn = Aggregate.Avg (Expr.col "v"); name = "mean" };
        ]
      tuples
  in
  match out with
  | [ row ] ->
      Test_util.check_floats_close "min" 2.0 (Value.to_float (Tuple.get row 1));
      Test_util.check_floats_close "max" 8.0 (Value.to_float (Tuple.get row 2));
      Test_util.check_floats_close "avg" 5.0 (Value.to_float (Tuple.get row 3))
  | _ -> Alcotest.fail "expected one group"

let test_global_aggregate_empty_input () =
  let out =
    run ~group_by:[]
      ~aggregates:
        [
          { Aggregate.fn = Aggregate.Count; name = "n" };
          { Aggregate.fn = Aggregate.Min (Expr.col "v"); name = "lo" };
        ]
      []
  in
  match out with
  | [ row ] ->
      Alcotest.(check int) "count 0" 0 (Value.to_int (Tuple.get row 0));
      Alcotest.(check bool) "min is null" true (Value.is_null (Tuple.get row 1))
  | _ -> Alcotest.fail "expected exactly one row"

let test_grouped_empty_input () =
  let out =
    run ~group_by:[ group_col ]
      ~aggregates:[ { Aggregate.fn = Aggregate.Count; name = "n" } ]
      []
  in
  Alcotest.(check int) "no groups" 0 (List.length out)

let test_restartable () =
  let tuples = [ tu 1 2.0; tu 2 5.0 ] in
  let op =
    Aggregate.hash_group_by ~group_by:[ group_col ]
      ~aggregates:[ { Aggregate.fn = Aggregate.Count; name = "n" } ]
      (op_of tuples)
  in
  let a = Operator.to_list op and b = Operator.to_list op in
  Alcotest.(check int) "same size" (List.length a) (List.length b)

let test_output_schema () =
  let op =
    Aggregate.hash_group_by ~group_by:[ group_col ]
      ~aggregates:
        [
          { Aggregate.fn = Aggregate.Count; name = "n" };
          { Aggregate.fn = Aggregate.Avg (Expr.col "v"); name = "mean" };
        ]
      (op_of [])
  in
  let cols = List.map Schema.column_name (Schema.columns op.Operator.schema) in
  Alcotest.(check (list string)) "columns" [ "g"; "n"; "mean" ] cols

let prop_matches_naive_group_by =
  QCheck.Test.make ~name:"aggregate: matches naive group-by" ~count:100
    QCheck.(list (pair (int_range 0 5) (float_range (-100.0) 100.0)))
    (fun pairs ->
      let tuples = List.map (fun (g, v) -> tu g v) pairs in
      let out =
        run ~group_by:[ group_col ]
          ~aggregates:
            [
              { Aggregate.fn = Aggregate.Count; name = "n" };
              { Aggregate.fn = Aggregate.Sum (Expr.col "v"); name = "s" };
            ]
          tuples
      in
      (* Naive model. *)
      let model = Hashtbl.create 8 in
      List.iter
        (fun (g, v) ->
          let n, s = Option.value ~default:(0, 0.0) (Hashtbl.find_opt model g) in
          Hashtbl.replace model g (n + 1, s +. v))
        pairs;
      List.length out = Hashtbl.length model
      && List.for_all
           (fun row ->
             let g = Value.to_int (Tuple.get row 0) in
             match Hashtbl.find_opt model g with
             | None -> false
             | Some (n, s) ->
                 Value.to_int (Tuple.get row 1) = n
                 && Test_util.floats_close ~eps:1e-7 s (Value.to_float (Tuple.get row 2)))
           out)

let suites =
  [
    ( "exec.aggregate",
      [
        Alcotest.test_case "count/sum per group" `Quick test_count_sum_per_group;
        Alcotest.test_case "min/max/avg" `Quick test_min_max_avg;
        Alcotest.test_case "global over empty" `Quick test_global_aggregate_empty_input;
        Alcotest.test_case "grouped over empty" `Quick test_grouped_empty_input;
        Alcotest.test_case "restartable" `Quick test_restartable;
        Alcotest.test_case "output schema" `Quick test_output_schema;
        QCheck_alcotest.to_alcotest prop_matches_naive_group_by;
      ] );
  ]
