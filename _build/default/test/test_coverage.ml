(* Small-surface unit tests for APIs not exercised directly elsewhere:
   operator helpers, value printing, math corners, schema/relation edges. *)

open Relalg

let test_value_pp () =
  List.iter
    (fun (v, expected) -> Alcotest.(check string) expected expected (Value.to_string v))
    [
      (Value.Null, "NULL");
      (Value.Int 42, "42");
      (Value.Float 2.5, "2.5");
      (Value.Str "hi", "\"hi\"");
      (Value.Bool false, "false");
    ]

let test_value_dtype () =
  Alcotest.(check (option string)) "int" (Some "int")
    (Option.map Value.dtype_name (Value.dtype_of (Value.Int 1)));
  Alcotest.(check bool) "null has none" true (Option.is_none (Value.dtype_of Value.Null))

let test_log_binomial () =
  Test_util.check_floats_close ~eps:1e-9 "C(5,2)" (log 10.0)
    (Rkutil.Mathx.log_binomial 5 2);
  Alcotest.(check (float 0.0)) "out of range" neg_infinity
    (Rkutil.Mathx.log_binomial 3 5)

let test_prng_copy_and_pick () =
  let g = Rkutil.Prng.create 5 in
  let h = Rkutil.Prng.copy g in
  Alcotest.(check int64) "copies agree" (Rkutil.Prng.bits64 g) (Rkutil.Prng.bits64 h);
  let a = [| "x" |] in
  Alcotest.(check string) "pick singleton" "x" (Rkutil.Prng.pick g a);
  Alcotest.(check bool) "bool terminates" true
    (let b = Rkutil.Prng.bool g in
     b || not b)

let test_running_stats_empty_merge () =
  let a = Rkutil.Running_stats.create () in
  let b = Rkutil.Running_stats.create () in
  Rkutil.Running_stats.add b 3.0;
  let m = Rkutil.Running_stats.merge a b in
  Alcotest.(check int) "count" 1 (Rkutil.Running_stats.count m);
  Test_util.check_floats_close "mean" 3.0 (Rkutil.Running_stats.mean m);
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Rkutil.Running_stats.pp m) > 0)

let test_schema_pp_and_nth () =
  let s =
    Schema.of_columns
      [ Schema.column ~relation:"T" "a" Value.Tint; Schema.column "b" Value.Tfloat ]
  in
  Alcotest.(check string) "pp" "(T.a:int, b:float)" (Format.asprintf "%a" Schema.pp s);
  Alcotest.(check string) "nth" "b" (Schema.nth s 1).Schema.name;
  Alcotest.(check bool) "equal to self" true (Schema.equal s s)

let test_relation_project_and_rename () =
  let r = Test_util.scored_relation "T" ~n:5 ~domain:2 in
  let p = Relation.project_columns [ (Some "T", "score"); (Some "T", "id") ] r in
  Alcotest.(check int) "arity" 2 (Schema.arity (Relation.schema p));
  let renamed = Relation.rename "U" r in
  Alcotest.(check bool) "requalified" true
    (Schema.mem (Relation.schema renamed) ~relation:"U" "score");
  Alcotest.(check bool) "pp" true
    (String.length (Format.asprintf "%a" Relation.pp r) > 0)

let test_relation_cross () =
  let a = Test_util.scored_relation "A" ~n:3 ~domain:2 in
  let b = Test_util.scored_relation "B" ~n:4 ~domain:2 in
  Alcotest.(check int) "3x4" 12 (Relation.cardinality (Relation.cross a b))

let test_operator_scored_of_list_validation () =
  let schema = Test_util.scored_schema "T" in
  Alcotest.check_raises "decreasing required"
    (Invalid_argument "Operator.scored_of_list: scores not non-increasing")
    (fun () ->
      ignore
        (Exec.Operator.scored_of_list schema
           [ (Tuple.make [ Value.Int 0; Value.Int 0; Value.Float 0.1 ], 0.1);
             (Tuple.make [ Value.Int 1; Value.Int 0; Value.Float 0.9 ], 0.9) ]))

let test_operator_take_and_counted () =
  let schema = Test_util.scored_schema "T" in
  let tuples =
    List.init 10 (fun i -> Tuple.make [ Value.Int i; Value.Int 0; Value.Float 0.0 ])
  in
  let op = Exec.Operator.of_list schema tuples in
  Alcotest.(check int) "take 3" 3 (List.length (Exec.Operator.take op 3));
  let counted, count = Exec.Operator.counted op in
  ignore (Exec.Operator.take counted 4);
  Alcotest.(check int) "counted 4" 4 (count ())

let test_limit_zero () =
  let schema = Test_util.scored_schema "T" in
  let op =
    Exec.Basic_ops.limit 0
      (Exec.Operator.of_list schema
         [ Tuple.make [ Value.Int 0; Value.Int 0; Value.Float 0.0 ] ])
  in
  Alcotest.(check int) "empty" 0 (List.length (Exec.Operator.to_list op))

let test_expr_division_semantics () =
  let schema = Schema.of_columns [ Schema.column "x" Value.Tint ] in
  (* Integer division yields a float (SQL-ish semantics documented in the
     implementation). *)
  let v = Expr.eval schema (Expr.Div (Expr.cint 7, Expr.cint 2)) (Tuple.make [ Value.Int 0 ]) in
  Test_util.check_floats_close "7/2" 3.5 (Value.to_float v)

let test_interesting_orders_two_relations () =
  (* A 2-relation ranking query has no strict partial combinations, only
     singles + the full ORDER BY. *)
  let q =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"A" "s") "A";
          Core.Logical.base ~score:(Expr.col ~relation:"B" "s") "B";
        ]
      ~joins:[ Core.Logical.equijoin ("A", "k") ("B", "k") ]
      ~k:3 ()
  in
  let orders = Core.Interesting_orders.derive q in
  let rank_orders =
    List.filter
      (fun (o : Core.Interesting_orders.interesting_order) ->
        o.Core.Interesting_orders.direction = Core.Interesting_orders.Desc)
      orders
  in
  (* A.s, B.s, A.s + B.s *)
  Alcotest.(check int) "three desc orders" 3 (List.length rank_orders)

let test_histogram_bucket_of () =
  let h = Storage.Histogram.build ~buckets:4 [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check (option int)) "first" (Some 0) (Storage.Histogram.bucket_of h 0.0);
  Alcotest.(check (option int)) "last" (Some 3) (Storage.Histogram.bucket_of h 3.0);
  Alcotest.(check (option int)) "outside" None (Storage.Histogram.bucket_of h 9.0);
  Alcotest.(check int) "buckets" 4 (Storage.Histogram.bucket_count h);
  Alcotest.(check bool) "pp" true
    (String.length (Format.asprintf "%a" Storage.Histogram.pp h) > 0)

let test_io_stats_pp_and_diff () =
  let io = Storage.Io_stats.create () in
  Storage.Io_stats.add_page_read io;
  Storage.Io_stats.add_index_probe io;
  let a = Storage.Io_stats.snapshot io in
  Storage.Io_stats.add_page_write io;
  let b = Storage.Io_stats.snapshot io in
  let d = Storage.Io_stats.diff b a in
  Alcotest.(check int) "one write in diff" 1 d.Storage.Io_stats.page_writes;
  Alcotest.(check int) "no reads in diff" 0 d.Storage.Io_stats.page_reads;
  Alcotest.(check int) "total" 1 (Storage.Io_stats.total_io d);
  Alcotest.(check bool) "pp" true
    (String.length (Format.asprintf "%a" Storage.Io_stats.pp d) > 0)

let test_buffer_pool_flush () =
  let io = Storage.Io_stats.create () in
  let pool = Storage.Buffer_pool.create ~frames:4 io in
  let p = Storage.Buffer_pool.alloc_page pool ~capacity:2 in
  ignore (Storage.Page.add p (Tuple.make [ Value.Int 1 ]));
  Storage.Buffer_pool.mark_dirty pool (Storage.Page.id p);
  Storage.Buffer_pool.flush pool;
  let snap = Storage.Io_stats.snapshot io in
  Alcotest.(check bool) "flush wrote" true (snap.Storage.Io_stats.page_writes >= 1);
  (* Second flush writes nothing new. *)
  Storage.Buffer_pool.flush pool;
  let snap2 = Storage.Io_stats.snapshot io in
  Alcotest.(check int) "idempotent" snap.Storage.Io_stats.page_writes
    snap2.Storage.Io_stats.page_writes;
  Alcotest.(check bool) "resident" true (Storage.Buffer_pool.resident pool >= 1)

let test_plan_describe_and_pp () =
  let plan =
    Core.Plan.Top_k
      {
        k = 3;
        input =
          Core.Plan.Sort
            {
              order =
                { Core.Plan.expr = Expr.col ~relation:"A" "score";
                  direction = Core.Interesting_orders.Desc };
              input = Core.Plan.Table_scan { table = "A" };
            };
      }
  in
  Alcotest.(check string) "describe" "Top3(Sort(A))" (Core.Plan.describe plan);
  Alcotest.(check bool) "pipelined false" false (Core.Plan.pipelined plan);
  Alcotest.(check int) "join count" 0 (Core.Plan.join_count plan)

let test_logical_pp () =
  let q =
    Core.Logical.make
      ~relations:[ Core.Logical.base ~score:(Expr.col ~relation:"A" "s") "A" ]
      ~joins:[] ~k:2 ()
  in
  let text = Format.asprintf "%a" Core.Logical.pp q in
  Alcotest.(check bool) "mentions limit" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 7 <= String.length text
      && (String.equal (String.sub text i 7) "LIMIT 2" || contains (i + 1))
    in
    contains 0)

let suites =
  [
    ( "coverage.small_apis",
      [
        Alcotest.test_case "value pp" `Quick test_value_pp;
        Alcotest.test_case "value dtype" `Quick test_value_dtype;
        Alcotest.test_case "log_binomial" `Quick test_log_binomial;
        Alcotest.test_case "prng copy/pick" `Quick test_prng_copy_and_pick;
        Alcotest.test_case "stats empty merge" `Quick test_running_stats_empty_merge;
        Alcotest.test_case "schema pp/nth" `Quick test_schema_pp_and_nth;
        Alcotest.test_case "relation project/rename" `Quick test_relation_project_and_rename;
        Alcotest.test_case "relation cross" `Quick test_relation_cross;
        Alcotest.test_case "scored_of_list validation" `Quick
          test_operator_scored_of_list_validation;
        Alcotest.test_case "take/counted" `Quick test_operator_take_and_counted;
        Alcotest.test_case "limit 0" `Quick test_limit_zero;
        Alcotest.test_case "int division" `Quick test_expr_division_semantics;
        Alcotest.test_case "orders: two relations" `Quick
          test_interesting_orders_two_relations;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_bucket_of;
        Alcotest.test_case "io stats diff/pp" `Quick test_io_stats_pp_and_diff;
        Alcotest.test_case "pool flush" `Quick test_buffer_pool_flush;
        Alcotest.test_case "plan describe" `Quick test_plan_describe_and_pp;
        Alcotest.test_case "logical pp" `Quick test_logical_pp;
      ] );
  ]
