(* Expression codec and catalog persistence tests (round-trip properties). *)

open Relalg
open Storage

let tmp_dir suffix =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("rankopt_" ^ suffix) in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  dir

(* --- Expr codec --- *)

let roundtrip e =
  match Expr_codec.of_string (Expr_codec.to_string e) with
  | Ok e' -> e'
  | Error msg -> Alcotest.failf "codec roundtrip failed: %s" msg

let structurally_same a b =
  (* Expr.equal treats linear forms up to scale; for codec tests we want the
     serialised text itself to round-trip exactly. *)
  String.equal (Expr_codec.to_string a) (Expr_codec.to_string b)

let test_codec_roundtrips () =
  let open Expr in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Expr_codec.to_string e)
        true
        (structurally_same e (roundtrip e)))
    [
      col ~relation:"A" "c1";
      col "bare";
      cfloat 0.3;
      cint 42;
      Const Value.Null;
      Const (Value.Str "hello world (with) \"quotes\"\t!");
      Const (Value.Bool true);
      weighted_sum [ (0.3, col ~relation:"A" "c1"); (0.7, col ~relation:"B" "c2") ];
      Neg (col "x");
      Cmp (Le, col "x", cint 5);
      And (Cmp (Gt, col "x", cfloat 0.1), Not (Cmp (Eq, col "y", cint 2)));
      Or (Cmp (Ne, col "a", col "b"), Cmp (Ge, col "c", cfloat (-3.5)));
      Div (Sub (col "x", col "y"), cfloat 2.0);
    ]

let test_codec_float_precision () =
  (* %h hex floats round-trip exactly. *)
  let e = Expr.cfloat 0.1 in
  match roundtrip e with
  | Expr.Const (Value.Float f) -> Alcotest.(check (float 0.0)) "exact" 0.1 f
  | _ -> Alcotest.fail "expected float const"

let test_codec_errors () =
  List.iter
    (fun s ->
      match Expr_codec.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected codec failure: %s" s)
    [ ""; "("; "(unknown x)"; "(col)"; "(add (col x))"; "(const (i notanint))";
      "(col x) trailing" ]

let prop_codec_roundtrip_random =
  let gen =
    QCheck.Gen.(
      sized (fun size ->
          fix
            (fun self n ->
              if n = 0 then
                oneof
                  [
                    map (fun f -> Expr.cfloat f) (float_bound_exclusive 100.0);
                    map (fun name -> Expr.col ~relation:"T" ("c" ^ string_of_int name))
                      (int_range 0 5);
                  ]
              else
                oneof
                  [
                    map2 (fun a b -> Expr.Add (a, b)) (self (n / 2)) (self (n / 2));
                    map2 (fun a b -> Expr.Mul (a, b)) (self (n / 2)) (self (n / 2));
                    map (fun a -> Expr.Neg a) (self (n - 1));
                    map2 (fun a b -> Expr.Cmp (Expr.Lt, a, b)) (self (n / 2)) (self (n / 2));
                  ])
            (min size 8)))
  in
  QCheck.Test.make ~name:"expr codec: random roundtrip" ~count:200
    (QCheck.make ~print:Expr_codec.to_string gen)
    (fun e -> structurally_same e (roundtrip e))

(* --- catalog persistence --- *)

let build_catalog () =
  let cat = Catalog.create () in
  let prng = Rkutil.Prng.create 33 in
  ignore (Workload.Generator.load_scored_table cat prng ~name:"A" ~n:120 ~key_domain:10 ());
  ignore (Workload.Generator.load_scored_table cat prng ~name:"B" ~n:80 ~key_domain:10 ());
  (* A table with strings and nulls to exercise the value codec. *)
  let schema =
    Schema.of_columns
      [ Schema.column "name" Value.Tstring; Schema.column "v" Value.Tfloat ]
  in
  ignore
    (Catalog.create_table cat "Notes" schema
       [
         Tuple.make [ Value.Str "plain"; Value.Float 1.5 ];
         Tuple.make [ Value.Str "tabs\tand\nnewlines"; Value.Null ];
         Tuple.make [ Value.Str ""; Value.Float (-0.25) ];
       ]);
  cat

let tuples_of cat name =
  Heap_file.to_list (Catalog.table cat name).Catalog.tb_heap

let test_save_load_roundtrip () =
  let dir = tmp_dir "roundtrip" in
  let cat = build_catalog () in
  Persist.save cat ~dir;
  let cat' = Persist.load ~dir () in
  List.iter
    (fun name ->
      let a = tuples_of cat name and b = tuples_of cat' name in
      Alcotest.(check int) (name ^ " cardinality") (List.length a) (List.length b);
      List.iter2
        (fun x y ->
          Alcotest.(check bool) (name ^ " tuple") true (Tuple.equal x y))
        a b)
    [ "A"; "B"; "Notes" ];
  (* Indexes restored with their clustering and keys. *)
  let ixs = Catalog.indexes_on cat' "A" in
  Alcotest.(check int) "A indexes" 2 (List.length ixs);
  let score_ix =
    List.find (fun ix -> ix.Catalog.ix_name = "A_score") ixs
  in
  Alcotest.(check bool) "unclustered preserved" false score_ix.Catalog.ix_clustered;
  Alcotest.(check int) "index entries" 120 (Btree.length score_ix.Catalog.ix_btree)

let test_loaded_catalog_answers_queries () =
  let dir = tmp_dir "queries" in
  let cat = build_catalog () in
  let q =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"A" "score") "A";
          Core.Logical.base ~score:(Expr.col ~relation:"B" "score") "B";
        ]
      ~joins:[ Core.Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:7 ()
  in
  let _, before = Core.Optimizer.run_query cat q in
  Persist.save cat ~dir;
  let cat' = Persist.load ~dir () in
  let _, after = Core.Optimizer.run_query cat' q in
  Test_util.check_score_multiset "same answers after reload"
    (List.map snd before.Core.Executor.rows)
    (List.map snd after.Core.Executor.rows)

let test_load_missing_dir_fails () =
  match Persist.load ~dir:"/nonexistent/rankopt" () with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "expected Sys_error"

let suites =
  [
    ( "relalg.expr_codec",
      [
        Alcotest.test_case "roundtrips" `Quick test_codec_roundtrips;
        Alcotest.test_case "float precision" `Quick test_codec_float_precision;
        Alcotest.test_case "errors" `Quick test_codec_errors;
        QCheck_alcotest.to_alcotest prop_codec_roundtrip_random;
      ] );
    ( "storage.persist",
      [
        Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
        Alcotest.test_case "queries after reload" `Quick test_loaded_catalog_answers_queries;
        Alcotest.test_case "missing dir" `Quick test_load_missing_dir_fails;
      ] );
  ]
