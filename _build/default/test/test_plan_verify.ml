(* Plan verifier tests + the enumeration invariant: every plan the MEMO
   retains (for random workloads and both optimizer configurations) is
   structurally well-formed and executable. *)

open Relalg
open Core

let setup ?(seed = 3) () =
  let cat = Storage.Catalog.create () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + i))
           ~name ~n:100 ~key_domain:10 ()))
    [ "A"; "B"; "C" ];
  cat

let ab_cond =
  { Logical.left_table = "A"; left_column = "key"; right_table = "B"; right_column = "key" }

let score t = Expr.col ~relation:t "score"

let test_detects_unknown_table () =
  let cat = setup () in
  match Plan_verify.check cat (Plan.Table_scan { table = "Nope" }) with
  | Error msg -> Alcotest.(check string) "message" "unknown table Nope" msg
  | Ok () -> Alcotest.fail "expected failure"

let test_detects_unknown_index () =
  let cat = setup () in
  let p =
    Plan.Index_scan { table = "A"; index = "ghost"; key = score "A"; desc = true }
  in
  match Plan_verify.check cat p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected failure"

let test_detects_unbound_filter () =
  let cat = setup () in
  let p =
    Plan.Filter
      { pred = Expr.(Cmp (Ge, col ~relation:"Z" "x", cfloat 0.0));
        input = Plan.Table_scan { table = "A" } }
  in
  match Plan_verify.check cat p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected failure"

let test_detects_unsorted_hrjn_input () =
  let cat = setup () in
  let p =
    Plan.Join
      {
        algo = Plan.Hrjn;
        cond = ab_cond;
        left = Plan.Table_scan { table = "A" };  (* not sorted! *)
        right =
          Plan.Sort
            { order = { Plan.expr = score "B"; direction = Interesting_orders.Desc };
              input = Plan.Table_scan { table = "B" } };
        left_score = Some (score "A");
        right_score = Some (score "B");
      }
  in
  match Plan_verify.check cat p with
  | Error msg ->
      Alcotest.(check string) "message" "HRJN left input is not sorted on its score" msg
  | Ok () -> Alcotest.fail "expected failure"

let test_detects_missing_rank_scores () =
  let cat = setup () in
  let sorted t =
    Plan.Sort
      { order = { Plan.expr = score t; direction = Interesting_orders.Desc };
        input = Plan.Table_scan { table = t } }
  in
  let p =
    Plan.Join
      { algo = Plan.Hrjn; cond = ab_cond; left = sorted "A"; right = sorted "B";
        left_score = None; right_score = Some (score "B") }
  in
  match Plan_verify.check cat p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected failure"

let test_detects_unsorted_merge_inputs () =
  let cat = setup () in
  let p =
    Plan.Join
      { algo = Plan.Sort_merge; cond = ab_cond;
        left = Plan.Table_scan { table = "A" };
        right = Plan.Table_scan { table = "B" };
        left_score = None; right_score = None }
  in
  match Plan_verify.check cat p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected failure"

let test_accepts_valid_plan () =
  let cat = setup () in
  let q =
    Logical.make
      ~relations:
        [ Logical.base ~score:(score "A") "A"; Logical.base ~score:(score "B") "B" ]
      ~joins:[ Logical.equijoin ("A", "key") ("B", "key") ]
      ~k:5 ()
  in
  let planned = Optimizer.optimize cat q in
  match Plan_verify.check cat planned.Optimizer.plan with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid plan rejected: %s" msg

let prop_all_memo_plans_wellformed =
  QCheck.Test.make
    ~name:"enumeration invariant: every retained plan is well-formed" ~count:15
    QCheck.(triple (int_range 0 999) (int_range 2 8) bool)
    (fun (seed, domain, rank_aware) ->
      let cat = Storage.Catalog.create () in
      List.iteri
        (fun i name ->
          ignore
            (Workload.Generator.load_scored_table cat
               (Rkutil.Prng.create (seed + i))
               ~name ~n:50 ~key_domain:domain ()))
        [ "A"; "B"; "C" ];
      let q =
        Logical.make
          ~relations:
            (List.map
               (fun t -> Logical.base ~score:(score t) t)
               [ "A"; "B"; "C" ])
          ~joins:
            [ Logical.equijoin ("A", "key") ("B", "key");
              Logical.equijoin ("B", "key") ("C", "key") ]
          ~k:5 ()
      in
      let env = Cost_model.default_env ~k_min:5 cat q in
      let config = { Enumerator.rank_aware; first_rows = rank_aware } in
      let result = Enumerator.run ~config env in
      List.for_all
        (fun key ->
          List.for_all
            (fun sp -> Plan_verify.check cat sp.Memo.plan = Ok ())
            (Memo.plans result.Enumerator.memo key))
        (Memo.entry_keys result.Enumerator.memo))

let suites =
  [
    ( "core.plan_verify",
      [
        Alcotest.test_case "unknown table" `Quick test_detects_unknown_table;
        Alcotest.test_case "unknown index" `Quick test_detects_unknown_index;
        Alcotest.test_case "unbound filter" `Quick test_detects_unbound_filter;
        Alcotest.test_case "unsorted hrjn input" `Quick test_detects_unsorted_hrjn_input;
        Alcotest.test_case "missing rank scores" `Quick test_detects_missing_rank_scores;
        Alcotest.test_case "unsorted merge inputs" `Quick test_detects_unsorted_merge_inputs;
        Alcotest.test_case "accepts optimizer plan" `Quick test_accepts_valid_plan;
        QCheck_alcotest.to_alcotest prop_all_memo_plans_wellformed;
      ] );
  ]
