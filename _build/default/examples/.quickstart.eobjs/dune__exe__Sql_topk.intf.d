examples/sql_topk.mli:
