examples/video_similarity.mli:
