examples/quickstart.ml: Core Exec Expr Format List Printf Relalg Rkutil Storage Tuple Workload
