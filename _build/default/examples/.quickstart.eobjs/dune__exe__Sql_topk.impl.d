examples/sql_topk.ml: Core List Printf Relalg Rkutil Sqlfront Storage String Workload
