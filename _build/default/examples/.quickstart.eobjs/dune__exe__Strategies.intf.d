examples/strategies.mli:
