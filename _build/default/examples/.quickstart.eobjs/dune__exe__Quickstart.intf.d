examples/quickstart.mli:
