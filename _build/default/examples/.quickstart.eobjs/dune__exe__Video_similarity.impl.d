examples/video_similarity.ml: Array Core Exec Float Format List Printf Relalg Storage String Unix Workload
