examples/strategies.ml: Core Float List Printf Ranking Relalg Unix Workload
