examples/materialized_views.ml: Core Expr Float List Printf Relalg Rkutil Storage Unix Workload
