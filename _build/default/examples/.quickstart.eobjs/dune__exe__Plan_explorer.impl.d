examples/plan_explorer.ml: Core Expr Format Hashtbl List Printf Relalg Rkutil Schema Storage String Value
