(* Ranked materialized views (the PREFER-style technique the paper's intro
   contrasts with): materialise the top-N join results for a reference
   preference vector, answer later queries from the view when provably safe,
   and fall back to the rank-aware engine when not.

   Run with: dune exec examples/materialized_views.exe *)

open Relalg

let () =
  let catalog = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 99 in
  List.iter
    (fun name ->
      ignore
        (Workload.Generator.load_scored_table catalog prng ~name ~n:8000
           ~key_domain:400 ()))
    [ "Hotels"; "Restaurants" ];

  let query ?(wh = 0.5) ?(wr = 0.5) ?k () =
    Core.Logical.make
      ~relations:
        [
          Core.Logical.base ~score:(Expr.col ~relation:"Hotels" "score") ~weight:wh "Hotels";
          Core.Logical.base
            ~score:(Expr.col ~relation:"Restaurants" "score")
            ~weight:wr "Restaurants";
        ]
      ~joins:[ Core.Logical.equijoin ("Hotels", "key") ("Restaurants", "key") ]
      ?k ()
  in

  Printf.printf "Materialising the top-200 for the default preference (0.5, 0.5)...\n";
  let view = Core.Ranked_view.create catalog (query ~k:1 ()) ~capacity:200 in
  Printf.printf "View holds %d rows (complete join: %b)\n\n"
    (Core.Ranked_view.size view) (Core.Ranked_view.complete view);

  let serve ?(wh = 0.5) ?(wr = 0.5) k =
    Printf.printf "top-%d for preference (%.1f, %.1f): " k wh wr;
    let weights = [ ("Hotels", wh); ("Restaurants", wr) ] in
    match Core.Ranked_view.answer_reweighted view ~weights ~k with
    | Some rows ->
        Printf.printf "SERVED FROM VIEW  best=%.4f kth=%.4f\n"
          (snd (List.hd rows))
          (snd (List.nth rows (k - 1)))
    | None ->
        (* Fall back to the engine. *)
        let t0 = Unix.gettimeofday () in
        let _, result = Core.Optimizer.run_query catalog (query ~wh ~wr ~k ()) in
        let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
        Printf.printf "view declined -> engine (%.1f ms)  best=%.4f\n" ms
          (match result.Core.Executor.rows with
          | (_, s) :: _ -> s
          | [] -> nan)
  in

  (* Same preference: served while k fits. *)
  serve 10;
  serve 150;
  serve 500;
  (* Mild reweighting: usually still safe for small k. *)
  serve ~wh:0.6 ~wr:0.4 5;
  serve ~wh:0.4 ~wr:0.6 5;
  (* Extreme reweighting: the safety bound declines, the engine takes over. *)
  serve ~wh:0.05 ~wr:0.95 50;

  (* Verify a served answer against the engine. *)
  print_newline ();
  let weights = [ ("Hotels", 0.6); ("Restaurants", 0.4) ] in
  (match Core.Ranked_view.answer_reweighted view ~weights ~k:5 with
  | Some rows ->
      let _, engine = Core.Optimizer.run_query catalog (query ~wh:0.6 ~wr:0.4 ~k:5 ()) in
      let same =
        List.for_all2
          (fun (_, a) (_, b) -> Float.abs (a -. b) < 1e-9)
          rows engine.Core.Executor.rows
      in
      Printf.printf "View answer verified against the engine: %b\n" same
  | None -> Printf.printf "(view declined the verification query)\n")
