(* Top-k queries through the SQL front end.

   Demonstrates the surface syntax corresponding to the paper's Q1/Q2
   (expressed in ORDER BY ... DESC LIMIT k form), EXPLAIN output, and error
   reporting.

   Run with: dune exec examples/sql_topk.exe *)

let show_answer (ans : Sqlfront.Sql.answer) =
  Printf.printf "  %s\n" (String.concat " | " ans.Sqlfront.Sql.columns);
  List.iteri
    (fun i row ->
      let score =
        match List.nth_opt ans.Sqlfront.Sql.scores i with
        | Some s -> Printf.sprintf "  [score %.4f]" s
        | None -> ""
      in
      Printf.printf "  %s%s\n" (Relalg.Tuple.to_string row) score)
    ans.Sqlfront.Sql.rows

let run catalog sql =
  Printf.printf "SQL> %s\n" sql;
  (match Sqlfront.Sql.query catalog sql with
  | Ok ans ->
      show_answer ans;
      Printf.printf "  (plan: %s)\n"
        (Core.Plan.describe ans.Sqlfront.Sql.planned.Core.Optimizer.plan)
  | Error e -> Printf.printf "  ERROR: %s\n" e);
  print_newline ()

let () =
  let catalog = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 123 in
  List.iter
    (fun name ->
      ignore
        (Workload.Generator.load_scored_table catalog prng ~name ~n:3000
           ~key_domain:150 ()))
    [ "A"; "B"; "C" ];

  run catalog
    "SELECT A.id, B.id FROM A, B WHERE A.key = B.key \
     ORDER BY 0.3*A.score + 0.7*B.score DESC LIMIT 5";

  run catalog
    "SELECT A.id, B.id, C.id FROM A, B, C \
     WHERE A.key = B.key AND B.key = C.key \
     ORDER BY A.score + B.score + C.score DESC LIMIT 3";

  run catalog
    "SELECT id, score FROM A WHERE A.score >= 0.9 ORDER BY A.score DESC LIMIT 4";

  run catalog "SELECT A.id FROM A LIMIT 3";

  (* EXPLAIN. *)
  Printf.printf "EXPLAIN> top-5 two-way rank query\n";
  (match
     Sqlfront.Sql.explain catalog
       "SELECT * FROM A, B WHERE A.key = B.key \
        ORDER BY A.score + B.score DESC LIMIT 5"
   with
  | Ok text -> print_string text
  | Error e -> Printf.printf "ERROR: %s\n" e);
  print_newline ();

  (* The paper's Query Q1, verbatim (SQL99 windowed form, desugared by the
     parser to the equivalent top-k join). *)
  run catalog
    "WITH RankedABC AS ( \
       SELECT A.id AS x, B.id AS y, \
              rank() OVER (ORDER BY 0.3*A.score + 0.7*B.score) AS rank \
       FROM A, B, C \
       WHERE A.key = B.key AND B.key = C.key) \
     SELECT x, y, rank FROM RankedABC WHERE rank <= 5";

  (* Error reporting. *)
  run catalog "SELECT * FROM Nowhere";
  run catalog
    "SELECT * FROM A, B WHERE A.key = B.key ORDER BY A.score * B.score DESC LIMIT 2"
