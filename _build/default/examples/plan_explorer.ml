(* Plan explorer: reproduces the paper's Section 3 narrative on query Q2.

   Shows (1) the interesting order expressions of Table 1, (2) the MEMO
   contents with and without rank-awareness (the Figure 2/3 plan counts),
   and (3) the chosen plan with depth propagation (Figure 8 / Figure 4).

   Run with: dune exec examples/plan_explorer.exe *)

open Relalg

(* Query Q2: SELECT ... FROM A, B, C WHERE A.c2 = B.c1 AND B.c2 = C.c2
   ORDER BY 0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1 LIMIT 5 *)

let build_catalog () =
  let catalog = Storage.Catalog.create () in
  let prng = Rkutil.Prng.create 7 in
  let schema =
    Schema.of_columns
      [ Schema.column "c1" Value.Tfloat; Schema.column "c2" Value.Tint ]
  in
  List.iter
    (fun name ->
      (* c1 doubles as rank attribute and join target (A.c2 = B.c1), so it
         takes integer values represented as floats; Value compares numeric
         constructors numerically, so Int 5 joins Float 5. *)
      let tuples =
        List.init 2000 (fun _ ->
            [|
              Value.Float (float_of_int (Rkutil.Prng.int prng 100));
              Value.Int (Rkutil.Prng.int prng 100);
            |])
      in
      ignore (Storage.Catalog.create_table catalog name schema tuples);
      ignore
        (Storage.Catalog.create_index catalog ~name:(name ^ "_c1") ~table:name
           ~key:(Expr.col ~relation:name "c1") ());
      ignore
        (Storage.Catalog.create_index catalog ~name:(name ^ "_c2") ~table:name
           ~key:(Expr.col ~relation:name "c2") ()))
    [ "A"; "B"; "C" ];
  catalog

let q2 () =
  Core.Logical.make
    ~relations:
      [
        Core.Logical.base ~score:(Expr.col ~relation:"A" "c1") ~weight:0.3 "A";
        Core.Logical.base ~score:(Expr.col ~relation:"B" "c1") ~weight:0.3 "B";
        Core.Logical.base ~score:(Expr.col ~relation:"C" "c1") ~weight:0.3 "C";
      ]
    ~joins:
      [
        Core.Logical.equijoin ("A", "c2") ("B", "c1");
        Core.Logical.equijoin ("B", "c2") ("C", "c2");
      ]
    ~k:5 ()

let show_memo env config label =
  let result = Core.Enumerator.run ~config env in
  Printf.printf "--- %s ---\n" label;
  Printf.printf "MEMO entries: %d, retained plans: %d (generated %d)\n"
    result.Core.Enumerator.stats.Core.Enumerator.entries
    result.Core.Enumerator.stats.Core.Enumerator.retained
    result.Core.Enumerator.stats.Core.Enumerator.generated;
  List.iter
    (fun key ->
      let plans = Core.Memo.plans result.Core.Enumerator.memo key in
      Printf.printf "entry %d (%d plans):\n" key (List.length plans);
      print_string (Format.asprintf "%a" Core.Memo.pp_entry plans))
    (Core.Memo.entry_keys result.Core.Enumerator.memo);
  print_newline ();
  result

let () =
  let catalog = build_catalog () in
  let query = q2 () in
  let env = Core.Cost_model.default_env ~k_min:5 catalog query in

  Printf.printf "Query Q2: %s\n\n" (Format.asprintf "%a" Core.Logical.pp query);

  (* Table 1: interesting order expressions. *)
  Printf.printf "Interesting order expressions (Table 1):\n";
  Printf.printf "  %-40s %s\n" "Expression" "Reason";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (o : Core.Interesting_orders.interesting_order) ->
      let text = Expr.to_string o.Core.Interesting_orders.expr in
      if not (Hashtbl.mem seen text) then begin
        Hashtbl.add seen text ();
        Printf.printf "  %-40s %s\n" text
          (Core.Interesting_orders.reason_name o.Core.Interesting_orders.reason)
      end)
    (Core.Interesting_orders.derive query);
  print_newline ();

  (* Figures 2/3: MEMO sizes under the two optimizers. *)
  let traditional =
    show_memo env
      { Core.Enumerator.rank_aware = false; first_rows = false }
      "Traditional optimizer (interesting orders only)"
  in
  let rank_aware =
    show_memo env Core.Enumerator.default_config
      "Rank-aware optimizer (interesting order expressions)"
  in
  Printf.printf
    "Retained plans: %d traditional vs %d rank-aware (paper's Fig. 3: 12 vs 17)\n\n"
    traditional.Core.Enumerator.stats.Core.Enumerator.retained
    rank_aware.Core.Enumerator.stats.Core.Enumerator.retained;

  (* The chosen plan, with Figure 8's depth propagation. *)
  let planned = Core.Optimizer.optimize catalog query in
  print_string (Core.Optimizer.explain planned);

  (* Execute and verify ranking. *)
  let result = Core.Optimizer.execute catalog planned in
  Printf.printf "\nTop-5 combined scores: %s\n"
    (String.concat ", "
       (List.map (fun (_, s) -> Printf.sprintf "%.4f" s) result.Core.Executor.rows))
