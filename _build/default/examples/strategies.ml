(* Four ways to answer the same top-k request, compared head to head:

   1. the rank-aware optimizer's plan (HRJN pipeline, early-out);
   2. the traditional join-then-sort plan;
   3. the filter/restart baseline (Section 6 related work);
   4. TA-style top-k selection over per-feature ranked sources
      (applicable here because the join is a key-key object join).

   All four must return the same combined scores; they differ in how much
   work they do.

   Run with: dune exec examples/strategies.exe *)

let n_objects = 10_000

let k = 25

let features = [ ("ColorHist", 0.5); ("Texture", 0.5) ]

let build () =
  Workload.Video.build ~seed:7 ~n_objects ~features:(List.map fst features) ()

let the_query () =
  Core.Logical.make
    ~relations:
      (List.map
         (fun (f, w) ->
           Core.Logical.base ~score:(Relalg.Expr.col ~relation:f "score") ~weight:w f)
         features)
    ~joins:[ Core.Logical.equijoin ("ColorHist", "oid") ("Texture", "oid") ]
    ~k ()

let timed label f =
  let t0 = Unix.gettimeofday () in
  let scores = f () in
  let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  Printf.printf "%-28s %8.1f ms   best=%.4f  worst(top-%d)=%.4f\n" label ms
    (List.fold_left Float.max neg_infinity scores)
    k
    (List.fold_left Float.min infinity scores);
  List.sort Float.compare scores

let () =
  Printf.printf "Workload: %d objects x %d features, top-%d\n\n" n_objects
    (List.length features) k;
  let v = build () in
  let cat = v.Workload.Video.catalog in
  let q = the_query () in

  let rank_aware () =
    let _, r = Core.Optimizer.run_query cat q in
    List.map snd r.Core.Executor.rows
  in
  let traditional () =
    let _, r =
      Core.Optimizer.run_query
        ~config:{ Core.Enumerator.rank_aware = false; first_rows = false }
        cat q
    in
    List.map snd r.Core.Executor.rows
  in
  let filter_restart () =
    match Core.Filter_restart.top_k cat q with
    | Ok (rows, stats) ->
        Printf.printf "  (filter/restart used %d attempt(s), final cutoff %.3f)\n"
          (stats.Core.Filter_restart.restarts + 1)
          stats.Core.Filter_restart.final_cutoff;
        List.map snd rows
    | Error e -> failwith e
  in
  let ta_selection () =
    List.map snd
      (Ranking.Index_sources.top_k_selection cat ~tables:features
         ~id_column:"oid" ~score_column:"score" ~k ())
  in

  let a = timed "rank-aware optimizer" rank_aware in
  let b = timed "traditional (join+sort)" traditional in
  let c = timed "filter/restart baseline" filter_restart in
  let d = timed "TA top-k selection" ta_selection in
  let agree x y =
    List.length x = List.length y
    && List.for_all2 (fun p q -> Float.abs (p -. q) < 1e-9) x y
  in
  Printf.printf "\nAll strategies agree on the top-%d scores: %b\n" k
    (agree a b && agree a c && agree a d)
