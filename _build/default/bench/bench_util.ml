(* Shared plumbing for the experiment harness: workload construction, plan
   builders for the two canonical ranking strategies, and table printing. *)

open Relalg

let line = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let row fmt = Printf.printf fmt

(* Two scored tables A, B with the given cardinality and join selectivity
   1/domain; score indexes included. *)
let two_table_catalog ?(n = 5000) ?(pool_frames = 64) ~domain ~seed () =
  (* A pool smaller than the tables, so unclustered ranked access pays a
     random I/O per tuple — the regime the paper's Figure 1 studies. *)
  let cat = Storage.Catalog.create ~pool_frames () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + (31 * i)))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B" ];
  cat

let three_table_catalog ?(n = 5000) ?(pool_frames = 64) ~domain ~seed () =
  let cat = Storage.Catalog.create ~pool_frames () in
  List.iteri
    (fun i name ->
      ignore
        (Workload.Generator.load_scored_table cat
           (Rkutil.Prng.create (seed + (31 * i)))
           ~name ~n ~key_domain:domain ()))
    [ "A"; "B"; "C" ];
  cat

let score_of t = Expr.col ~relation:t "score"

let topk_query ?(weights = []) ~k tables =
  let weight_of t =
    match List.assoc_opt t weights with Some w -> w | None -> 1.0
  in
  let relations =
    List.map
      (fun t -> Core.Logical.base ~score:(score_of t) ~weight:(weight_of t) t)
      tables
  in
  let rec chain = function
    | a :: (b :: _ as rest) -> Core.Logical.equijoin (a, "key") (b, "key") :: chain rest
    | _ -> []
  in
  Core.Logical.make ~relations ~joins:(chain tables) ~k ()

let cond ~left ~right =
  {
    Core.Logical.left_table = left;
    left_column = "key";
    right_table = right;
    right_column = "key";
  }

let desc_order t = { Core.Plan.expr = score_of t; direction = Core.Interesting_orders.Desc }

let index_scan_desc cat t =
  let ix =
    match Storage.Catalog.find_index_on_expr cat ~table:t (score_of t) with
    | Some ix -> ix.Storage.Catalog.ix_name
    | None -> failwith ("no score index on " ^ t)
  in
  Core.Plan.Index_scan { table = t; index = ix; key = score_of t; desc = true }

(* The canonical two-way rank-join plan: HRJN over descending index scans. *)
let hrjn_plan cat =
  Core.Plan.Join
    {
      algo = Core.Plan.Hrjn;
      cond = cond ~left:"A" ~right:"B";
      left = index_scan_desc cat "A";
      right = index_scan_desc cat "B";
      left_score = Some (score_of "A");
      right_score = Some (score_of "B");
    }

(* The canonical sort plan: hash join then a blocking sort on the combined
   score. *)
let sort_plan _cat =
  Core.Plan.Sort
    {
      order =
        {
          Core.Plan.expr = Expr.Add (score_of "A", score_of "B");
          direction = Core.Interesting_orders.Desc;
        };
      input =
        Core.Plan.Join
          {
            algo = Core.Plan.Hash;
            cond = cond ~left:"A" ~right:"B";
            left = Core.Plan.Table_scan { table = "A" };
            right = Core.Plan.Table_scan { table = "B" };
            left_score = None;
            right_score = None;
          };
    }

(* Plan P of Figure 11: HRJN(HRJN(A,B),C), all inputs via descending score
   indexes. *)
let plan_p cat =
  let child =
    Core.Plan.Join
      {
        algo = Core.Plan.Hrjn;
        cond = cond ~left:"A" ~right:"B";
        left = index_scan_desc cat "A";
        right = index_scan_desc cat "B";
        left_score = Some (score_of "A");
        right_score = Some (score_of "B");
      }
  in
  Core.Plan.Join
    {
      algo = Core.Plan.Hrjn;
      cond = cond ~left:"B" ~right:"C";
      left = child;
      right = index_scan_desc cat "C";
      left_score = Some (Expr.Add (score_of "A", score_of "B"));
      right_score = Some (score_of "C");
    }

let pct_error ~actual ~estimate =
  if actual = 0.0 then 0.0
  else 100.0 *. Float.abs (estimate -. actual) /. actual
