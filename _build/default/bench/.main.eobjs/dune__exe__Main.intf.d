bench/main.mli:
