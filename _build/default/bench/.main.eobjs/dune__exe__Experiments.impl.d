bench/experiments.ml: Array Bench_util Core Exec Expr Format Hashtbl List Option Relalg Rkutil Schema Storage String Value Workload
