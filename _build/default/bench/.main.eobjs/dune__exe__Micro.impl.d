bench/micro.ml: Analyze Array Bechamel Bench_util Benchmark Core Float Hashtbl Instance List Measure Printf Ranking Relalg Rkutil Scoring Staged Storage Test Time Toolkit Tuple Value
