bench/bench_util.ml: Core Expr Float List Printf Relalg Rkutil Storage String Workload
