(* Wall-clock micro-benchmarks (Bechamel): operator and data-structure
   throughput. These complement the figure reproductions, which use the
   simulated I/O cost model rather than wall time. *)

open Relalg
open Bechamel
open Toolkit

let make_inputs () =
  let cat = Bench_util.two_table_catalog ~n:2000 ~domain:200 ~seed:81 () in
  cat

let topk_via cat config =
  let query = Bench_util.topk_query ~k:10 [ "A"; "B" ] in
  let planned = Core.Optimizer.optimize ~config cat query in
  fun () -> ignore (Core.Optimizer.execute cat planned)

let hrjn_once cat =
  let plan = Core.Plan.Top_k { k = 10; input = Bench_util.hrjn_plan cat } in
  fun () -> ignore (Core.Executor.run cat plan)

let sort_once cat =
  let plan = Core.Plan.Top_k { k = 10; input = Bench_util.sort_plan cat } in
  fun () -> ignore (Core.Executor.run cat plan)

let btree_bulk () =
  let prng = Rkutil.Prng.create 91 in
  let entries =
    List.init 2000 (fun i ->
        (Value.Float (Rkutil.Prng.uniform prng), Tuple.make [ Value.Int i ]))
  in
  fun () -> ignore (Storage.Btree.bulk_load (Storage.Io_stats.create ()) entries)

let btree_probe () =
  let prng = Rkutil.Prng.create 92 in
  let io = Storage.Io_stats.create () in
  let t = Storage.Btree.create io () in
  for i = 0 to 1999 do
    Storage.Btree.insert t
      (Value.Float (float_of_int (i mod 500)))
      (Tuple.make [ Value.Int i ])
  done;
  fun () ->
    ignore (Storage.Btree.lookup t (Value.Float (Rkutil.Prng.float prng 500.0)))

let heap_churn () =
  let prng = Rkutil.Prng.create 93 in
  fun () ->
    let h = Rkutil.Heap.create ~cmp:Float.compare in
    for _ = 1 to 500 do
      Rkutil.Heap.push h (Rkutil.Prng.uniform prng)
    done;
    ignore (Rkutil.Heap.drain h)

let ta_topk () =
  let prng = Rkutil.Prng.create 94 in
  let sources =
    Array.init 3 (fun _ ->
        Ranking.Source.of_scores
          (List.init 2000 (fun oid -> (oid, Rkutil.Prng.uniform prng))))
  in
  fun () -> ignore (Ranking.Aggregate.ta ~combine:Scoring.Sum ~k:10 sources)

let tests () =
  let cat = make_inputs () in
  [
    Test.make ~name:"hrjn-top10-2x2000" (Staged.stage (hrjn_once cat));
    Test.make ~name:"sortplan-top10-2x2000" (Staged.stage (sort_once cat));
    Test.make ~name:"optimizer-plan+exec"
      (Staged.stage (topk_via cat Core.Enumerator.default_config));
    Test.make ~name:"btree-bulkload-2000" (Staged.stage (btree_bulk ()));
    Test.make ~name:"btree-probe" (Staged.stage (btree_probe ()));
    Test.make ~name:"heap-push/drain-500" (Staged.stage (heap_churn ()));
    Test.make ~name:"ta-top10-3x2000" (Staged.stage (ta_topk ()));
  ]

let run () =
  Bench_util.section "Micro-benchmarks (Bechamel, wall clock per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second 0.25) ()
  in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns_per_run ] ->
          Printf.printf "  %-34s %12.1f ns/run (%8.3f ms)\n" name ns_per_run
            (ns_per_run /. 1e6)
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    (List.sort compare rows)
